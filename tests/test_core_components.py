"""Tests for FairGen's building blocks: config, sampler, fairness,
self-paced state, discriminator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (ContextSampler, FairDiscriminator, FairGenConfig,
                        SelfPacedState, cost_sensitive_weights,
                        group_class_means, parity_loss,
                        statistical_parity_gap)
from repro.graph import planted_protected_graph
from repro.nn import Tensor


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = FairGenConfig()
        assert cfg.batch_size == 128       # N1
        assert cfg.batch_iterations == 3   # T1
        assert cfg.walk_length == 10       # T
        assert cfg.num_heads == 4
        assert cfg.alpha == cfg.beta == cfg.gamma == 1.0

    @pytest.mark.parametrize("field,value", [
        ("sampling_ratio", 1.5),
        ("walk_length", 1),
        ("self_paced_cycles", 0),
        ("delta", 0.0),
        ("lambda_growth", 0.5),
        ("alpha", -1.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            FairGenConfig(**{field: value})

    def test_variant_returns_copy(self):
        cfg = FairGenConfig()
        other = cfg.variant(gamma=0.0)
        assert other.gamma == 0.0
        assert cfg.gamma == 1.0


@pytest.fixture
def labeled_setup(rng):
    graph, labels, protected = planted_protected_graph(
        60, 12, rng, p_in=0.35, p_out=0.02, num_classes=2,
        protected_as_class=True)
    nodes = []
    classes = []
    for cls in range(3):
        members = np.flatnonzero(labels == cls)
        nodes.extend(members[:3].tolist())
        classes.extend([cls] * 3)
    return graph, labels, protected, np.array(nodes), np.array(classes)


class TestContextSampler:
    def test_r_one_is_general_sampling(self, labeled_setup, rng):
        graph, _, _, nodes, classes = labeled_setup
        sampler = ContextSampler(graph, 1.0, walk_length=6)
        sampler.update_labels(nodes, classes)
        walks = sampler.sample(10, rng)
        assert walks.shape == (10, 6)

    def test_r_zero_starts_from_labeled(self, labeled_setup, rng):
        graph, _, _, nodes, classes = labeled_setup
        sampler = ContextSampler(graph, 0.0, walk_length=6)
        sampler.update_labels(nodes, classes)
        walks = sampler.sample(30, rng)
        all_starts = set()
        for cls in sampler.classes:
            all_starts.update(sampler.class_starts(cls).tolist())
        assert set(walks[:, 0].tolist()).issubset(all_starts)

    def test_no_labels_falls_back_to_general(self, labeled_setup, rng):
        graph = labeled_setup[0]
        sampler = ContextSampler(graph, 0.0, walk_length=5)
        walks = sampler.sample(5, rng)
        assert walks.shape == (5, 5)

    def test_class_starts_prefer_diffusion_core(self, labeled_setup):
        graph, labels, _, _, _ = labeled_setup
        sampler = ContextSampler(graph, 0.5, walk_length=6)
        # Give it a whole class as labels: core should be a strict subset
        members = np.flatnonzero(labels == 0)
        sampler.update_labels(members, np.zeros(members.size, dtype=int))
        starts = sampler.class_starts(0)
        assert set(starts.tolist()).issubset(set(members.tolist()))

    def test_singleton_class_fallback(self, labeled_setup, rng):
        graph = labeled_setup[0]
        sampler = ContextSampler(graph, 0.0, walk_length=4)
        sampler.update_labels(np.array([0, 1]), np.array([0, 1]))
        walks = sampler.sample(8, rng)
        assert set(walks[:, 0].tolist()).issubset({0, 1})

    def test_mismatched_labels_rejected(self, labeled_setup):
        graph = labeled_setup[0]
        sampler = ContextSampler(graph, 0.5, walk_length=4)
        with pytest.raises(ValueError):
            sampler.update_labels(np.array([0, 1]), np.array([0]))

    def test_invalid_ratio(self, labeled_setup):
        with pytest.raises(ValueError):
            ContextSampler(labeled_setup[0], -0.1, walk_length=4)

    def test_label_guided_fraction(self, labeled_setup):
        sampler = ContextSampler(labeled_setup[0], 0.3, walk_length=4)
        assert sampler.label_guided_fraction() == pytest.approx(0.7)


class TestCostSensitiveWeights:
    def test_eq9_values(self):
        protected = np.array([True, False, False, False])
        w = cost_sensitive_weights(np.arange(4), protected)
        np.testing.assert_allclose(w, [1.0, 1 / 3, 1 / 3, 1 / 3])

    def test_protected_weight_dominates(self):
        protected = np.zeros(100, dtype=bool)
        protected[:5] = True
        w = cost_sensitive_weights(np.arange(100), protected)
        assert w[0] > 10 * w[-1]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            cost_sensitive_weights(np.arange(3), np.zeros(3, dtype=bool))


class TestParity:
    def test_group_class_means(self):
        logp = Tensor(np.log(np.array([[0.9, 0.1], [0.5, 0.5],
                                       [0.1, 0.9], [0.5, 0.5]])))
        mask = np.array([True, True, False, False])
        m = group_class_means(logp, mask).numpy()
        expected = np.log([[0.9, 0.1], [0.5, 0.5]]).mean(axis=0)
        np.testing.assert_allclose(m, expected)

    def test_parity_loss_zero_when_identical(self):
        probs = np.tile(np.array([[0.7, 0.3]]), (4, 1))
        logp = Tensor(np.log(probs))
        mask = np.array([True, False, True, False])
        assert parity_loss(logp, mask).item() == pytest.approx(0.0)

    def test_parity_loss_positive_when_skewed(self):
        probs = np.array([[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.1, 0.9]])
        logp = Tensor(np.log(probs))
        mask = np.array([True, True, False, False])
        assert parity_loss(logp, mask).item() > 1.0

    def test_parity_gradient_flows(self, rng):
        logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        mask = np.array([True, False] * 3)
        parity_loss(logits.log_softmax(axis=-1), mask).backward()
        assert logits.grad is not None

    def test_statistical_parity_gap(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        mask = np.array([True, False])
        assert statistical_parity_gap(probs, mask) == pytest.approx(2.0)

    def test_gap_requires_2d(self):
        with pytest.raises(ValueError):
            statistical_parity_gap(np.zeros(3), np.array([True, False, True]))


class TestSelfPaced:
    def _state(self, **kwargs):
        defaults = dict(num_nodes=6, num_classes=2,
                        labeled_nodes=np.array([0, 1]),
                        labeled_classes=np.array([0, 1]),
                        lambda_init=0.5, lambda_growth=2.0)
        defaults.update(kwargs)
        return SelfPacedState(**defaults)

    def test_initialisation_from_labels(self):
        state = self._state()
        assert state.v[0, 0] == 1 and state.v[0, 1] == 0
        assert state.v[1, 1] == 1 and state.v[1, 0] == 0
        assert state.v[2:].sum() == 0

    def test_eq14_threshold(self):
        state = self._state()
        # Node 2: -log P = 0.3 < 0.5 -> admitted; node 3: 0.9 -> not.
        logp = np.full((6, 2), -5.0)
        logp[2, 0] = -0.3
        logp[3, 0] = -0.9
        state.update(logp)
        assert state.v[2, 0] == 1
        assert state.v[3, 0] == 0

    def test_ground_truth_pinned(self):
        state = self._state()
        logp = np.full((6, 2), -10.0)  # model is confident about nothing
        state.update(logp)
        assert state.v[0, 0] == 1
        assert state.v[1, 1] == 1

    def test_ground_truth_wrong_class_cleared(self):
        state = self._state()
        logp = np.zeros((6, 2))  # -log P = 0 < lambda: admits everything
        state.update(logp)
        # Node 0 is ground-truth class 0; its class-1 flag must be reset.
        assert state.v[0, 1] == 0

    def test_lambda_growth_admits_more(self):
        state = self._state()
        logp = np.full((6, 2), -0.8)
        state.update(logp)
        before = state.num_selected()
        state.augment_lambda()  # 0.5 -> 1.0; now 0.8 < 1.0 admits all
        state.update(logp)
        assert state.num_selected() > before

    def test_pseudo_labels_extend_ground_truth(self):
        state = self._state()
        logp = np.full((6, 2), -5.0)
        logp[4, 1] = -0.1  # confident: node 4 is class 1
        state.update(logp)
        nodes, classes = state.pseudo_labels(logp)
        assert 4 in nodes.tolist()
        idx = nodes.tolist().index(4)
        assert classes[idx] == 1

    def test_pseudo_labels_never_override_ground_truth(self):
        state = self._state()
        logp = np.zeros((6, 2))
        state.update(logp)
        nodes, classes = state.pseudo_labels(logp)
        pairs = dict(zip(nodes.tolist(), classes.tolist()))
        assert pairs[0] == 0 and pairs[1] == 1

    def test_selected_pairs_shapes(self):
        state = self._state()
        nodes, classes = state.selected_pairs()
        assert nodes.shape == classes.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._state(num_classes=1)
        with pytest.raises(ValueError):
            self._state(lambda_init=0.0)
        with pytest.raises(ValueError):
            self._state(labeled_nodes=np.array([], dtype=int),
                        labeled_classes=np.array([], dtype=int))
        with pytest.raises(ValueError):
            self._state(labeled_classes=np.array([0, 5]))

    def test_update_shape_check(self):
        state = self._state()
        with pytest.raises(ValueError):
            state.update(np.zeros((3, 2)))


class TestFairDiscriminator:
    @pytest.fixture
    def disc_setup(self, rng):
        features = rng.normal(size=(20, 8))
        features[:10, 0] += 3.0  # class-0 signal
        protected = np.zeros(20, dtype=bool)
        protected[[0, 1, 10, 11]] = True
        labels = np.array([0] * 10 + [1] * 10)
        return features, protected, labels

    def test_training_reduces_loss(self, disc_setup, rng):
        features, protected, labels = disc_setup
        disc = FairDiscriminator(features, 2, protected, rng, lr=0.05)
        nodes = np.arange(20)
        for _ in range(30):
            record = disc.train_step(nodes, labels, nodes, labels)
        first = disc.loss_history[0]["total"]
        assert record["total"] < first

    def test_learns_separable_labels(self, disc_setup, rng):
        features, protected, labels = disc_setup
        disc = FairDiscriminator(features, 2, protected, rng, lr=0.05)
        nodes = np.arange(20)
        for _ in range(60):
            disc.train_step(nodes, labels, nodes, labels)
        assert (disc.predict() == labels).mean() > 0.9

    def test_probabilities_normalised(self, disc_setup, rng):
        features, protected, _ = disc_setup
        disc = FairDiscriminator(features, 2, protected, rng)
        np.testing.assert_allclose(disc.predict_proba().sum(axis=1), 1.0)

    def test_gamma_zero_disables_parity(self, disc_setup, rng):
        features, protected, labels = disc_setup
        disc = FairDiscriminator(features, 2, protected, rng, gamma=0.0)
        record = disc.train_step(np.arange(20), labels,
                                 np.arange(20), labels)
        assert record["J_F"] == 0.0

    def test_parity_regularizer_reduces_gap(self, disc_setup, rng):
        """With gamma >> 0 the group parity gap should end lower than
        with gamma = 0 (trained identically otherwise)."""
        features, protected, labels = disc_setup

        def run(gamma, seed):
            disc = FairDiscriminator(features, 2, protected,
                                     np.random.default_rng(seed),
                                     lr=0.05, gamma=gamma)
            nodes = np.arange(20)
            for _ in range(40):
                disc.train_step(nodes, labels, nodes, labels)
            return statistical_parity_gap(disc.predict_proba(), protected)

        assert run(5.0, 3) <= run(0.0, 3) + 0.05

    def test_feature_validation(self, rng):
        with pytest.raises(ValueError):
            FairDiscriminator(np.zeros(5), 2, np.zeros(5, dtype=bool), rng)

    def test_mask_validation(self, rng):
        with pytest.raises(ValueError):
            FairDiscriminator(np.zeros((5, 3)), 2,
                              np.zeros(4, dtype=bool), rng)
