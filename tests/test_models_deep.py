"""Tests for the deep baselines: GAE, NetGAN, TagGen, and the walk LM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import planted_protected_graph
from repro.models import (GAEModel, NetGAN, TagGen, TransformerWalkModel,
                          normalized_adjacency)


@pytest.fixture(scope="module")
def small_graph():
    rng = np.random.default_rng(7)
    graph, _, _ = planted_protected_graph(40, 10, rng, p_in=0.3, p_out=0.03)
    return graph


class TestNormalizedAdjacency:
    def test_symmetric(self, small_graph):
        a_hat = normalized_adjacency(small_graph)
        np.testing.assert_allclose(a_hat, a_hat.T, atol=1e-12)

    def test_spectral_radius_at_most_one(self, small_graph):
        a_hat = normalized_adjacency(small_graph)
        eigs = np.linalg.eigvalsh(a_hat)
        assert eigs.max() <= 1.0 + 1e-9


class TestGAE:
    def test_loss_decreases(self, small_graph, rng):
        model = GAEModel(epochs=30, hidden=16, latent=8)
        model.fit(small_graph, rng)
        first = np.mean(model.loss_history[:5])
        last = np.mean(model.loss_history[-5:])
        assert last < first

    def test_generate_matches_size(self, small_graph, rng):
        model = GAEModel(epochs=15, hidden=16, latent=8).fit(small_graph, rng)
        out = model.generate(rng)
        assert out.num_nodes == small_graph.num_nodes
        assert out.num_edges == small_graph.num_edges

    def test_generate_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            GAEModel().generate(rng)


class TestWalkLM:
    def test_log_likelihood_matches_manual(self, rng):
        model = TransformerWalkModel(5, dim=8, num_heads=2, num_layers=1,
                                     max_length=4, rng=rng)
        walks = np.array([[0, 1, 2, 3]])
        ll = model.log_likelihood(walks).numpy()[0]
        # Manual: feed [start, 0, 1, 2], pick log-softmax at targets.
        inputs = np.array([[5, 0, 1, 2]])
        logits = model.forward(inputs).numpy()
        shifted = logits - logits.max(axis=-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        manual = sum(logp[0, t, walks[0, t]] for t in range(4))
        assert ll == pytest.approx(manual, rel=1e-9)

    def test_log_likelihood_pair_matches_two_calls(self, rng):
        """The fused pos/neg forward is bit-identical to two calls."""
        model = TransformerWalkModel(9, dim=8, num_heads=2, num_layers=2,
                                     max_length=7, rng=rng)
        pos = rng.integers(0, 9, size=(5, 7))
        neg = rng.integers(0, 9, size=(8, 7))
        fused_pos, fused_neg = model.log_likelihood_pair(pos, neg)
        np.testing.assert_array_equal(fused_pos.numpy(),
                                      model.log_likelihood(pos).numpy())
        np.testing.assert_array_equal(fused_neg.numpy(),
                                      model.log_likelihood(neg).numpy())

    def test_log_likelihood_pair_pads_unequal_lengths(self, rng):
        """Mixed-length batches pad + mask to the per-batch values."""
        model = TransformerWalkModel(9, dim=8, num_heads=2, num_layers=1,
                                     max_length=7, rng=rng)
        short = rng.integers(0, 9, size=(4, 3))
        long = rng.integers(0, 9, size=(6, 7))
        fused_short, fused_long = model.log_likelihood_pair(short, long)
        np.testing.assert_allclose(fused_short.numpy(),
                                   model.log_likelihood(short).numpy(),
                                   rtol=1e-12, atol=0)
        np.testing.assert_allclose(fused_long.numpy(),
                                   model.log_likelihood(long).numpy(),
                                   rtol=1e-12, atol=0)

    def test_log_likelihood_pair_gradients_match(self, rng):
        """The FairGen generator loss gets identical gradients either way."""
        model = TransformerWalkModel(9, dim=8, num_heads=2, num_layers=1,
                                     max_length=6, rng=rng)
        pos = rng.integers(0, 9, size=(5, 6))
        neg = rng.integers(0, 9, size=(5, 6))

        def loss_grads(fused: bool):
            for p in model.parameters():
                p.grad = None
            if fused:
                pos_ll, neg_ll = model.log_likelihood_pair(pos, neg)
            else:
                pos_ll = model.log_likelihood(pos)
                neg_ll = model.log_likelihood(neg)
            floor = float(pos_ll.numpy().mean()) - 2.0
            loss = -pos_ll.mean() + (neg_ll - floor).relu().mean() * 0.5
            loss.backward()
            return loss.item(), [p.grad.copy() for p in model.parameters()]

        fused_loss, fused_grads = loss_grads(True)
        ref_loss, ref_grads = loss_grads(False)
        assert fused_loss == pytest.approx(ref_loss, abs=0)
        # Weight gradients contract over the batch axis — one 2B-row
        # reduction fused vs two B-row reductions summed — so they can
        # differ by reassociation ULPs even though per-walk forward
        # values are bit-identical.
        for got, want in zip(fused_grads, ref_grads):
            np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    def test_nll_positive(self, rng):
        model = TransformerWalkModel(6, 8, 2, 1, 5, rng)
        walks = rng.integers(0, 6, size=(4, 5))
        assert model.nll(walks).item() > 0

    def test_sample_shapes_and_range(self, rng):
        model = TransformerWalkModel(7, 8, 2, 1, 6, rng)
        walks = model.sample(9, 6, rng)
        assert walks.shape == (9, 6)
        assert walks.min() >= 0 and walks.max() < 7

    def test_sample_pinned_starts(self, rng):
        model = TransformerWalkModel(7, 8, 2, 1, 6, rng)
        starts = np.array([3] * 5)
        walks = model.sample(5, 6, rng, starts=starts)
        np.testing.assert_array_equal(walks[:, 0], 3)

    def test_sample_too_long_rejected(self, rng):
        model = TransformerWalkModel(5, 8, 2, 1, 4, rng)
        with pytest.raises(ValueError):
            model.sample(2, 10, rng)

    def test_invalid_temperature(self, rng):
        model = TransformerWalkModel(5, 8, 2, 1, 4, rng)
        with pytest.raises(ValueError):
            model.sample(2, 4, rng, temperature=0.0)

    def test_training_increases_real_walk_likelihood(self, small_graph, rng):
        """Core MLE sanity: NLL of held-out real walks drops with training."""
        from repro.graph import sample_walks
        from repro.nn import Adam

        model = TransformerWalkModel(small_graph.num_nodes, 16, 2, 1, 8, rng)
        held_out = sample_walks(small_graph, 32, 8, rng)
        before = model.nll(held_out).item()
        opt = Adam(model.parameters(), lr=0.01)
        for _ in range(30):
            batch = sample_walks(small_graph, 16, 8, rng)
            opt.zero_grad()
            loss = model.nll(batch)
            loss.backward()
            opt.step()
        after = model.nll(held_out).item()
        assert after < before


class TestTagGen:
    def test_fit_and_generate(self, small_graph, rng):
        model = TagGen(epochs=2, walks_per_epoch=32, dim=16, num_layers=1)
        out = model.fit(small_graph, rng).generate(rng)
        assert out.num_nodes == small_graph.num_nodes
        assert out.num_edges == small_graph.num_edges

    def test_loss_history_recorded(self, small_graph, rng):
        model = TagGen(epochs=3, walks_per_epoch=32, dim=16, num_layers=1)
        model.fit(small_graph, rng)
        assert len(model.loss_history) == 3

    def test_generate_walks_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            TagGen().generate_walks(4, rng)


class TestNetGAN:
    def test_fit_and_generate(self, small_graph, rng):
        model = NetGAN(iterations=3, batch_size=16, walk_length=6)
        out = model.fit(small_graph, rng).generate(rng)
        assert out.num_nodes == small_graph.num_nodes
        assert out.num_edges == small_graph.num_edges

    def test_generated_walks_in_range(self, small_graph, rng):
        model = NetGAN(iterations=2, batch_size=8, walk_length=5)
        model.fit(small_graph, rng)
        walks = model.generate_walks(20, rng)
        assert walks.shape == (20, 5)
        assert walks.min() >= 0
        assert walks.max() < small_graph.num_nodes

    def test_critic_weight_clipping(self, small_graph, rng):
        model = NetGAN(iterations=2, batch_size=8, clip=0.01)
        model.fit(small_graph, rng)
        for p in model.critic.parameters():
            assert np.abs(p.data).max() <= 0.01 + 1e-12

    def test_generate_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            NetGAN().generate_walks(4, rng)

    def test_zero_critic_steps_rejected(self):
        # The WGAN iteration's record is the last critic loss, so a
        # critic-free iteration is meaningless; fail at construction.
        with pytest.raises(ValueError, match="critic_steps"):
            NetGAN(critic_steps=0)

    def test_rollout_soft_is_distribution(self, small_graph, rng):
        model = NetGAN(iterations=1, batch_size=4, walk_length=4)
        model.fit(small_graph, rng)
        z = rng.standard_normal((4, model.latent_dim))
        soft, hard = model.generator.rollout(z, 4, rng)
        sums = soft.numpy().sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-8)
        assert hard.shape == (4, 4)
