"""Tests for the LSTM substrate and the optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (Adam, LSTM, LSTMCell, Linear, SGD, Tensor,
                      clip_grad_norm)
from repro.nn import functional as F


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(3, 5, rng)
        h, c = cell(Tensor(rng.normal(size=(2, 3))), cell.zero_state(2))
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(3, 5, rng)
        np.testing.assert_allclose(cell.ih.bias.numpy()[5:10], 1.0)

    def test_state_propagates(self, rng):
        cell = LSTMCell(2, 4, rng)
        x = Tensor(rng.normal(size=(1, 2)))
        s0 = cell.zero_state(1)
        s1 = cell(x, s0)
        s2 = cell(x, s1)
        assert not np.allclose(s1[0].numpy(), s2[0].numpy())

    def test_gradients_flow_through_time(self, rng):
        cell = LSTMCell(2, 3, rng)
        x = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        state = cell.zero_state(1)
        for _ in range(4):
            state = cell(x, state)
        state[0].sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestLSTM:
    def test_sequence_shape(self, rng):
        lstm = LSTM(3, 6, rng)
        out, (h, c) = lstm(Tensor(rng.normal(size=(2, 7, 3))))
        assert out.shape == (2, 7, 6)
        assert h.shape == (2, 6)

    def test_last_output_equals_final_state(self, rng):
        lstm = LSTM(3, 4, rng)
        out, (h, _) = lstm(Tensor(rng.normal(size=(1, 5, 3))))
        np.testing.assert_allclose(out.numpy()[:, -1], h.numpy())

    def test_learns_to_memorise_first_token(self, rng):
        """An LSTM + readout should learn to output the first input."""
        lstm = LSTM(1, 8, rng)
        readout = Linear(8, 1, rng)
        params = list(lstm.parameters()) + list(readout.parameters())
        opt = Adam(params, lr=0.02)
        for _ in range(150):
            x = rng.choice([-1.0, 1.0], size=(8, 5, 1))
            target = x[:, 0, :]
            opt.zero_grad()
            out, (h, _) = lstm(Tensor(x))
            loss = F.mse_loss(readout(h), target)
            loss.backward()
            opt.step()
        assert loss.item() < 0.1


class TestSGD:
    def test_minimises_quadratic(self):
        from repro.nn import Parameter

        w = Parameter(np.array([5.0]))
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            ((w - 2.0) ** 2).sum().backward()
            opt.step()
        assert w.numpy()[0] == pytest.approx(2.0, abs=1e-4)

    def test_momentum_accelerates(self):
        from repro.nn import Parameter

        def run(momentum):
            w = Parameter(np.array([5.0]))
            opt = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                ((w - 2.0) ** 2).sum().backward()
                opt.step()
            return abs(w.numpy()[0] - 2.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        from repro.nn import Parameter

        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert abs(w.numpy()[0]) < 1.0

    def test_rejects_bad_lr(self):
        from repro.nn import Parameter

        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_minimises_quadratic(self):
        from repro.nn import Parameter

        w = Parameter(np.array([5.0, -3.0]))
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((w - 1.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.numpy(), [1.0, 1.0], atol=1e-3)

    def test_skips_params_without_grad(self):
        from repro.nn import Parameter

        w1 = Parameter(np.array([1.0]))
        w2 = Parameter(np.array([1.0]))
        opt = Adam([w1, w2], lr=0.1)
        opt.zero_grad()
        ((w1 - 2.0) ** 2).sum().backward()
        opt.step()
        assert w1.numpy()[0] != 1.0
        assert w2.numpy()[0] == 1.0

    def test_bias_correction_first_step_magnitude(self):
        """First Adam step should be ~lr in the gradient direction."""
        from repro.nn import Parameter

        w = Parameter(np.array([0.0]))
        opt = Adam([w], lr=0.1)
        opt.zero_grad()
        (w * 3.0).sum().backward()
        opt.step()
        assert w.numpy()[0] == pytest.approx(-0.1, rel=1e-4)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        from repro.nn import Parameter

        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        pre = clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        from repro.nn import Parameter

        w = Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, [0.1, 0.1])

    def test_ignores_none_grads(self):
        from repro.nn import Parameter

        w = Parameter(np.zeros(2))
        assert clip_grad_norm([w], 1.0) == 0.0


class TestFunctional:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        t = Tensor(logits)
        loss = F.cross_entropy(t, targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -log_probs[np.arange(4), targets].mean()
        assert loss == pytest.approx(manual)

    def test_cross_entropy_weights(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        targets = np.array([0, 1])
        unweighted = F.cross_entropy(logits, targets, reduction="sum").item()
        doubled = F.cross_entropy(logits, targets,
                                  weights=np.array([2.0, 2.0]),
                                  reduction="sum").item()
        assert doubled == pytest.approx(2 * unweighted)

    def test_nll_reduction_none_shape(self, rng):
        logp = Tensor(rng.normal(size=(5, 3))).log_softmax(axis=-1)
        out = F.nll_loss(logp, np.zeros(5, dtype=int), reduction="none")
        assert out.shape == (5,)

    def test_bad_reduction_raises(self, rng):
        logp = Tensor(rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            F.nll_loss(logp, np.array([0, 1]), reduction="bogus")

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.normal(size=6)
        targets = rng.integers(0, 2, size=6).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits),
                                                  targets).item()
        p = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_cross_entropy_gradient(self, rng):
        from repro.nn.gradcheck import check_gradients

        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        check_gradients(lambda: F.cross_entropy(logits, targets), [logits])
