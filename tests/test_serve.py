"""Tests for the serving subsystem: engine, daemon, client, shutdown.

The load-bearing property throughout is the determinism contract: a
walk served through the continuous-batching engine — whatever other
requests it shared the decode batch with — is byte-identical to the
same walk generated standalone.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, Runner, Supervision
from repro.graph import planted_protected_graph
from repro.models.walk_lm import TransformerWalkModel
from repro.registry import create_model
from repro.serve import ContinuousBatcher, serve_walks
from repro.serve.client import ServeClient, ServeClientError, ServerBusy
from repro.serve.daemon import AdmissionControl, ModelHouse, ServeDaemon

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def walk_model():
    return TransformerWalkModel(num_nodes=23, dim=32, num_heads=4,
                                num_layers=2, max_length=40,
                                rng=np.random.default_rng(7))


# ----------------------------------------------------------------------
# ContinuousBatcher
# ----------------------------------------------------------------------
class TestContinuousBatcher:
    def test_single_request_matches_standalone(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=32)
        ticket = engine.submit(5, 12, np.random.default_rng(42))
        engine.drain()
        np.testing.assert_array_equal(
            ticket.result(), walk_model.sample(5, 12,
                                               np.random.default_rng(42)))

    def test_coalesced_mixed_lengths_stay_byte_identical(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=64)
        specs = [(4, 9), (3, 17), (6, 30), (2, 12), (5, 25)]
        tickets = [
            engine.submit(n, ln, np.random.default_rng(100 + i),
                          temperature=0.8 + 0.1 * i)
            for i, (n, ln) in enumerate(specs)]
        engine.drain()
        assert engine.stats.peak_batch == sum(n for n, _ in specs)
        for i, (ticket, (n, ln)) in enumerate(zip(tickets, specs)):
            np.testing.assert_array_equal(
                ticket.result(),
                walk_model.sample(n, ln, np.random.default_rng(100 + i),
                                  temperature=0.8 + 0.1 * i))

    def test_midstream_arrival_matches_standalone(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=64)
        first = engine.submit(3, 28, np.random.default_rng(11))
        for _ in range(5):
            engine.step()
        second = engine.submit(4, 10, np.random.default_rng(12))
        for _ in range(3):
            engine.step()
        third = engine.submit(2, 20, np.random.default_rng(13),
                              starts=np.array([5, 6]))
        engine.drain()
        np.testing.assert_array_equal(
            first.result(), walk_model.sample(3, 28,
                                              np.random.default_rng(11)))
        np.testing.assert_array_equal(
            second.result(), walk_model.sample(4, 10,
                                               np.random.default_rng(12)))
        np.testing.assert_array_equal(
            third.result(),
            walk_model.sample(2, 20, np.random.default_rng(13),
                              starts=np.array([5, 6])))

    def test_pinned_start_length_one_completes_without_decode(
            self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=8)
        ticket = engine.submit(3, 1, np.random.default_rng(0),
                               starts=np.array([1, 2, 3]))
        engine.drain()
        np.testing.assert_array_equal(ticket.result(),
                                      np.array([[1], [2], [3]]))
        assert engine.stats.steps == 0

    def test_fifo_admission_never_starves_large_request(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=8)
        small = engine.submit(6, 6, np.random.default_rng(1))
        big = engine.submit(8, 6, np.random.default_rng(2))
        tail = engine.submit(2, 6, np.random.default_rng(3))
        engine.drain()
        for ticket, (n, seed) in zip((small, big, tail),
                                     ((6, 1), (8, 2), (2, 3))):
            np.testing.assert_array_equal(
                ticket.result(),
                walk_model.sample(n, 6, np.random.default_rng(seed)))

    def test_submit_validation(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=8)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="max_walks"):
            engine.submit(9, 5, rng)
        with pytest.raises(ValueError):
            engine.submit(0, 5, rng)
        with pytest.raises(ValueError, match="maximum"):
            engine.submit(2, walk_model.max_length + 1, rng)
        with pytest.raises(ValueError, match="temperature"):
            engine.submit(2, 5, rng, temperature=0.0)
        with pytest.raises(ValueError, match="starts"):
            engine.submit(2, 5, rng, starts=np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="out-of-range"):
            engine.submit(2, 5, rng, starts=np.array([1, 99]))

    def test_cancel_while_queued(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=4)
        blocker = engine.submit(4, 30, np.random.default_rng(1))
        victim = engine.submit(4, 5, np.random.default_rng(2))
        engine.step()  # admits only the blocker (batch is full)
        assert victim.cancel()
        engine.drain()
        assert blocker.done and victim.cancelled
        assert engine.stats.cancelled == 1
        with pytest.raises(TimeoutError):
            victim.result(timeout=0.01)

    def test_ticket_timeout(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=4)
        ticket = engine.submit(2, 10, np.random.default_rng(0))
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)  # nobody is stepping
        engine.drain()
        assert ticket.result().shape == (2, 10)

    def test_run_loop_drains_on_stop(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=16)
        stop = threading.Event()
        thread = threading.Thread(target=engine.run, args=(stop,))
        thread.start()
        ticket = engine.submit(4, 25, np.random.default_rng(5))
        stop.set()
        engine._work.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        np.testing.assert_array_equal(
            ticket.result(timeout=0),
            walk_model.sample(4, 25, np.random.default_rng(5)))


class TestServeWalks:
    def test_matches_sample_chunked(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=16)
        stop = threading.Event()
        thread = threading.Thread(target=engine.run, args=(stop,))
        thread.start()
        try:
            got = serve_walks(engine, 20, 15, np.random.default_rng(99),
                              chunk=7)
        finally:
            stop.set()
            engine._work.set()
            thread.join()
        np.testing.assert_array_equal(
            got, walk_model.sample_chunked(20, 15,
                                           np.random.default_rng(99),
                                           chunk=7))

    def test_starts_fn_consumes_rng_like_sample_chunked(self, walk_model):
        def starts_fn(take, rng):
            return rng.integers(0, walk_model.num_nodes, size=take)

        engine = ContinuousBatcher(walk_model, max_walks=16)
        stop = threading.Event()
        thread = threading.Thread(target=engine.run, args=(stop,))
        thread.start()
        try:
            got = serve_walks(engine, 20, 9, np.random.default_rng(31),
                              chunk=6, starts_fn=starts_fn)
        finally:
            stop.set()
            engine._work.set()
            thread.join()
        np.testing.assert_array_equal(
            got, walk_model.sample_chunked(20, 9, np.random.default_rng(31),
                                           chunk=6, starts_fn=starts_fn))

    def test_deadline_cancels_and_raises(self, walk_model):
        engine = ContinuousBatcher(walk_model, max_walks=4)
        with pytest.raises(TimeoutError):
            serve_walks(engine, 4, 10, np.random.default_rng(0),
                        deadline=time.monotonic() + 0.01)
        # the request was withdrawn, so the engine can go idle
        engine.drain()
        assert engine.idle


# ----------------------------------------------------------------------
# Parity across every sample_chunked user
# ----------------------------------------------------------------------
class TestServedModelParity:
    @pytest.fixture(scope="class")
    def fitted_setting(self):
        rng = np.random.default_rng(17)
        graph, _, _ = planted_protected_graph(
            36, 9, rng, p_in=0.3, p_out=0.04, num_classes=2,
            protected_as_class=True)
        supervision = Supervision.surrogate_for(
            graph, rng=np.random.default_rng(24))
        return graph, supervision

    def _served(self, walk_model, n_walks, length, seed, starts_fn=None):
        engine = ContinuousBatcher(walk_model, max_walks=256)
        stop = threading.Event()
        thread = threading.Thread(target=engine.run, args=(stop,))
        thread.start()
        try:
            return serve_walks(engine, n_walks, length,
                               np.random.default_rng(seed),
                               starts_fn=starts_fn)
        finally:
            stop.set()
            engine._work.set()
            thread.join()

    def test_taggen_generate_walks_parity(self, fitted_setting):
        graph, _ = fitted_setting
        model = create_model("taggen", profile="smoke")
        model.fit(graph, np.random.default_rng(5))
        reference = model.generate_walks(40, np.random.default_rng(77))
        served = self._served(model.model, 40, model.walk_length, 77)
        np.testing.assert_array_equal(served, reference)

    def test_fairgen_generate_walks_parity(self, fitted_setting):
        graph, supervision = fitted_setting
        model = create_model("fairgen", profile="smoke")
        model.fit(graph, np.random.default_rng(5), supervision=supervision)
        reference = model.generate_walks(40, np.random.default_rng(77))
        served = self._served(model.generator, 40,
                              model.config.walk_length, 77,
                              starts_fn=model._generation_starts)
        np.testing.assert_array_equal(served, reference)

    def test_walk_model_chunked_parity_with_midstream_traffic(
            self, walk_model):
        """Parity must hold while unrelated requests share the batch."""
        engine = ContinuousBatcher(walk_model, max_walks=64)
        stop = threading.Event()
        thread = threading.Thread(target=engine.run, args=(stop,))
        thread.start()
        results: dict[int, np.ndarray] = {}

        def client(i):
            results[i] = serve_walks(engine, 12, 8 + 5 * i,
                                     np.random.default_rng(200 + i),
                                     chunk=5)

        clients = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        try:
            for t in clients:
                t.start()
                time.sleep(0.003)  # stagger: arrivals land mid-decode
            for t in clients:
                t.join()
        finally:
            stop.set()
            engine._work.set()
            thread.join()
        for i in range(4):
            np.testing.assert_array_equal(
                results[i],
                walk_model.sample_chunked(12, 8 + 5 * i,
                                          np.random.default_rng(200 + i),
                                          chunk=5))


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_bounds_and_counters(self):
        control = AdmissionControl(max_inflight=2, queue_depth=1)
        assert control.enter() and control.enter() and control.enter()
        assert not control.enter()  # 4th request overflows 2+1
        assert control.rejected == 1
        control.leave()
        assert control.enter()
        snapshot = control.snapshot()
        assert snapshot["in_system"] == 3
        assert snapshot["accepted"] == 4
        assert control.retry_after() >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionControl(queue_depth=-1)


# ----------------------------------------------------------------------
# Daemon over HTTP (in-process)
# ----------------------------------------------------------------------
class TestServeDaemon:
    @pytest.fixture()
    def daemon(self, walk_model):
        daemon = ServeDaemon(None, port=0, max_walks=64)
        daemon.house.adopt("toy", walk_model)
        daemon.start()
        yield daemon
        daemon.shutdown()

    def test_generate_parity_over_http(self, daemon, walk_model):
        client = ServeClient(daemon.url)
        got = client.generate("toy", 10, length=14, seed=3)
        np.testing.assert_array_equal(
            got, walk_model.sample_chunked(10, 14,
                                           np.random.default_rng(3)))

    def test_healthz_and_stats(self, daemon):
        client = ServeClient(daemon.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert "toy" in health["resident_models"]
        client.generate("toy", 2, length=5, seed=0)
        stats = client.stats()
        assert stats["admission"]["completed"] >= 1
        assert stats["engines"]["toy"]["completed"] >= 1

    def test_unknown_model_is_404(self, daemon):
        with pytest.raises(ServeClientError) as err:
            ServeClient(daemon.url).generate("missing", 2)
        assert err.value.status == 404

    def test_invalid_arguments_are_400(self, daemon):
        client = ServeClient(daemon.url)
        with pytest.raises(ServeClientError) as err:
            client.generate("toy", 2, length=999)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client.generate("toy", 0)
        assert err.value.status == 400

    def test_unknown_route_is_404(self, daemon):
        with pytest.raises(ServeClientError) as err:
            ServeClient(daemon.url)._request("GET", "/nope")
        assert err.value.status == 404

    def test_overflow_is_429_with_retry_after(self, walk_model):
        daemon = ServeDaemon(None, port=0, max_inflight=1, queue_depth=0,
                             max_walks=16)
        daemon.house.adopt("toy", walk_model)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            errors: list[ServerBusy] = []
            oks: list[np.ndarray] = []

            def fire(seed):
                try:
                    oks.append(client.generate("toy", 8, length=30,
                                               seed=seed))
                except ServerBusy as busy:
                    errors.append(busy)

            threads = [threading.Thread(target=fire, args=(s,))
                       for s in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors, "saturating 1+0 admission must yield 429s"
            assert all(busy.retry_after >= 1 for busy in errors)
            assert len(oks) + len(errors) == 6
        finally:
            daemon.shutdown()

    def test_concurrent_clients_with_backoff_all_byte_identical(
            self, walk_model):
        daemon = ServeDaemon(None, port=0, max_inflight=2, queue_depth=1,
                             max_walks=64)
        daemon.house.adopt("toy", walk_model)
        daemon.start()
        try:
            client = ServeClient(daemon.url, retries=10)
            results: dict[int, np.ndarray] = {}

            def go(i):
                results[i] = client.generate("toy", 6, length=10 + i,
                                             seed=100 + i)

            threads = [threading.Thread(target=go, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            daemon.shutdown()
        for i in range(6):
            np.testing.assert_array_equal(
                results[i],
                walk_model.sample_chunked(6, 10 + i,
                                          np.random.default_rng(100 + i)))

    def test_shutdown_drains_inflight_request(self, walk_model):
        daemon = ServeDaemon(None, port=0, max_walks=32)
        daemon.house.adopt("toy", walk_model)
        daemon.start()
        client = ServeClient(daemon.url)
        box: dict[str, np.ndarray] = {}
        thread = threading.Thread(
            target=lambda: box.update(
                walks=client.generate("toy", 8, length=35, seed=9)))
        thread.start()
        time.sleep(0.05)  # let the request reach the engine
        daemon.shutdown()
        thread.join()
        np.testing.assert_array_equal(
            box["walks"],
            walk_model.sample_chunked(8, 35, np.random.default_rng(9)))


# ----------------------------------------------------------------------
# ModelHouse against the real artifact cache
# ----------------------------------------------------------------------
class TestModelHouse:
    @pytest.fixture(scope="class")
    def warm_cache(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("serve-cache")
        runner = Runner(cache_dir=cache)
        spec = ExperimentSpec(model="taggen", dataset="EMAIL",
                              profile="smoke")
        runner.run(spec, need_model=True, with_metrics=True)
        return cache, spec

    def test_loads_fitted_model_from_cache(self, warm_cache):
        cache, spec = warm_cache
        house = ModelHouse(cache, max_models=2)
        resident = house.get(spec.cache_key())
        assert resident.default_length == resident.model.walk_length
        assert house.loads == 1
        house.get(spec.cache_key())
        assert house.loads == 1  # second hit is resident

    def test_mmap_backing(self, warm_cache):
        cache, spec = warm_cache
        house = ModelHouse(cache, max_models=2)
        weight = house.get(spec.cache_key()) \
            .model.model.embed.weight.data
        assert not weight.flags.writeable
        assert isinstance(weight.base, np.memmap)

    def test_unknown_key_and_bad_key(self, warm_cache):
        from repro.serve.daemon import ServeError

        cache, _ = warm_cache
        house = ModelHouse(cache)
        with pytest.raises(ServeError) as err:
            house.get("nonexistent__KEY__smoke__s0")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            house.get("../escape")
        assert err.value.status == 400

    def test_lru_evicts_idle_models(self, walk_model):
        house = ModelHouse(None, max_models=2)
        for key in ("a", "b", "c"):
            house.adopt(key, walk_model)
        assert house.resident_keys() == ["b", "c"]
        assert house.evictions == 1

    def test_busy_engine_survives_eviction(self, walk_model):
        house = ModelHouse(None, max_models=1)
        house.adopt("busy", walk_model)
        house.get("busy").engine.submit(2, 10, np.random.default_rng(0))
        house.adopt("new", walk_model)
        assert "busy" in house.resident_keys()  # never abandon walks

    def test_daemon_generate_and_evaluate_from_cache(self, warm_cache):
        cache, spec = warm_cache
        key = spec.cache_key()
        daemon = ServeDaemon(cache, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            walks = client.generate(key, 12, seed=5)
            model = daemon.house.get(key).model
            np.testing.assert_array_equal(
                walks, model.generate_walks(12, np.random.default_rng(5)))
            scoreboard = client.evaluate(key)
            assert scoreboard["cached"] is True
            assert "overall_mean" in scoreboard["metrics"]
        finally:
            daemon.shutdown()

    def test_daemon_cold_evaluate_persists_metrics(self, tmp_path):
        # A run cached without metrics: the first evaluate replays the
        # spec through the Runner and writes the scoreboard back into
        # the sidecar, so the second evaluate hits the warm branch.
        runner = Runner(cache_dir=tmp_path)
        spec = ExperimentSpec(model="er", dataset="EMAIL",
                              profile="smoke")
        runner.run(spec, with_metrics=False)
        key = spec.cache_key()
        meta = json.loads((tmp_path / f"{key}.json").read_text())
        assert not meta.get("metrics")
        daemon = ServeDaemon(tmp_path, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            cold = client.evaluate(key)
            assert cold["cached"] is False
            assert "overall_mean" in cold["metrics"]
            meta = json.loads((tmp_path / f"{key}.json").read_text())
            assert meta["metrics"]  # written back through the cache
            warm = client.evaluate(key)
            assert warm["cached"] is True
            assert warm["metrics"] == cold["metrics"]
        finally:
            daemon.shutdown()


# ----------------------------------------------------------------------
# Graceful shutdown of the real processes
# ----------------------------------------------------------------------
def _spawn(args, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"),
               PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args], cwd=cwd, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def _wait_for_line(process, marker, timeout=60.0):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                break
            continue
        lines.append(line)
        if marker in line:
            return line, lines
    raise AssertionError(
        f"marker {marker!r} not seen; output so far: {''.join(lines)}")


class TestGracefulShutdownSubprocess:
    def test_serve_sigterm_drains_inflight_request(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        spec = ExperimentSpec(model="taggen", dataset="EMAIL",
                              profile="smoke")
        runner.run(spec, need_model=True)
        key = spec.cache_key()

        process = _spawn(["serve", "--cache-dir", str(tmp_path),
                          "--port", "0"])
        try:
            line, _ = _wait_for_line(process, "serving on ")
            url = line.split("serving on ", 1)[1].split()[0]
            client = ServeClient(url)
            assert client.healthz()["status"] == "ok"

            box: dict[str, np.ndarray] = {}
            thread = threading.Thread(
                target=lambda: box.update(
                    walks=client.generate(key, 32, seed=4)))
            thread.start()
            time.sleep(0.2)  # request reaches the daemon's engine
            process.send_signal(signal.SIGTERM)
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert process.wait(timeout=60) == 0

            model = Runner(cache_dir=tmp_path).run(
                spec, need_model=True).model
            np.testing.assert_array_equal(
                box["walks"],
                model.generate_walks(32, np.random.default_rng(4)))
        finally:
            if process.poll() is None:
                process.kill()
            process.wait()
            process.stdout.close()

    def test_worker_keep_alive_sigterm_finishes_job(self, tmp_path):
        from repro.experiments import JobQueue

        queue_dir = tmp_path / "queue"
        cache_dir = tmp_path / "cache"
        queue = JobQueue(queue_dir)
        spec = ExperimentSpec(model="er", dataset="EMAIL",
                              profile="smoke")
        queue.submit([spec])

        process = _spawn(["worker", str(queue_dir),
                          "--cache-dir", str(cache_dir), "--keep-alive"])
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not queue.drained():
                time.sleep(0.1)
            assert queue.drained(), "worker never finished the job"
            # keep-alive: still polling — SIGTERM must end it cleanly
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            output = process.stdout.read()
            assert "1 completed" in output
        finally:
            if process.poll() is None:
                process.kill()
            process.wait()
            process.stdout.close()
