"""Tests for random walks and the diffusion-core machinery (Def. 1 /
Lemma 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (Graph, diffusion_core, escape_probability,
                         indicator_vector, lemma21_bound, node2vec_walk,
                         sample_walks, stay_probability,
                         uniform_random_walk, walks_to_edge_counts)


def _walk_is_valid(graph: Graph, walk: np.ndarray) -> bool:
    """Consecutive nodes must be adjacent (or equal, for lazy stalls)."""
    for a, b in zip(walk[:-1], walk[1:]):
        if a != b and not graph.has_edge(int(a), int(b)):
            return False
    return True


class TestUniformWalk:
    def test_walk_length_and_start(self, two_cliques_graph, rng):
        walk = uniform_random_walk(two_cliques_graph, 0, 7, rng)
        assert walk.shape == (7,)
        assert walk[0] == 0

    def test_walk_follows_edges(self, two_cliques_graph, rng):
        for _ in range(20):
            walk = uniform_random_walk(two_cliques_graph,
                                       int(rng.integers(8)), 10, rng)
            assert _walk_is_valid(two_cliques_graph, walk)

    def test_isolated_node_stays(self, rng):
        g = Graph.from_edges(3, [(0, 1)])
        walk = uniform_random_walk(g, 2, 5, rng)
        np.testing.assert_array_equal(walk, [2, 2, 2, 2, 2])


class TestNode2VecWalk:
    def test_follows_edges(self, two_cliques_graph, rng):
        for _ in range(20):
            walk = node2vec_walk(two_cliques_graph, 0, 10, rng,
                                 p=0.5, q=2.0)
            assert _walk_is_valid(two_cliques_graph, walk)

    def test_invalid_pq_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            node2vec_walk(triangle_graph, 0, 5, rng, p=0.0)

    def test_length_one(self, triangle_graph, rng):
        walk = node2vec_walk(triangle_graph, 1, 1, rng)
        np.testing.assert_array_equal(walk, [1])

    def test_low_p_returns_often(self, path_graph, rng):
        """Tiny p makes the walk oscillate back to the previous node.

        The 200 Monte-Carlo walks only feed a bulk return-rate estimate,
        so they are drawn in one batched WalkEngine call; the scalar
        walker's bias equivalence is covered by tests/test_walk_engine.py.
        """
        walks = path_graph.walk_engine().node2vec_walks(
            np.full(200, 2, dtype=np.int64), 4, rng, p=1e-4, q=1.0)
        assert (walks[:, 2] == walks[:, 0]).mean() > 0.7

    def test_high_p_explores(self, rng):
        """Huge p (never return) on a cycle keeps moving forward."""
        cycle = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        walks = cycle.walk_engine().node2vec_walks(
            np.zeros(50, dtype=np.int64), 4, rng, p=1e6, q=1.0)
        assert (walks[:, 2] != walks[:, 0]).all()


class TestSampleWalks:
    def test_shape(self, two_cliques_graph, rng):
        walks = sample_walks(two_cliques_graph, 12, 6, rng)
        assert walks.shape == (12, 6)

    def test_explicit_starts(self, two_cliques_graph, rng):
        starts = np.array([1, 5, 7])
        walks = sample_walks(two_cliques_graph, 3, 4, rng, starts=starts)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_starts_length_mismatch(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            sample_walks(triangle_graph, 3, 4, rng, starts=np.array([0]))

    def test_zero_walks_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            sample_walks(triangle_graph, 0, 4, rng)

    def test_degree_weighted_starts(self, rng):
        """A star's hub should start far more walks than each leaf."""
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        walks = sample_walks(star, 400, 2, rng)
        hub_fraction = (walks[:, 0] == 0).mean()
        assert 0.35 < hub_fraction < 0.65  # hub has half the volume


class TestWalksToEdgeCounts:
    def test_counts_transitions(self):
        walks = np.array([[0, 1, 2], [0, 1, 0]])
        counts = walks_to_edge_counts(walks, 3)
        assert counts[0, 1] == 3  # 0-1, 1-2 ... wait: 0-1 appears 3 times
        assert counts[1, 2] == 1
        assert counts[0, 2] == 0

    def test_symmetric(self, two_cliques_graph, rng):
        walks = sample_walks(two_cliques_graph, 10, 5, rng)
        counts = walks_to_edge_counts(walks, 8)
        assert (abs(counts - counts.T)).nnz == 0

    def test_ignores_lazy_self_transitions(self):
        walks = np.array([[2, 2, 2]])
        counts = walks_to_edge_counts(walks, 3)
        assert counts.nnz == 0


class TestIndicatorVector:
    def test_values(self):
        chi = indicator_vector([0, 2], 4)
        np.testing.assert_array_equal(chi, [1.0, 0.0, 1.0, 0.0])


class TestEscapeProbability:
    def test_zero_steps_no_escape(self, two_cliques_graph):
        assert escape_probability(two_cliques_graph, [0, 1, 2, 3], 0, 0) == 0.0

    def test_monotone_in_steps(self, two_cliques_graph):
        s = [0, 1, 2, 3]
        probs = [escape_probability(two_cliques_graph, s, 0, t)
                 for t in range(6)]
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_start_outside_s_escapes_immediately(self, two_cliques_graph):
        assert escape_probability(two_cliques_graph, [0, 1], 5, 3) == 1.0

    def test_disconnected_set_never_escapes(self, disconnected_graph):
        # Nodes {0,1,2} form a component: no walk can leave it.
        assert escape_probability(disconnected_graph, [0, 1, 2], 0,
                                  20) == pytest.approx(0.0, abs=1e-12)

    def test_stay_probability_complement(self, two_cliques_graph):
        s = [0, 1, 2, 3]
        esc = escape_probability(two_cliques_graph, s, 1, 4)
        stay = stay_probability(two_cliques_graph, s, 1, 4)
        assert esc + stay == pytest.approx(1.0)

    def test_negative_steps_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            escape_probability(triangle_graph, [0], 0, -1)


class TestDiffusionCore:
    def test_interior_nodes_in_core(self, two_cliques_graph):
        """Clique nodes not on the bridge escape rarely -> in the core."""
        core = diffusion_core(two_cliques_graph, [0, 1, 2, 3],
                              delta=0.9, steps=3)
        assert {0, 1, 2}.issubset(set(core.tolist()))

    def test_core_subset_of_s(self, two_cliques_graph):
        s = np.array([0, 1, 2, 3])
        core = diffusion_core(two_cliques_graph, s, delta=0.5, steps=4)
        assert set(core.tolist()).issubset(set(s.tolist()))

    def test_delta_monotone(self, two_cliques_graph):
        s = [0, 1, 2, 3]
        small = diffusion_core(two_cliques_graph, s, delta=0.1, steps=3)
        large = diffusion_core(two_cliques_graph, s, delta=0.9, steps=3)
        assert set(small.tolist()).issubset(set(large.tolist()))

    def test_invalid_delta(self, triangle_graph):
        with pytest.raises(ValueError):
            diffusion_core(triangle_graph, [0, 1], delta=0.0, steps=2)

    def test_matches_escape_probability_definition(self, two_cliques_graph):
        """Core membership must agree with Def. 1 computed per node."""
        s = np.array([0, 1, 2, 3])
        delta, steps = 0.7, 3
        phi = two_cliques_graph.conductance(s)
        core = set(diffusion_core(two_cliques_graph, s, delta, steps).tolist())
        for x in s:
            escapes = escape_probability(two_cliques_graph, s, int(x), steps)
            assert (escapes < delta * phi) == (int(x) in core)


class TestLemma21:
    def test_bound_formula(self, two_cliques_graph):
        s = [0, 1, 2, 3]
        phi = two_cliques_graph.conductance(s)
        bound = lemma21_bound(two_cliques_graph, s, delta=0.5, walk_length=4)
        assert bound == pytest.approx(max(0.0, 1.0 - 4 * 0.5 * phi))

    def test_bound_clipped_at_zero(self, triangle_graph):
        assert lemma21_bound(triangle_graph, [0], delta=0.99,
                             walk_length=100) == 0.0

    def test_lemma_holds_empirically(self, rng):
        """Monte-Carlo check: empirical stay-rate of lazy walks from a
        diffusion-core node must meet the Lemma 2.1 lower bound."""
        from repro.graph import planted_protected_graph

        graph, _, protected = planted_protected_graph(
            80, 20, rng, p_in=0.4, p_out=0.01, protected_as_class=True)
        s = np.flatnonzero(protected)
        delta, length = 0.5, 6
        # The lemma's telescoping proof applies the Definition-1 bound at
        # each individual step, so the core is computed at small t; the
        # Monte-Carlo check then verifies the full T-length bound.
        core = diffusion_core(graph, s, delta, steps=2)
        if core.size == 0:
            pytest.skip("degenerate sample: empty diffusion core")
        bound = lemma21_bound(graph, s, delta, length)
        start = int(core[0])
        trials = 400
        # All 400 Monte-Carlo chains advance lock-step in one batched
        # WalkEngine call (the engine's first-order step is the same
        # uniform-neighbor draw as a transition_matrix column); the loop
        # only gathered the bulk stay-rate.
        walks = graph.walk_engine().uniform_walks(
            np.full(trials, start, dtype=np.int64), length + 1, rng)
        empirical = np.isin(walks, s).all(axis=1).mean()
        # Allow Monte-Carlo slack of 3 standard errors.
        slack = 3 * np.sqrt(bound * (1 - bound) / trials + 1e-9)
        assert empirical >= bound - slack - 0.02
