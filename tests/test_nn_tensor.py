"""Tests for the autograd engine: every op forward + gradient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn.gradcheck import check_gradients


def _rand(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestBasics:
    def test_construction_defaults(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert not t.requires_grad
        assert t.grad is None

    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1, 2, 3])) == 3

    def test_detach_cuts_graph(self, rng):
        x = _rand(rng, 3)
        d = (x * 2).detach()
        assert not d.requires_grad
        assert d._prev == ()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self, rng):
        x = _rand(rng, 3)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self, rng):
        x = _rand(rng, 3)
        y = x * 3.0
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, 3.0 * np.ones(3))

    def test_repr_mentions_requires_grad(self, rng):
        assert "requires_grad" in repr(_rand(rng, 2))


class TestNoGrad:
    def test_no_grad_context(self, rng):
        x = _rand(rng, 2)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_nested_restores(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self, rng):
        x, y = _rand(rng, 3, 2), _rand(rng, 3, 2)
        check_gradients(lambda: (x + y).sum(), [x, y])

    def test_add_broadcast(self, rng):
        x, y = _rand(rng, 3, 2), _rand(rng, 2)
        check_gradients(lambda: (x + y).sum(), [x, y])

    def test_radd_scalar(self, rng):
        x = _rand(rng, 3)
        check_gradients(lambda: (2.0 + x).sum(), [x])

    def test_sub(self, rng):
        x, y = _rand(rng, 2, 3), _rand(rng, 2, 3)
        check_gradients(lambda: (x - y).sum(), [x, y])

    def test_rsub(self, rng):
        x = _rand(rng, 3)
        check_gradients(lambda: (1.0 - x).sum(), [x])

    def test_mul(self, rng):
        x, y = _rand(rng, 4), _rand(rng, 4)
        check_gradients(lambda: (x * y).sum(), [x, y])

    def test_mul_broadcast_scalar_tensor(self, rng):
        x, s = _rand(rng, 3, 2), _rand(rng, 1)
        check_gradients(lambda: (x * s).sum(), [x, s])

    def test_div(self, rng):
        x = _rand(rng, 4)
        y = Tensor(np.abs(np.random.default_rng(0).normal(size=4)) + 1.0,
                   requires_grad=True)
        check_gradients(lambda: (x / y).sum(), [x, y])

    def test_rtruediv(self, rng):
        y = Tensor(np.abs(rng.normal(size=3)) + 1.0, requires_grad=True)
        check_gradients(lambda: (2.0 / y).sum(), [y])

    def test_neg(self, rng):
        x = _rand(rng, 3)
        check_gradients(lambda: (-x).sum(), [x])

    def test_pow(self, rng):
        x = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        check_gradients(lambda: (x ** 3).sum(), [x])

    def test_pow_tensor_exponent(self, rng):
        base = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        exponent = _rand(rng, 4)
        check_gradients(lambda: (base ** exponent).sum(), [base, exponent])

    def test_pow_numpy_scalar_exponent(self, rng):
        x = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        check_gradients(lambda: (x ** np.float64(2.5)).sum(), [x])
        check_gradients(lambda: (x ** np.int64(3)).sum(), [x])

    def test_rpow(self, rng):
        exponent = _rand(rng, 3)
        check_gradients(lambda: (2.0 ** exponent).sum(), [exponent])

    def test_pow_rejects_non_numeric_exponent(self, rng):
        with pytest.raises(TypeError, match="exponent"):
            _rand(rng, 2) ** "2"
        with pytest.raises(TypeError, match="exponent"):
            _rand(rng, 2) ** [1.0, 2.0]


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a, b = _rand(rng, 3, 4), _rand(rng, 4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = _rand(rng, 2, 3, 4), _rand(rng, 2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = _rand(rng, 2, 3, 4), _rand(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_vector(self, rng):
        a, b = _rand(rng, 4), _rand(rng, 4)
        check_gradients(lambda: a @ b, [a, b])

    def test_matmul_matrix_vector(self, rng):
        a, b = _rand(rng, 3, 4), _rand(rng, 4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_matrix(self, rng):
        a, b = _rand(rng, 4), _rand(rng, 4, 3)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestShapeOps:
    def test_reshape(self, rng):
        x = _rand(rng, 2, 6)
        check_gradients(lambda: x.reshape(3, 4).sum(), [x])

    def test_reshape_tuple_arg(self, rng):
        x = _rand(rng, 4)
        assert x.reshape((2, 2)).shape == (2, 2)

    def test_transpose_default(self, rng):
        x = _rand(rng, 2, 3)
        assert x.T.shape == (3, 2)
        check_gradients(lambda: (x.T * Tensor(np.ones((3, 2)))).sum(), [x])

    def test_transpose_axes(self, rng):
        x = _rand(rng, 2, 3, 4)
        assert x.transpose(0, 2, 1).shape == (2, 4, 3)
        check_gradients(lambda: x.transpose(2, 0, 1).sum(), [x])

    def test_swapaxes(self, rng):
        x = _rand(rng, 2, 3, 4)
        assert x.swapaxes(1, 2).shape == (2, 4, 3)
        check_gradients(lambda: x.swapaxes(0, 1).sum(), [x])

    def test_getitem_slice(self, rng):
        x = _rand(rng, 4, 3)
        check_gradients(lambda: x[1:3].sum(), [x])

    def test_getitem_fancy_repeated_indices_accumulate(self, rng):
        x = _rand(rng, 4)
        y = x[np.array([0, 0, 1])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0, 0.0, 0.0])

    def test_concat(self, rng):
        a, b = _rand(rng, 2, 3), _rand(rng, 4, 3)
        out = Tensor.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: Tensor.concat([a, b], axis=0).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _rand(rng, 3), _rand(rng, 3)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda: Tensor.stack([a, b], axis=1).sum(), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        x = _rand(rng, 3, 4)
        check_gradients(lambda: x.sum(), [x])

    def test_sum_axis_keepdims(self, rng):
        x = _rand(rng, 3, 4)
        assert x.sum(axis=1, keepdims=True).shape == (3, 1)
        check_gradients(lambda: x.sum(axis=0).sum(), [x])

    def test_mean(self, rng):
        x = _rand(rng, 3, 4)
        check_gradients(lambda: x.mean(), [x])
        check_gradients(lambda: x.mean(axis=1).sum(), [x])

    def test_mean_matches_numpy(self, rng):
        x = _rand(rng, 5)
        assert x.mean().item() == pytest.approx(x.numpy().mean())

    def test_max_forward(self):
        x = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        np.testing.assert_allclose(x.max(axis=1).numpy(), [5.0, 3.0])

    def test_max_gradient_ties_split(self):
        x = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu",
                                    "gelu", "abs", "sqrt", "log"])
    def test_unary_gradients(self, rng, op):
        data = np.abs(rng.normal(size=5)) + 0.5  # positive for log/sqrt
        x = Tensor(data, requires_grad=True)
        check_gradients(lambda: getattr(x, op)().sum(), [x])

    def test_relu_zeroes_negatives(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(x.relu().numpy(), [0.0, 2.0])

    def test_sigmoid_range(self, rng):
        x = Tensor(rng.normal(size=10) * 100)
        s = x.sigmoid().numpy()
        assert (s >= 0).all() and (s <= 1).all()

    def test_clip_gradient_masks_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = _rand(rng, 4, 6)
        s = x.softmax(axis=-1).numpy()
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4))

    def test_softmax_gradient(self, rng):
        x = _rand(rng, 3, 4)
        coef = rng.normal(size=(3, 4))
        check_gradients(lambda: (x.softmax(axis=-1) * Tensor(coef)).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = _rand(rng, 3, 5)
        np.testing.assert_allclose(x.log_softmax(axis=-1).numpy(),
                                   np.log(x.softmax(axis=-1).numpy()),
                                   atol=1e-10)

    def test_log_softmax_gradient(self, rng):
        x = _rand(rng, 2, 5)
        coef = rng.normal(size=(2, 5))
        check_gradients(
            lambda: (x.log_softmax(axis=-1) * Tensor(coef)).sum(), [x])

    def test_softmax_stable_for_large_logits(self):
        x = Tensor([1000.0, 1001.0])
        s = x.softmax().numpy()
        assert np.isfinite(s).all()
        assert s[1] > s[0]


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self, rng):
        x = _rand(rng, 3)
        y = x * 2 + x * 3  # x used twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 5.0 * np.ones(3))

    def test_diamond_graph(self, rng):
        x = _rand(rng, 2)

        def fn():
            a = x * 2
            b = x + 1
            return (a * b).sum()

        check_gradients(fn, [x])

    def test_zero_grad_clears(self, rng):
        x = _rand(rng, 2)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self, rng):
        x = _rand(rng, 2)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()  # iterative topo sort: must not blow the stack
        np.testing.assert_allclose(x.grad, np.ones(2))
