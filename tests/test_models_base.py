"""Tests for the model interface and the Section II-D assembly routine."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph
from repro.models import (BAModel, ERModel, GraphGenerativeModel,
                          assemble_from_scores)


def _score_matrix(n, entries):
    """entries: list of (u, v, score)."""
    rows, cols, vals = [], [], []
    for u, v, s in entries:
        rows += [u, v]
        cols += [v, u]
        vals += [s, s]
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n))


class TestInterface:
    def test_generate_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            ERModel().generate(rng)

    def test_is_fitted_flag(self, triangle_graph, rng):
        model = ERModel()
        assert not model.is_fitted
        model.fit(triangle_graph, rng)
        assert model.is_fitted

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            GraphGenerativeModel()


class TestAssembleFromScores:
    def test_selects_top_edges(self):
        scores = _score_matrix(4, [(0, 1, 10.0), (1, 2, 5.0), (2, 3, 1.0)])
        g = assemble_from_scores(scores, num_edges=2, min_degree=0)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 3)

    def test_exact_edge_count(self):
        entries = [(u, v, float(10 - u - v)) for u in range(5)
                   for v in range(u + 1, 5)]
        scores = _score_matrix(5, entries)
        g = assemble_from_scores(scores, num_edges=4, min_degree=0)
        assert g.num_edges == 4

    def test_min_degree_guarantee(self):
        """Node 3 has only a weak edge; min_degree=1 must still include it."""
        scores = _score_matrix(4, [(0, 1, 10.0), (0, 2, 9.0), (1, 2, 8.0),
                                   (2, 3, 0.1)])
        g = assemble_from_scores(scores, num_edges=3, min_degree=1)
        assert g.degree(3) >= 1

    def test_without_min_degree_weak_node_dropped(self):
        scores = _score_matrix(4, [(0, 1, 10.0), (0, 2, 9.0), (1, 2, 8.0),
                                   (2, 3, 0.1)])
        g = assemble_from_scores(scores, num_edges=3, min_degree=0)
        assert g.degree(3) == 0

    def test_protected_volume_criterion(self):
        """Protected node 3's edges must be boosted to match its volume."""
        entries = [(0, 1, 10.0), (0, 2, 9.0), (1, 2, 8.0),
                   (3, 0, 1.0), (3, 1, 0.9), (3, 2, 0.8)]
        scores = _score_matrix(4, entries)
        protected = np.array([False, False, False, True])
        g = assemble_from_scores(scores, num_edges=5, min_degree=0,
                                 protected=protected, protected_volume=3)
        assert g.degree(3) == 3

    def test_empty_scores(self):
        g = assemble_from_scores(sp.coo_matrix((3, 3)), num_edges=2)
        assert g.num_edges == 0

    def test_never_exceeds_available_edges(self):
        scores = _score_matrix(3, [(0, 1, 1.0)])
        g = assemble_from_scores(scores, num_edges=10, min_degree=0)
        assert g.num_edges == 1


class TestERModel:
    def test_generated_size_matches(self, rng):
        from repro.graph import erdos_renyi

        original = erdos_renyi(80, 0.05, rng)
        model = ERModel().fit(original, rng)
        out = model.generate(rng)
        assert out.num_nodes == original.num_nodes
        expected = original.num_edges
        assert abs(out.num_edges - expected) < 5 * np.sqrt(expected + 1)

    def test_name(self):
        assert ERModel.name == "ER"


class TestBAModel:
    def test_generated_heavy_tail(self, rng):
        from repro.graph import barabasi_albert

        original = barabasi_albert(120, 3, rng)
        out = BAModel().fit(original, rng).generate(rng)
        assert out.num_nodes == 120
        assert out.degrees.max() > 3 * out.degrees.mean()

    def test_attach_at_least_one(self, rng):
        sparse = Graph.from_edges(10, [(0, 1)])
        model = BAModel().fit(sparse, rng)
        assert model._attach == 1

    def test_tiny_graph_rejected(self, rng):
        with pytest.raises(ValueError):
            BAModel().fit(Graph.from_edges(1, []), rng)
