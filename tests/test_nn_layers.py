"""Tests for modules: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (Dropout, Embedding, LayerNorm, Linear, MLP, Module,
                      Parameter, Sequential, Tensor)
from repro.nn.gradcheck import check_gradients


class TestModuleRegistry:
    def test_named_parameters_nested(self, rng):
        mlp = MLP([4, 8, 2], rng)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == 4  # two Linear layers x (weight, bias)
        assert len(set(names)) == len(names)

    def test_parameters_deduplicated(self, rng):
        lin = Linear(2, 2, rng)

        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = lin
                self.b = lin

        assert len(list(Shared().parameters())) == 2

    def test_num_parameters(self, rng):
        lin = Linear(3, 4, rng)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_zero_grad_recursive(self, rng):
        mlp = MLP([2, 3, 1], rng)
        out = mlp(Tensor(rng.normal(size=(4, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_train_eval_propagates(self, rng):
        mlp = MLP([2, 3, 1], rng, dropout=0.5)
        mlp.eval()
        assert all(not m.training for m in mlp.net)
        mlp.train()
        assert all(m.training for m in mlp.net)


class TestStateDict:
    def test_roundtrip(self, rng):
        src = MLP([3, 5, 2], rng)
        dst = MLP([3, 5, 2], np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy())

    def test_missing_key_raises(self, rng):
        mlp = MLP([2, 2], rng)
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        mlp = MLP([2, 2], rng)
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((7, 7))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_state_dict_copies(self, rng):
        lin = Linear(2, 2, rng)
        state = lin.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(lin.weight.data, 0.0)


class TestLinear:
    def test_forward_shape(self, rng):
        lin = Linear(4, 3, rng)
        assert lin(Tensor(rng.normal(size=(5, 4)))).shape == (5, 3)

    def test_forward_matches_manual(self, rng):
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ lin.weight.numpy() + lin.bias.numpy()
        np.testing.assert_allclose(lin(Tensor(x)).numpy(), expected)

    def test_no_bias(self, rng):
        lin = Linear(3, 2, rng, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_gradients(self, rng):
        lin = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        check_gradients(lambda: lin(x).sum(), list(lin.parameters()))

    def test_glorot_scale(self, rng):
        lin = Linear(100, 100, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(lin.weight.numpy()).max() <= bound


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self, rng):
        emb = Embedding(5, 3, rng)
        np.testing.assert_allclose(emb(np.array([2])).numpy()[0],
                                   emb.weight.numpy()[2])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 3, rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_for_repeated_ids(self, rng):
        emb = Embedding(4, 2, rng)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_output_normalized(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(size=(4, 8)) * 7 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        coef = rng.normal(size=(3, 4))
        check_gradients(lambda: (ln(x) * Tensor(coef)).sum(),
                        [x, ln.gamma, ln.beta])

    def test_gamma_beta_affect_output(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)))
        before = ln(x).numpy().copy()
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        np.testing.assert_allclose(ln(x).numpy(), before * 2.0 + 1.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10,)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_zero_p_is_identity(self, rng):
        drop = Dropout(0.0, rng)
        x = Tensor(rng.normal(size=(10,)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_training_scales_survivors(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones(10000))
        out = drop(x).numpy()
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < kept.size / 10000 < 0.6

    def test_invalid_p_raises(self, rng):
        drop = Dropout(1.0, rng)
        with pytest.raises(ValueError):
            drop(Tensor(np.ones(3)))


class TestSequentialAndMLP:
    def test_sequential_order(self, rng):
        a, b = Linear(2, 3, rng), Linear(3, 1, rng)
        seq = Sequential(a, b)
        x = Tensor(rng.normal(size=(4, 2)))
        np.testing.assert_allclose(seq(x).numpy(), b(a(x)).numpy())
        assert len(seq) == 2

    def test_mlp_three_layer_shape(self, rng):
        mlp = MLP([4, 8, 8, 3], rng)
        assert mlp(Tensor(rng.normal(size=(2, 4)))).shape == (2, 3)

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_activation_variants(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        for act in ("relu", "tanh", "gelu"):
            out = MLP([4, 4, 2], rng, activation=act)(x)
            assert out.shape == (3, 2)

    def test_mlp_trains_to_fit_xor(self, rng):
        from repro.nn import Adam
        from repro.nn import functional as F

        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([0, 1, 1, 0])
        mlp = MLP([2, 16, 2], rng, activation="tanh")
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = F.cross_entropy(mlp(Tensor(x)), y)
            loss.backward()
            opt.step()
        pred = mlp(Tensor(x)).numpy().argmax(axis=1)
        np.testing.assert_array_equal(pred, y)


class TestParameter:
    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad
