"""Tests for edge proposals (the Figure 6 mechanism) and repro.utils."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph, planted_protected_graph, sample_walks, \
    walks_to_edge_counts
from repro.models import TagGen, propose_edges_from_walk_counts
from repro.eval import insert_edges
from repro.utils import Timer, format_table, seeded_rng, spawn_rngs


@pytest.fixture
def square_graph():
    """4-cycle: 0-1-2-3-0 (no diagonals)."""
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


def _counts(n, entries):
    rows, cols, vals = [], [], []
    for u, v, c in entries:
        rows += [u, v]
        cols += [v, u]
        vals += [c, c]
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


class TestProposeFromCounts:
    def test_excludes_existing_edges(self, square_graph):
        counts = _counts(4, [(0, 1, 50.0), (0, 2, 3.0)])
        prop = propose_edges_from_walk_counts(square_graph, counts, 5)
        assert prop.tolist() == [[0, 2]]

    def test_ranked_by_count(self, square_graph):
        counts = _counts(4, [(0, 2, 3.0), (1, 3, 7.0)])
        prop = propose_edges_from_walk_counts(square_graph, counts, 2)
        assert prop[0].tolist() == [1, 3]
        assert prop[1].tolist() == [0, 2]

    def test_budget_respected(self, square_graph):
        counts = _counts(4, [(0, 2, 3.0), (1, 3, 7.0)])
        prop = propose_edges_from_walk_counts(square_graph, counts, 1)
        assert len(prop) == 1

    def test_weight_fn_reorders(self, square_graph):
        counts = _counts(4, [(0, 2, 3.0), (1, 3, 7.0)])

        def weight(rows, cols):
            # Strongly prefer the (0, 2) candidate.
            return np.where((rows == 0) & (cols == 2), 100.0, 1.0)

        prop = propose_edges_from_walk_counts(square_graph, counts, 2,
                                              weight_fn=weight)
        assert prop[0].tolist() == [0, 2]

    def test_no_candidates(self, square_graph):
        prop = propose_edges_from_walk_counts(
            square_graph, sp.csr_matrix((4, 4)), 3)
        assert prop.shape == (0, 2)


class TestModelProposeEdges:
    def test_taggen_proposals_are_novel(self, rng):
        graph, _, _ = planted_protected_graph(40, 10, rng, p_in=0.3,
                                              p_out=0.03,
                                              protected_as_class=True)
        model = TagGen(epochs=2, walks_per_epoch=32, dim=16, num_layers=1,
                       walk_length=6, generation_walk_factor=6)
        model.fit(graph, rng)
        proposals = model.propose_edges(10, rng)
        assert proposals.shape[1] == 2
        for u, v in proposals:
            assert not graph.has_edge(int(u), int(v))

    def test_er_default_proposals_are_novel(self, rng):
        from repro.models import ERModel
        from repro.graph import erdos_renyi

        graph = erdos_renyi(30, 0.1, rng)
        model = ERModel().fit(graph, rng)
        proposals = model.propose_edges(5, rng)
        for u, v in proposals:
            assert not graph.has_edge(int(u), int(v))

    def test_fairgen_proposals_prefer_intra_class(self):
        """The discriminator weighting should beat count-only ranking on
        intra-class purity for a community-structured graph."""
        from repro.core import FairGen, FairGenConfig

        rng = np.random.default_rng(5)
        graph, labels, protected = planted_protected_graph(
            80, 16, rng, p_in=0.3, p_out=0.01, num_classes=2)
        few = np.concatenate([np.flatnonzero(labels == c)[:3]
                              for c in range(2)])
        model = FairGen(FairGenConfig(
            self_paced_cycles=2, walks_per_cycle=32,
            generator_steps_per_cycle=30, generator_batch=16,
            model_dim=16, num_layers=1, walk_length=6, feature_dim=32,
            batch_iterations=6, discriminator_lr=0.05,
            generation_walk_factor=8))
        model.fit(graph, rng, labeled_nodes=few, labeled_classes=labels[few],
                  protected_mask=protected, num_classes=2)
        proposals = model.propose_edges(15, np.random.default_rng(6))
        if len(proposals) == 0:
            pytest.skip("generator proposed no novel edges at this budget")
        intra = (labels[proposals[:, 0]] == labels[proposals[:, 1]]).mean()
        assert intra >= 0.4  # far above the ~0.5/0.5 random split baseline


class TestInsertEdges:
    def test_adds_edges(self, square_graph):
        out = insert_edges(square_graph, np.array([[0, 2]]))
        assert out.has_edge(0, 2)
        assert out.num_edges == square_graph.num_edges + 1

    def test_empty_is_identity(self, square_graph):
        out = insert_edges(square_graph, np.empty((0, 2)))
        assert out == square_graph

    def test_duplicate_insert_is_idempotent(self, square_graph):
        out = insert_edges(square_graph, np.array([[0, 1]]))
        assert out.num_edges == square_graph.num_edges


class TestUtils:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(9).random(4)
        b = seeded_rng(9).random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(1, 3)
        values = [s.random(8).tolist() for s in streams]
        assert values[0] != values[1] != values[2]

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)

    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10000))
        assert t.seconds >= 0.0

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
