"""Tests for the extension modules: extra optimizers and schedulers,
spectral utilities, classic generators, MMD metrics, link prediction,
and the GraphRNN baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (Graph, cheeger_bounds, configuration_model,
                         erdos_renyi, kronecker_graph, laplacian,
                         normalized_laplacian, personalized_pagerank,
                         planted_protected_graph, spectral_gap, sweep_cut,
                         watts_strogatz)
from repro.nn import (Adagrad, Adam, CosineAnnealingLR, Parameter, RMSprop,
                      SGD, StepLR)


class TestExtraOptimizers:
    def _minimise(self, optimizer_factory, steps=300):
        w = Parameter(np.array([4.0, -2.0]))
        opt = optimizer_factory([w])
        for _ in range(steps):
            opt.zero_grad()
            ((w - 1.0) ** 2).sum().backward()
            opt.step()
        return w.numpy()

    def test_rmsprop_converges(self):
        out = self._minimise(lambda p: RMSprop(p, lr=0.05))
        np.testing.assert_allclose(out, [1.0, 1.0], atol=0.05)

    def test_adagrad_converges(self):
        out = self._minimise(lambda p: Adagrad(p, lr=0.5))
        np.testing.assert_allclose(out, [1.0, 1.0], atol=0.05)

    def test_rmsprop_validation(self):
        with pytest.raises(ValueError):
            RMSprop([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            RMSprop([Parameter(np.zeros(1))], alpha=1.5)

    def test_adagrad_validation(self):
        with pytest.raises(ValueError):
            Adagrad([Parameter(np.zeros(1))], lr=-1.0)


class TestSchedulers:
    def test_step_lr_decays(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(4)]
        assert rates == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_reaches_min(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, total=10, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, total=8)
        rates = [sched.step() for _ in range(8)]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, total=0)


class TestSpectral:
    def test_laplacian_row_sums_zero(self, two_cliques_graph):
        lap = laplacian(two_cliques_graph)
        np.testing.assert_allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_normalized_laplacian_eigenvalues_bounded(self, two_cliques_graph):
        eigs = np.linalg.eigvalsh(
            normalized_laplacian(two_cliques_graph).toarray())
        assert eigs.min() >= -1e-9
        assert eigs.max() <= 2.0 + 1e-9

    def test_spectral_gap_small_for_bottleneck(self, two_cliques_graph, rng):
        """The bridged-cliques graph has a bottleneck, the complete graph
        does not — its gap must be far larger."""
        complete = Graph.from_edges(8, [(a, b) for a in range(8)
                                        for b in range(a + 1, 8)])
        assert spectral_gap(two_cliques_graph) < spectral_gap(complete) / 3

    def test_cheeger_sandwiches_conductance(self, two_cliques_graph):
        """phi(G) of the best cut lies within the Cheeger bounds."""
        lower, upper = cheeger_bounds(two_cliques_graph)
        best_cut_phi = two_cliques_graph.conductance([0, 1, 2, 3])
        assert lower - 1e-9 <= best_cut_phi <= upper + 1e-9

    def test_pagerank_is_distribution(self, two_cliques_graph):
        ppr = personalized_pagerank(two_cliques_graph, [0])
        assert ppr.sum() == pytest.approx(1.0, abs=1e-6)
        assert (ppr >= 0).all()

    def test_pagerank_localises_near_seed(self, two_cliques_graph):
        ppr = personalized_pagerank(two_cliques_graph, [0], alpha=0.3)
        assert ppr[:4].sum() > ppr[4:].sum()

    def test_pagerank_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            personalized_pagerank(triangle_graph, [0], alpha=1.5)
        with pytest.raises(ValueError):
            personalized_pagerank(triangle_graph, [])

    def test_sweep_cut_recovers_clique(self, two_cliques_graph):
        ppr = personalized_pagerank(two_cliques_graph, [0, 1], alpha=0.3)
        nodes, phi = sweep_cut(two_cliques_graph, ppr)
        assert set(nodes.tolist()) == {0, 1, 2, 3}
        assert phi == pytest.approx(1 / 13)

    def test_sweep_cut_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            sweep_cut(triangle_graph, np.zeros(5))


class TestClassicGenerators:
    def test_watts_strogatz_zero_rewire_is_lattice(self, rng):
        g = watts_strogatz(12, 4, 0.0, rng)
        assert g.num_edges == 12 * 2
        np.testing.assert_array_equal(g.degrees, 4)

    def test_watts_strogatz_keeps_edge_count(self, rng):
        g = watts_strogatz(20, 4, 0.5, rng)
        assert g.num_edges == 40

    def test_watts_strogatz_small_world(self, rng):
        """Moderate rewiring shortens paths vs the pure lattice."""
        from repro.graph.metrics import average_shortest_path_length

        lattice = watts_strogatz(40, 4, 0.0, rng)
        rewired = watts_strogatz(40, 4, 0.3, rng)
        assert average_shortest_path_length(rewired) < \
            average_shortest_path_length(lattice)

    def test_watts_strogatz_validation(self, rng):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1, rng)  # odd neighbors
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1, rng)

    def test_configuration_model_degrees_close(self, rng):
        target = np.array([3, 3, 2, 2, 1, 1])
        g = configuration_model(target, rng)
        assert g.num_nodes == 6
        assert (g.degrees <= target).all()

    def test_configuration_model_odd_sum_rejected(self, rng):
        with pytest.raises(ValueError):
            configuration_model([3, 2], rng)

    def test_configuration_model_matches_heavy_tail(self, rng):
        from repro.graph import barabasi_albert

        ba = barabasi_albert(100, 2, rng)
        g = configuration_model(ba.degrees.astype(int), rng)
        # The rewired graph keeps the heavy tail of the BA degrees.
        assert g.degrees.max() > 3 * max(g.degrees.mean(), 1)

    def test_kronecker_size(self, rng):
        initiator = np.array([[0.9, 0.5], [0.5, 0.1]])
        g = kronecker_graph(initiator, 3, rng)
        assert g.num_nodes == 8

    def test_kronecker_validation(self, rng):
        with pytest.raises(ValueError):
            kronecker_graph(np.array([[1.5]]), 2, rng)
        with pytest.raises(ValueError):
            kronecker_graph(np.array([[0.5, 0.1], [0.2, 0.5]]), 2, rng)

    def test_kronecker_core_periphery(self, rng):
        """A [[high, mid], [mid, low]] initiator concentrates degree on
        low-index (core) nodes."""
        initiator = np.array([[0.95, 0.4], [0.4, 0.05]])
        g = kronecker_graph(initiator, 4, rng)
        n = g.num_nodes
        assert g.degrees[: n // 4].mean() > g.degrees[-n // 4:].mean()


class TestMMD:
    def test_identical_samples_zero(self, rng):
        from repro.eval import gaussian_mmd

        x = rng.normal(size=100)
        assert gaussian_mmd(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_samples_positive(self, rng):
        from repro.eval import gaussian_mmd

        x = rng.normal(size=100)
        y = rng.normal(size=100) + 5.0
        assert gaussian_mmd(x, y) > 0.1

    def test_empty_rejected(self):
        from repro.eval import gaussian_mmd

        with pytest.raises(ValueError):
            gaussian_mmd(np.array([]), np.array([1.0]))

    def test_degree_mmd_same_graph_zero(self, two_cliques_graph):
        from repro.eval import degree_distribution_mmd

        assert degree_distribution_mmd(
            two_cliques_graph, two_cliques_graph) == pytest.approx(0.0)

    def test_degree_mmd_detects_star_vs_regular(self, rng):
        from repro.eval import degree_distribution_mmd

        star = Graph.from_edges(10, [(0, i) for i in range(1, 10)])
        cycle = Graph.from_edges(10, [(i, (i + 1) % 10) for i in range(10)])
        assert degree_distribution_mmd(star, cycle) > 0.05

    def test_clustering_mmd(self, triangle_graph, path_graph):
        from repro.eval import clustering_distribution_mmd

        tri5 = Graph.from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        assert clustering_distribution_mmd(tri5, tri5) == pytest.approx(0.0)

    def test_degree_histogram_normalised(self, two_cliques_graph):
        from repro.eval import degree_histogram

        hist = degree_histogram(two_cliques_graph)
        assert hist.sum() == pytest.approx(1.0)


class TestLinkPrediction:
    def test_roc_auc_perfect(self):
        from repro.eval import roc_auc

        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert roc_auc(scores, labels) == 1.0

    def test_roc_auc_random_half(self, rng):
        from repro.eval import roc_auc

        scores = rng.random(2000)
        labels = rng.random(2000) < 0.5
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_roc_auc_ties_averaged(self):
        from repro.eval import roc_auc

        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([True, False, True, False])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_roc_auc_needs_both_classes(self):
        from repro.eval import roc_auc

        with pytest.raises(ValueError):
            roc_auc(np.array([1.0]), np.array([True]))

    def test_average_precision_perfect(self):
        from repro.eval import average_precision

        scores = np.array([0.9, 0.8, 0.2])
        labels = np.array([True, True, False])
        assert average_precision(scores, labels) == 1.0

    def test_sample_non_edges_valid(self, two_cliques_graph, rng):
        from repro.eval import sample_non_edges

        pairs = sample_non_edges(two_cliques_graph, 5, rng)
        assert pairs.shape == (5, 2)
        for u, v in pairs:
            assert not two_cliques_graph.has_edge(int(u), int(v))

    def test_sample_non_edges_too_many(self, rng):
        from repro.eval import sample_non_edges

        complete = Graph.from_edges(4, [(a, b) for a in range(4)
                                        for b in range(a + 1, 4)])
        with pytest.raises(ValueError):
            sample_non_edges(complete, 1, rng)

    def test_link_prediction_pipeline(self, rng):
        """Embeddings of the true graph should predict its edges."""
        from repro.embedding import Node2VecConfig, node2vec_embedding
        from repro.eval import link_prediction_scores

        graph, _, protected = planted_protected_graph(
            60, 12, rng, p_in=0.3, p_out=0.02, protected_as_class=True)
        emb = node2vec_embedding(graph,
                                 Node2VecConfig(dim=32, walks_per_node=10,
                                                epochs=5), rng)
        result = link_prediction_scores(graph, emb, rng,
                                        protected_mask=protected)
        assert result.auc > 0.6
        assert 0.0 <= result.ap <= 1.0


class TestGraphRNN:
    @pytest.fixture(scope="class")
    def small_graph(self):
        rng = np.random.default_rng(3)
        graph, _, _ = planted_protected_graph(
            30, 8, rng, p_in=0.3, p_out=0.05, protected_as_class=True)
        return graph

    def test_bandwidth_estimate_positive(self, small_graph, rng):
        from repro.models import estimate_bandwidth

        assert estimate_bandwidth(small_graph, rng) >= 1

    def test_bfs_sequences_encode_all_edges_with_full_bandwidth(
            self, small_graph, rng):
        from repro.models import bfs_adjacency_sequences

        bw = small_graph.num_nodes - 1
        seq = bfs_adjacency_sequences(small_graph, bw, rng)[0]
        assert int(seq.sum()) == small_graph.num_edges

    def test_training_reduces_loss(self, small_graph, rng):
        from repro.models import GraphRNN

        model = GraphRNN(epochs=6, sequences_per_epoch=2, hidden_dim=16)
        model.fit(small_graph, rng)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_generation_plausible_size(self, small_graph, rng):
        from repro.models import GraphRNN

        model = GraphRNN(epochs=6, sequences_per_epoch=2, hidden_dim=16)
        out = model.fit(small_graph, rng).generate(rng)
        assert out.num_nodes == small_graph.num_nodes
        assert 0.3 * small_graph.num_edges <= out.num_edges \
            <= 3.0 * small_graph.num_edges

    def test_generate_before_fit(self, rng):
        from repro.models import GraphRNN

        with pytest.raises(RuntimeError):
            GraphRNN().generate(rng)
