"""Tests for the sweep helpers: grid/expand spec batches and the
end-to-end ``run_sweep`` orchestration."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, JobQueue, Runner
from repro.experiments.sweep import SweepReport, expand, grid, run_sweep

SMALLEST = "EMAIL"


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestExpand:
    def test_cartesian_product_over_spec_axes(self):
        specs = expand({"model": ["er", "ba"], "dataset": ["EMAIL", "FB"],
                        "profile": ["smoke", "bench"], "seed": range(3)})
        assert len(specs) == 2 * 2 * 2 * 3
        assert len({s.cache_key() for s in specs}) == len(specs)

    def test_scalars_are_single_value_axes(self):
        specs = expand({"model": "er", "dataset": SMALLEST})
        assert specs == [ExperimentSpec(model="er", dataset=SMALLEST)]

    def test_defaults_profile_paper_seed_zero(self):
        [spec] = expand({"model": "er", "dataset": SMALLEST})
        assert spec.profile == "paper" and spec.seed == 0

    def test_unknown_axes_become_override_axes(self):
        specs = expand({"model": "gae", "dataset": SMALLEST,
                        "profile": "smoke", "epochs": [2, 4]})
        assert len(specs) == 2
        assert sorted(s.override_dict["epochs"] for s in specs) == [2, 4]

    def test_deduplicates_aliases(self):
        specs = expand({"model": ["er", "ER"], "dataset": SMALLEST})
        assert len(specs) == 1

    def test_requires_model_and_dataset(self):
        with pytest.raises(ValueError, match="model"):
            expand({"dataset": SMALLEST})
        with pytest.raises(ValueError, match="dataset"):
            expand({"model": "er"})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            expand({"model": [], "dataset": SMALLEST})

    def test_unknown_model_rejected_eagerly(self):
        with pytest.raises(KeyError):
            expand({"model": "warp-drive", "dataset": SMALLEST})

    def test_unknown_profile_rejected_eagerly(self):
        with pytest.raises(KeyError):
            expand({"model": "er", "dataset": SMALLEST,
                    "profile": "warp-speed"})


class TestGrid:
    def test_models_by_datasets_by_seeds(self):
        specs = grid(["er", "ba"], ["EMAIL", "FB"], profiles="smoke",
                     seeds=[0, 1])
        assert len(specs) == 8
        assert all(s.profile == "smoke" for s in specs)

    def test_shared_override_axes(self):
        specs = grid("gae", SMALLEST, profiles="smoke",
                     overrides={"epochs": [2, 4]})
        assert len(specs) == 2

    def test_per_model_overrides_apply_to_that_model_only(self):
        specs = grid(["fairgen", "er"], SMALLEST, profiles="smoke",
                     per_model={"FairGen": {"self_paced_cycles": 1}})
        by_model = {s.model: s for s in specs}
        assert by_model["fairgen"].override_dict == {"self_paced_cycles": 1}
        assert by_model["er"].override_dict == {}

    def test_per_model_with_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            grid("er", SMALLEST, per_model={"warp-drive": {}})

    def test_display_names_collapse_with_canonical(self):
        specs = grid(["FairGen-R", "fairgen-r"], SMALLEST,
                     profiles="smoke")
        assert len(specs) == 1


# ----------------------------------------------------------------------
# run_sweep orchestration
# ----------------------------------------------------------------------
class TestRunSweep:
    def test_two_worker_sweep_matches_sequential(self, tmp_path):
        """The acceptance shape: >= 4 specs, 2 workers, zero duplicate
        fits, results identical to a sequential ``run_many``."""
        specs = grid(["er", "ba", "gae", "taggen"], SMALLEST,
                     profiles="smoke")
        assert len(specs) >= 4
        progress_log = []
        report = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                           workers=2, with_metrics=True,
                           lease_timeout=30.0, timeout=300,
                           progress=progress_log.append)
        assert report.completed == len(specs)
        assert not report.failures
        assert len(report.fits) == len(specs)
        assert report.duplicate_fits == 0
        assert progress_log and progress_log[-1]["done"] == len(specs)

        sequential = Runner(cache_dir=tmp_path / "seq").run_many(
            specs, with_metrics=True)
        for got, want in zip(report.results, sequential):
            assert (got.generated.adjacency
                    != want.generated.adjacency).nnz == 0
            assert json.dumps(got.metrics, sort_keys=True) == \
                json.dumps(want.metrics, sort_keys=True)

    def test_resubmitted_sweep_is_a_warm_replay(self, tmp_path):
        specs = grid(["er", "ba"], SMALLEST, profiles="smoke")
        first = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                          workers=1, timeout=300)
        assert len(first.fits) == len(specs)
        again = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                          workers=1, timeout=300)
        assert again.completed == len(specs)
        assert len(again.fits) == len(specs)  # no new fits recorded
        assert all(r.from_cache for r in again.results)

    def test_failures_reported_not_raised(self, tmp_path):
        bad = ExperimentSpec(model="er", dataset="NO-SUCH-DATASET")
        good = ExperimentSpec(model="er", dataset=SMALLEST,
                              profile="smoke")
        report = run_sweep([good, bad], tmp_path / "q", tmp_path / "cache",
                           workers=1, max_retries=0, timeout=300)
        assert report.completed == 1
        assert report.results[0] is not None and report.results[1] is None
        assert list(report.failures) == [bad.cache_key()]
        with pytest.raises(Exception, match="NO-SUCH-DATASET"):
            report.raise_on_failure()

    def test_workers_zero_with_external_worker(self, tmp_path):
        """workers=0 submits and waits; an 'external' drain (here: a
        pre-drained queue) satisfies it."""
        from repro.experiments import Worker

        specs = grid("er", SMALLEST, profiles="smoke")
        queue = JobQueue(tmp_path / "q")
        queue.submit(specs)
        Worker(queue, tmp_path / "cache", worker_id="external").run()
        report = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                           workers=0, timeout=60)
        assert report.completed == len(specs)

    def test_report_alignment_with_duplicate_specs(self, tmp_path):
        spec = ExperimentSpec(model="er", dataset=SMALLEST,
                              profile="smoke")
        report = run_sweep([spec, spec], tmp_path / "q",
                           tmp_path / "cache", workers=1, timeout=300)
        assert len(report.results) == 2
        assert all(r is not None for r in report.results)
        assert report.job_ids == [spec.cache_key(), spec.cache_key()]


class TestSweepReport:
    def test_duplicate_fit_counter(self):
        report = SweepReport(specs=[], job_ids=[], results=[],
                             fits=[("a", "w1"), ("a", "w2"), ("b", "w1")])
        assert report.duplicate_fits == 1


class TestScoreboard:
    @staticmethod
    def _result(spec, overall, protected=None, surrogate=False):
        from repro.experiments import RunResult
        from repro.graph import Graph

        metrics = {"overall": {}, "overall_mean": overall}
        if protected is not None:
            metrics["protected_mean"] = protected
            metrics["protected_surrogate"] = surrogate
        return RunResult(spec=spec,
                         generated=Graph.from_edges(2, [(0, 1)]),
                         fit_seconds=0.0, generate_seconds=0.0,
                         metrics=metrics)

    def _report(self):
        specs = [ExperimentSpec(model="er", dataset=SMALLEST,
                                profile="smoke", seed=s) for s in (0, 1, 2)]
        specs.append(ExperimentSpec(model="ba", dataset=SMALLEST,
                                    profile="smoke"))
        specs.append(ExperimentSpec(model="ba", dataset="FB",
                                    profile="smoke"))
        results = [self._result(specs[0], 0.1),
                   self._result(specs[1], 0.2),
                   self._result(specs[2], 0.3),
                   self._result(specs[3], 0.5, protected=0.4,
                                surrogate=True),
                   None]  # the FB job failed
        return SweepReport(specs=specs,
                           job_ids=[s.cache_key() for s in specs],
                           results=results)

    def test_seed_averaged_mean_and_std_per_cell(self):
        board = self._report().scoreboard()
        by_key = {(r["model"], r["dataset"]): r for r in board}
        er = by_key[("ER", SMALLEST)]
        assert er["seeds"] == 3
        assert er["overall_mean"] == pytest.approx(0.2)
        assert er["overall_std"] == pytest.approx(
            float(np.std([0.1, 0.2, 0.3])))
        assert "protected_mean" not in er

    def test_protected_and_surrogate_flag_propagate(self):
        board = self._report().scoreboard()
        ba = next(r for r in board if r["model"] == "BA")
        assert ba["protected_mean"] == pytest.approx(0.4)
        assert ba["protected_std"] == pytest.approx(0.0)
        assert ba["protected_surrogate"] is True

    def test_failed_jobs_and_metricless_results_are_skipped(self):
        report = self._report()
        # A metrics-free result (sweep ran without with_metrics).
        report.results[0].metrics = None
        board = report.scoreboard()
        er = next(r for r in board if r["model"] == "ER")
        assert er["seeds"] == 2  # seed 0 dropped, failed FB job dropped
        assert all(r["dataset"] != "FB" for r in board)

    def test_rows_sorted_by_model_dataset_profile(self):
        board = self._report().scoreboard()
        keys = [(r["model"], r["dataset"], r["profile"]) for r in board]
        # canonical (lowercase) model names drive the sort order
        assert keys == sorted(keys, key=lambda k: (k[0].lower(), *k[1:]))

    def test_empty_report_gives_empty_board(self):
        assert SweepReport(specs=[], job_ids=[],
                           results=[]).scoreboard() == []

    def test_override_axes_form_separate_cells(self):
        """Specs differing only in overrides must not be averaged
        together as if they were seeds of one configuration."""
        specs = [ExperimentSpec(model="gae", dataset=SMALLEST,
                                profile="smoke", seed=s,
                                overrides={"epochs": e})
                 for e in (2, 4) for s in (0, 1)]
        results = [self._result(s, 0.1 * (i + 1))
                   for i, s in enumerate(specs)]
        board = SweepReport(specs=specs,
                            job_ids=[s.cache_key() for s in specs],
                            results=results).scoreboard()
        assert len(board) == 2  # one cell per epochs value
        assert all(row["seeds"] == 2 for row in board)
        assert sorted(row["overrides"]["epochs"] for row in board) == [2, 4]

    def test_live_sweep_scoreboard_matches_runner_metrics(self, tmp_path):
        specs = grid("er", SMALLEST, profiles="smoke", seeds=[0, 1])
        report = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                           workers=1, with_metrics=True, timeout=300)
        [row] = report.scoreboard()
        values = [r.metrics["overall_mean"] for r in report.results]
        assert row["seeds"] == 2
        assert row["overall_mean"] == pytest.approx(np.mean(values))
        assert row["overall_std"] == pytest.approx(np.std(values))
