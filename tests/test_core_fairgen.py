"""End-to-end tests for the FairGen model (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairGen, FairGenConfig, make_fairgen_variant
from repro.graph import Graph, planted_protected_graph


SMALL_CONFIG = FairGenConfig(
    self_paced_cycles=3, walks_per_cycle=24, generator_steps_per_cycle=2,
    generator_batch=12, model_dim=16, num_layers=1, walk_length=6,
    feature_dim=32, batch_iterations=8, batch_size=64,
    discriminator_lr=0.05,
    generation_walk_factor=10)


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(42)
    graph, labels, protected = planted_protected_graph(
        50, 12, rng, p_in=0.3, p_out=0.03, num_classes=2,
        protected_as_class=True)
    nodes, classes = [], []
    for cls in range(3):
        members = np.flatnonzero(labels == cls)
        nodes.extend(members[:2].tolist())
        classes.extend([cls, cls])
    model = FairGen(SMALL_CONFIG)
    model.fit(graph, rng, labeled_nodes=np.array(nodes),
              labeled_classes=np.array(classes), protected_mask=protected)
    return model, graph, labels, protected


class TestFit:
    def test_requires_labels(self, rng, labeled_community_graph):
        graph, _, _ = labeled_community_graph
        with pytest.raises(ValueError):
            FairGen(SMALL_CONFIG).fit(graph, rng)

    def test_history_length_matches_cycles(self, fitted_model):
        model, *_ = fitted_model
        assert len(model.history) == SMALL_CONFIG.self_paced_cycles

    def test_lambda_grows_each_cycle(self, fitted_model):
        model, *_ = fitted_model
        lambdas = [h["lambda"] for h in model.history]
        assert all(b > a for a, b in zip(lambdas, lambdas[1:]))

    def test_history_records_all_losses(self, fitted_model):
        model, *_ = fitted_model
        for key in ("generator_loss", "disc_J_P", "disc_J_L", "disc_J_F",
                    "num_pseudo_labels"):
            assert key in model.history[0]

    def test_components_initialised(self, fitted_model):
        model, *_ = fitted_model
        assert model.generator is not None
        assert model.discriminator is not None
        assert model.sampler is not None
        assert model.self_paced is not None

    def test_without_spl_runs_single_cycle(self, rng):
        graph, labels, protected = planted_protected_graph(
            40, 10, rng, p_in=0.3, p_out=0.03)
        nodes = np.array([0, 41])
        classes = np.array([0, 1])
        model = FairGen(SMALL_CONFIG.variant(use_self_paced=False,
                                             self_paced_cycles=3))
        model.fit(graph, rng, labeled_nodes=nodes, labeled_classes=classes,
                  protected_mask=protected, num_classes=2)
        assert len(model.history) == 1
        assert model.history[0]["num_pseudo_labels"] == 0

    def test_explicit_features_used(self, rng):
        graph, labels, protected = planted_protected_graph(
            40, 10, rng, p_in=0.3, p_out=0.03)
        features = rng.normal(size=(graph.num_nodes, 4))
        model = FairGen(SMALL_CONFIG)
        model.fit(graph, rng, labeled_nodes=np.array([0, 41]),
                  labeled_classes=np.array([0, 1]),
                  protected_mask=protected, num_classes=2,
                  features=features)
        assert model.features is features


class TestGenerate:
    def test_same_size_as_input(self, fitted_model, rng):
        model, graph, *_ = fitted_model
        out = model.generate(rng)
        assert out.num_nodes == graph.num_nodes
        assert out.num_edges == graph.num_edges

    def test_every_node_connected(self, fitted_model, rng):
        """Assembly criterion 2: min degree 1 (for walk-covered nodes)."""
        model, graph, *_ = fitted_model
        out = model.generate(rng)
        # With the generation walk budget, isolated nodes should be rare.
        assert (out.degrees == 0).mean() < 0.15

    def test_protected_volume_preserved(self, fitted_model, rng):
        """Assembly criterion 1: protected volume within 50% of original."""
        model, graph, _, protected = fitted_model
        out = model.generate(rng)
        anchors = np.flatnonzero(protected)
        vol_orig = graph.volume(anchors)
        vol_gen = out.volume(anchors)
        assert vol_gen > 0.5 * vol_orig

    def test_generate_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            FairGen(SMALL_CONFIG).generate(rng)

    def test_generate_walks_range(self, fitted_model, rng):
        model, graph, *_ = fitted_model
        walks = model.generate_walks(30, rng)
        assert walks.shape == (30, SMALL_CONFIG.walk_length)
        assert walks.min() >= 0 and walks.max() < graph.num_nodes

    def test_reconstruction_loss_finite(self, fitted_model, rng):
        model, graph, *_ = fitted_model
        from repro.graph import sample_walks

        walks = sample_walks(graph, 8, SMALL_CONFIG.walk_length, rng)
        loss = model.reconstruction_loss(walks)
        assert np.isfinite(loss) and loss > 0


class TestGenerationStarts:
    """Regression: generation-time starts must match the degree-weighted
    convention of the training walks (not uniform over nodes)."""

    @staticmethod
    def _bare_model(graph: Graph, protected_mask: np.ndarray) -> FairGen:
        model = FairGen(SMALL_CONFIG)
        model._fitted_graph = graph
        model.protected_mask = protected_mask
        return model

    def test_unpinned_slice_degree_weighted(self, rng):
        star = Graph.from_edges(9, [(0, i) for i in range(1, 9)])
        protected = np.zeros(9, dtype=bool)
        protected[1] = True  # tiny pin fraction (volume 1/16)
        model = self._bare_model(star, protected)
        starts = np.concatenate(
            [model._generation_starts(256, rng) for _ in range(8)])
        # The hub owns half the volume, so degree-weighted unpinned starts
        # put it near 0.5 * (1 - pin_fraction); a uniform draw would leave
        # it near 1/9.
        hub_fraction = (starts == 0).mean()
        assert 0.35 < hub_fraction < 0.6

    def test_reassigning_mask_invalidates_cached_plan(self, rng):
        star = Graph.from_edges(9, [(0, i) for i in range(1, 9)])
        protected = np.zeros(9, dtype=bool)
        protected[1] = True
        model = self._bare_model(star, protected)
        model._generation_starts(64, rng)
        assert model._generation_plan is not None
        model.protected_mask = np.zeros(9, dtype=bool)  # e.g. after restore
        assert model._generation_plan is None
        assert model._generation_starts(64, rng) is None

    def test_no_protected_nodes_defers_to_generator(self, rng):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        model = self._bare_model(star, np.zeros(5, dtype=bool))
        assert model._generation_starts(64, rng) is None

    def test_protected_pinning_at_least_fair_share(self, rng):
        graph, _, protected = planted_protected_graph(
            60, 12, rng, p_in=0.3, p_out=0.03, protected_as_class=True)
        model = self._bare_model(graph, protected)
        starts = np.concatenate(
            [model._generation_starts(256, rng) for _ in range(8)])
        fair_share = graph.volume(np.flatnonzero(protected)) \
            / graph.degrees.sum()
        protected_fraction = protected[starts].mean()
        # Degree-weighted starts alone land at ~fair_share; pinning adds
        # a dedicated slice on top (~fair_share * (2 - fair_share)), so
        # requiring a 1.3x excess fails if the pinning line is removed.
        assert protected_fraction > 1.3 * fair_share


class TestVariants:
    def test_factory_names(self):
        assert make_fairgen_variant("full").name == "FairGen"
        assert make_fairgen_variant("no-sampling").name == "FairGen-R"
        assert make_fairgen_variant("no-spl").name == "FairGen-w/o-SPL"
        assert make_fairgen_variant("no-parity").name == "FairGen-w/o-Parity"

    def test_factory_flags(self):
        assert not make_fairgen_variant(
            "no-sampling").config.use_label_informed_sampling
        assert not make_fairgen_variant("no-spl").config.use_self_paced
        assert not make_fairgen_variant("no-parity").config.use_parity

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_fairgen_variant("bogus")

    def test_variant_respects_base_config(self):
        model = make_fairgen_variant("no-parity", SMALL_CONFIG)
        assert model.config.self_paced_cycles == SMALL_CONFIG.self_paced_cycles
        assert not model.config.use_parity

    def test_fairgen_r_uses_general_sampling_only(self, rng):
        graph, labels, protected = planted_protected_graph(
            40, 10, rng, p_in=0.3, p_out=0.03)
        model = make_fairgen_variant("no-sampling", SMALL_CONFIG)
        model.fit(graph, rng, labeled_nodes=np.array([0, 41]),
                  labeled_classes=np.array([0, 1]),
                  protected_mask=protected, num_classes=2)
        assert model.sampler.sampling_ratio == 1.0
