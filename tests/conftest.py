"""Shared fixtures for the FairGen reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, planted_protected_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; a fresh generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_graph() -> Graph:
    """K3: the smallest graph with a triangle."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph() -> Graph:
    """P5: a 5-node path 0-1-2-3-4."""
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def two_cliques_graph() -> Graph:
    """Two K4 cliques joined by a single bridge edge (3-4)."""
    edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    edges += [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
    edges.append((3, 4))
    return Graph.from_edges(8, edges)


@pytest.fixture
def disconnected_graph() -> Graph:
    """Triangle plus an isolated edge plus an isolated node (6 nodes)."""
    return Graph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)])


@pytest.fixture
def labeled_community_graph(rng):
    """Small planted graph with labels and a protected group."""
    graph, labels, protected = planted_protected_graph(
        60, 12, rng, p_in=0.35, p_out=0.02, num_classes=2,
        protected_as_class=True)
    return graph, labels, protected
