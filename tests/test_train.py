"""Tests for ``repro.train``: the shared Trainer loop, checkpoint/resume,
optimizer state round trips, grad-free scoring, and the seeded-parity
pins proving the refactored fit loops reproduce the legacy numerics.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, Runner, Worker
from repro.nn import (Adagrad, Adam, Linear, Parameter, RMSprop, SGD,
                      Tensor)
from repro.train import (TrainCallback, TrainControl, Trainer, TrainState,
                         minibatches, step_rng, train_step)

FIXTURES = Path(__file__).parent / "fixtures"


def _load_parity_module():
    spec = importlib.util.spec_from_file_location(
        "train_parity_gen", FIXTURES / "generate_train_parity.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


parity = _load_parity_module()
PINNED = json.loads((FIXTURES / "train_parity.json").read_text())
MODEL_NAMES = sorted(PINNED)


# ----------------------------------------------------------------------
# Toy task used by the loop/checkpoint unit tests
# ----------------------------------------------------------------------
class _ToyTask:
    """Fits y = 2x with one weight; consumes one rng draw per epoch."""

    def __init__(self, lr: float = 0.1):
        rng = np.random.default_rng(0)
        self.layer = Linear(1, 1, rng, bias=False)
        self.optimizer = Adam(self.layer.parameters(), lr=lr)
        self.noise_seen: list[float] = []

    def modules(self):
        return {"layer": self.layer}

    def optimizers(self):
        return {"adam": self.optimizer}

    def extra_state(self):
        return {"noise_seen": np.asarray(self.noise_seen)}

    def load_extra_state(self, extra):
        self.noise_seen = list(np.asarray(extra["noise_seen"]))

    def epoch(self, state, rng) -> float:
        noise = float(rng.standard_normal())
        self.noise_seen.append(noise)
        x = np.array([[1.0]])

        def loss_fn():
            pred = self.layer(Tensor(x))
            diff = pred - (2.0 + 0.01 * noise)
            return (diff * diff).sum()

        return train_step(self.optimizer, list(self.layer.parameters()),
                          loss_fn)


class _Recorder(TrainCallback):
    def __init__(self):
        self.events: list[str] = []

    def on_fit_start(self, trainer, state):
        self.events.append(f"fit_start@{state.epoch}")

    def on_epoch_start(self, trainer, state):
        self.events.append(f"start@{state.epoch}")

    def on_epoch_end(self, trainer, state, record):
        self.events.append(f"end@{state.epoch}")

    def on_epoch_commit(self, trainer, state):
        self.events.append(f"commit@{state.epoch}")

    def on_fit_end(self, trainer, state):
        self.events.append(f"fit_end@{state.epoch}")


class _InterruptAfter(TrainCallback):
    """Raise after epoch ``k`` has been committed (checkpoint written)."""

    def __init__(self, k: int):
        self.k = k

    def on_epoch_commit(self, trainer, state):
        if state.epoch >= self.k:
            raise RuntimeError("interrupted for the resume test")


# ----------------------------------------------------------------------
# Loop helpers
# ----------------------------------------------------------------------
class TestHelpers:
    def test_minibatches_cover_range_in_order(self):
        slices = list(minibatches(10, 4))
        assert len(slices) == 3  # 4 + 4 + 2
        covered = np.concatenate([np.arange(10)[sl] for sl in slices])
        np.testing.assert_array_equal(covered, np.arange(10))

    def test_minibatches_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(minibatches(10, 0))

    def test_train_step_steps_and_returns_loss(self):
        rng = np.random.default_rng(3)
        layer = Linear(2, 1, rng, bias=False)
        before = layer.weight.data.copy()
        opt = SGD(layer.parameters(), lr=0.5)
        x = np.ones((1, 2))

        loss = train_step(opt, list(layer.parameters()),
                          lambda: (layer(Tensor(x)) ** 2).sum())
        assert isinstance(loss, float) and loss > 0
        assert not np.array_equal(layer.weight.data, before)
        # Gradients were zeroed before the step's backward, so the next
        # step does not accumulate stale grads.
        assert layer.weight.grad is not None

    def test_train_step_clips_gradient_norm(self):
        rng = np.random.default_rng(3)
        layer = Linear(1, 1, rng, bias=False)
        layer.weight.data[:] = 100.0
        opt = SGD(layer.parameters(), lr=1.0)
        train_step(opt, list(layer.parameters()),
                   lambda: (layer(Tensor(np.ones((1, 1)))) ** 2).sum(),
                   clip_norm=1.0)
        grad_norm = float(np.sqrt((layer.weight.grad ** 2).sum()))
        assert grad_norm <= 1.0 + 1e-9

    def test_step_rng_streams_deterministic_and_independent(self):
        a = step_rng(7, epoch=1, step=2).random(4)
        b = step_rng(7, epoch=1, step=2).random(4)
        c = step_rng(7, epoch=1, step=3).random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


# ----------------------------------------------------------------------
# The Trainer loop
# ----------------------------------------------------------------------
class TestTrainerLoop:
    def test_history_one_record_per_epoch(self):
        task = _ToyTask()
        state = Trainer(task, epochs=5).fit(np.random.default_rng(1))
        assert state.epoch == 5
        assert len(state.history) == 5
        assert all(isinstance(v, float) for v in state.history)

    def test_zero_epochs_is_a_no_op(self):
        task = _ToyTask()
        state = Trainer(task, epochs=0).fit(np.random.default_rng(1))
        assert state.epoch == 0 and state.history == []

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            Trainer(_ToyTask(), epochs=-1)

    def test_callback_hook_order(self):
        recorder = _Recorder()
        Trainer(_ToyTask(), epochs=2,
                callbacks=[recorder]).fit(np.random.default_rng(1))
        assert recorder.events == [
            "fit_start@0", "start@0", "end@0", "commit@1",
            "start@1", "end@1", "commit@2", "fit_end@2"]

    def test_on_epoch_end_mutates_record_before_commit(self):
        class Enricher(TrainCallback):
            def on_epoch_end(self, trainer, state, record):
                record["extra"] = 42.0

        class DictTask(_ToyTask):
            def epoch(self, state, rng):
                return {"loss": super().epoch(state, rng)}

        state = Trainer(DictTask(), epochs=2,
                        callbacks=[Enricher()]).fit(np.random.default_rng(1))
        assert all(r["extra"] == 42.0 for r in state.history)

    def test_control_callbacks_run_after_trainer_callbacks(self):
        first, second = _Recorder(), _Recorder()
        Trainer(_ToyTask(), epochs=1, callbacks=[first],
                control=TrainControl(callbacks=(second,))
                ).fit(np.random.default_rng(1))
        assert first.events == second.events != []

    def test_trainer_rng_available_to_callbacks_during_fit(self):
        seen = []

        class Peek(TrainCallback):
            def on_epoch_end(self, trainer, state, record):
                seen.append(trainer.rng)

        trainer = Trainer(_ToyTask(), epochs=1, callbacks=[Peek()])
        rng = np.random.default_rng(1)
        trainer.fit(rng)
        assert seen == [rng]
        assert trainer.rng is None  # released after the fit


# ----------------------------------------------------------------------
# Optimizer state round trips
# ----------------------------------------------------------------------
class TestOptimizerState:
    @pytest.mark.parametrize("factory", [
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: Adam(params, lr=0.05),
        lambda params: RMSprop(params, lr=0.05),
        lambda params: Adagrad(params, lr=0.05),
    ], ids=["sgd-momentum", "adam", "rmsprop", "adagrad"])
    def test_round_trip_continues_bit_identically(self, factory):
        def make():
            p = Parameter(np.linspace(-1, 1, 6).reshape(2, 3))
            return p, factory([p])

        def grad_for(step):  # deterministic varying pseudo-gradients
            return np.full((2, 3), 0.1) * (step + 1)

        def run(optimizer, param, steps, start=0):
            for step in range(start, start + steps):
                param.grad = grad_for(step)
                optimizer.step()

        ref_param, ref_opt = make()
        run(ref_opt, ref_param, 7)

        src_param, src_opt = make()
        run(src_opt, src_param, 4)
        snapshot = src_opt.state_dict()
        np.testing.assert_array_equal(src_param.data, src_param.data)

        dst_param, dst_opt = make()
        dst_param.data[...] = src_param.data
        dst_opt.load_state_dict(snapshot)
        run(dst_opt, dst_param, 3, start=4)
        np.testing.assert_array_equal(dst_param.data, ref_param.data)

    def test_state_dict_copies_are_detached(self):
        p = Parameter(np.zeros((2, 2)))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones((2, 2))
        opt.step()
        state = opt.state_dict()
        p.grad = np.ones((2, 2))
        opt.step()
        assert not np.array_equal(state["m0"], opt.state_dict()["m0"])

    def test_load_rejects_shape_mismatch(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.1)
        bad = opt.state_dict()
        bad["m0"] = np.zeros(5)
        with pytest.raises(ValueError):
            opt.load_state_dict(bad)


# ----------------------------------------------------------------------
# Checkpoint archive
# ----------------------------------------------------------------------
class TestCheckpointArchive:
    def test_round_trip_restores_everything(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        task = _ToyTask()
        rng = np.random.default_rng(5)
        state = Trainer(task, epochs=3).fit(rng)
        state.save(path, task, rng, tag="stamp")

        loaded = TrainState.load(path)
        assert loaded.epoch == 3
        assert loaded.history == state.history
        assert loaded.tag == "stamp"

        fresh_task = _ToyTask()
        fresh_rng = np.random.default_rng(999)
        loaded.restore(fresh_task, fresh_rng)
        np.testing.assert_array_equal(fresh_task.layer.weight.data,
                                      task.layer.weight.data)
        assert fresh_task.noise_seen == task.noise_seen
        assert fresh_rng.bit_generator.state == rng.bit_generator.state
        # Optimizer moments came along: further identical steps match.
        assert fresh_task.optimizer._t == task.optimizer._t

    def test_load_missing_and_corrupt_return_none(self, tmp_path):
        assert TrainState.load(tmp_path / "nope.ckpt.npz") is None
        garbage = tmp_path / "bad.ckpt.npz"
        garbage.write_bytes(b"this is not an npz archive")
        assert TrainState.load(garbage) is None

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        task = _ToyTask()
        rng = np.random.default_rng(5)
        TrainState().save(path, task, rng)
        assert [p.name for p in tmp_path.iterdir()] == ["toy.ckpt.npz"]

    def test_trainer_ignores_checkpoint_with_wrong_tag(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        control_a = TrainControl(checkpoint_path=path, tag="params-v1")
        task = _ToyTask()
        Trainer(task, epochs=2, control=control_a).fit(
            np.random.default_rng(5))
        assert path.exists()

        # Same path, different tag: the stale checkpoint must not be
        # resumed — the fit trains all epochs from scratch.
        task_b = _ToyTask()
        control_b = TrainControl(checkpoint_path=path, tag="params-v2")
        state = Trainer(task_b, epochs=2, control=control_b).fit(
            np.random.default_rng(5))
        assert len(task_b.noise_seen) == 2  # both epochs actually ran
        assert state.epoch == 2

    def test_trainer_ignores_checkpoint_beyond_schedule(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        control = TrainControl(checkpoint_path=path)
        Trainer(_ToyTask(), epochs=4, control=control).fit(
            np.random.default_rng(5))
        task = _ToyTask()
        Trainer(task, epochs=2, control=control).fit(
            np.random.default_rng(5))
        assert len(task.noise_seen) == 2  # epoch-4 checkpoint ignored

    def test_partial_checkpoint_rolls_back_and_trains_from_scratch(
            self, tmp_path):
        """A checkpoint missing one module's arrays must not leave the
        task half-restored: the failed resume rolls every module back,
        so the from-scratch fallback produces exactly what a fresh fit
        produces."""
        class TwoModuleTask(_ToyTask):
            def __init__(self):
                super().__init__()
                self.second = Linear(1, 1, np.random.default_rng(1),
                                     bias=False)

            def modules(self):
                return {"layer": self.layer, "second": self.second}

        path = tmp_path / "toy.ckpt.npz"
        task = TwoModuleTask()
        rng = np.random.default_rng(5)
        state = Trainer(task, epochs=2).fit(rng)
        state.save(path, task, rng)

        # Drop the second module's arrays: load succeeds, restore fails.
        with np.load(path) as archive:
            kept = {name: archive[name] for name in archive.files
                    if not name.startswith("module/second/")}
        np.savez_compressed(path, **kept)

        reference = TwoModuleTask()
        Trainer(reference, epochs=4).fit(np.random.default_rng(5))

        resumed = TwoModuleTask()
        Trainer(resumed, epochs=4,
                control=TrainControl(checkpoint_path=path)).fit(
            np.random.default_rng(5))
        assert len(resumed.noise_seen) == 4  # trained from scratch...
        np.testing.assert_array_equal(  # ...with pristine weights
            resumed.layer.weight.data, reference.layer.weight.data)
        np.testing.assert_array_equal(
            resumed.second.weight.data, reference.second.weight.data)

    def test_resume_false_trains_from_scratch(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        Trainer(_ToyTask(), epochs=3,
                control=TrainControl(checkpoint_path=path)).fit(
            np.random.default_rng(5))
        task = _ToyTask()
        Trainer(task, epochs=3,
                control=TrainControl(checkpoint_path=path,
                                     resume=False)).fit(
            np.random.default_rng(5))
        assert len(task.noise_seen) == 3

    def test_time_based_interval_skips_fast_epochs(self, tmp_path):
        path = tmp_path / "toy.ckpt.npz"
        control = TrainControl(checkpoint_path=path,
                               min_save_interval=3600.0)
        Trainer(_ToyTask(), epochs=3, control=control).fit(
            np.random.default_rng(5))
        assert not path.exists()  # sub-second fit: zero checkpoint I/O


# ----------------------------------------------------------------------
# Seeded parity: the tentpole acceptance criterion
# ----------------------------------------------------------------------
class TestSeededParity:
    """The Trainer-backed fits reproduce the legacy loops bit for bit.

    ``train_parity.json`` was generated against the pre-``repro.train``
    hand-rolled loops (see ``fixtures/generate_train_parity.py``); every
    digest covers the exact bytes of the fitted parameters and the loss
    history for a pinned (graph, config, seed) triple.
    """

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_fit_matches_pre_refactor_loop(self, name):
        model, history = parity.fit_model(name)
        assert parity.state_digest(model.state_dict()) \
            == PINNED[name]["state"], f"{name}: fitted parameters drifted"
        assert parity.history_digest(history) \
            == PINNED[name]["history"], f"{name}: loss history drifted"


# ----------------------------------------------------------------------
# Interrupt/resume byte-identity for every Trainer-backed model
# ----------------------------------------------------------------------
class TestInterruptResume:
    @staticmethod
    def _fit(name, graph, labels, protected, control=None):
        model = parity.build_models()[name]()
        model.train_control = control
        rng = np.random.default_rng(parity.FIT_SEED)
        if name == "fairgen":
            nodes, classes = parity.parity_supervision(labels)
            model.fit(graph, rng, labeled_nodes=nodes,
                      labeled_classes=classes, protected_mask=protected,
                      num_classes=int(labels.max()) + 1)
        else:
            model.fit(graph, rng)
        return model, rng

    @staticmethod
    def _history(model):
        if hasattr(model, "history") and model.history:
            return model.history
        return getattr(model, "loss_history", None) \
            or model.critic_history

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_interrupted_then_resumed_fit_is_byte_identical(
            self, name, tmp_path):
        """Interrupt at epoch 1, resume, compare against uninterrupted.

        Fitted parameters, the loss history AND the caller's RNG state
        must all match exactly — the RNG state is what guarantees the
        post-fit ``generate`` consumes an identical stream, making final
        cached artifacts byte-identical through the scheduler.
        """
        graph, labels, protected = parity.parity_graph()
        ckpt = tmp_path / f"{name}.ckpt.npz"

        ref_model, ref_rng = self._fit(name, graph, labels, protected)

        with pytest.raises(RuntimeError, match="interrupted"):
            self._fit(name, graph, labels, protected,
                      TrainControl(checkpoint_path=ckpt,
                                   callbacks=(_InterruptAfter(1),)))
        assert ckpt.exists()

        resumed_model, resumed_rng = self._fit(
            name, graph, labels, protected,
            TrainControl(checkpoint_path=ckpt))

        assert parity.state_digest(resumed_model.state_dict()) \
            == parity.state_digest(ref_model.state_dict())
        assert self._history(resumed_model) == self._history(ref_model)
        assert resumed_rng.bit_generator.state \
            == ref_rng.bit_generator.state


# ----------------------------------------------------------------------
# Grad-free scoring (satellite regression)
# ----------------------------------------------------------------------
class TestGradFreeScoring:
    @staticmethod
    def _discriminator():
        from repro.core.discriminator import FairDiscriminator

        rng = np.random.default_rng(0)
        features = rng.standard_normal((30, 8))
        return FairDiscriminator(features, 3, rng.random(30) < 0.3, rng,
                                 hidden_dim=8)

    def test_predict_log_proba_retains_no_tensor_graph(self, monkeypatch):
        """Pure scoring must not build (or keep) any autograd graph."""
        disc = self._discriminator()
        created: list[Tensor] = []
        original = Tensor._make

        def spy(self, data, parents, backward):
            out = original(self, data, parents, backward)
            created.append(out)
            return out

        monkeypatch.setattr(Tensor, "_make", spy)
        disc.predict_log_proba()
        assert created, "the spy should have seen the forward pass"
        assert all(not t.requires_grad and t._prev == ()
                   and t._backward is None for t in created)

    def test_predict_proba_and_predict_share_the_grad_free_path(
            self, monkeypatch):
        disc = self._discriminator()
        created: list[Tensor] = []
        original = Tensor._make

        def spy(self, data, parents, backward):
            out = original(self, data, parents, backward)
            created.append(out)
            return out

        monkeypatch.setattr(Tensor, "_make", spy)
        disc.predict_proba()
        disc.predict()
        assert all(t._prev == () for t in created)

    def test_grad_free_values_match_grad_path_exactly(self):
        disc = self._discriminator()
        grad_free = disc.predict_log_proba()
        with_graph = disc.log_probs().numpy()
        np.testing.assert_array_equal(grad_free, with_graph)

    def test_train_step_still_builds_gradients(self):
        disc = self._discriminator()
        record = disc.train_step(np.array([0, 1, 2]), np.array([0, 1, 2]),
                                 np.array([3, 4]), np.array([1, 2]))
        assert set(record) == {"J_P", "J_L", "J_F", "total"}

    def test_module_eval_forward_matches_forward(self):
        disc = self._discriminator()
        x = Tensor(disc.features)
        grad_out = disc.mlp(x)
        free_out = disc.mlp.eval_forward(x)
        np.testing.assert_array_equal(grad_out.numpy(), free_out.numpy())
        assert grad_out.requires_grad and not free_out.requires_grad


# ----------------------------------------------------------------------
# Runner + Worker integration
# ----------------------------------------------------------------------
class TestRunnerResume:
    SPEC = ExperimentSpec(model="gae", dataset="EMAIL", profile="smoke")

    def _partial_fit(self, runner: Runner, k: int = 2) -> Path:
        """Run the spec's fit but interrupt it after ``k`` epochs."""
        from repro.registry import get_entry

        spec = self.SPEC
        entry = get_entry(spec.model)
        model = entry.build(spec.profile, spec.override_dict)
        runner._install_train_control(spec, model)
        model.train_control.callbacks = (_InterruptAfter(k),)
        with pytest.raises(RuntimeError, match="interrupted"):
            model.fit(runner.dataset(spec.dataset).graph, spec.rng(stream=0))
        ckpt = runner.checkpoint_path(spec)
        assert ckpt.exists()
        return ckpt

    def test_resumed_run_reproduces_artifacts_and_skips_epochs(
            self, tmp_path, monkeypatch):
        from repro.models import gae as gae_module

        full = Runner(cache_dir=tmp_path / "full", checkpoint_interval=0.0)
        reference = full.run(self.SPEC)

        resumed_runner = Runner(cache_dir=tmp_path / "resumed",
                                checkpoint_interval=0.0)
        ckpt = self._partial_fit(resumed_runner, k=2)

        calls = []
        original_epoch = gae_module._GAETask.epoch

        def counting_epoch(self, state, rng):
            calls.append(state.epoch)
            return original_epoch(self, state, rng)

        monkeypatch.setattr(gae_module._GAETask, "epoch", counting_epoch)
        result = resumed_runner.run(self.SPEC)

        total_epochs = len(reference.model.loss_history)
        assert calls == list(range(2, total_epochs))  # resumed, not refit
        assert not ckpt.exists()  # consumed + superseded by artifacts

        ref_graph = reference.generated.adjacency
        res_graph = result.generated.adjacency
        assert (ref_graph != res_graph).nnz == 0
        assert result.model.loss_history == reference.model.loss_history

    def test_stale_stamp_invalidates_checkpoint(self, tmp_path,
                                                monkeypatch):
        from repro.models import gae as gae_module

        runner = Runner(cache_dir=tmp_path / "cache",
                        checkpoint_interval=0.0)
        self._partial_fit(runner, k=2)

        # A Runner whose resolved supervision settings differ writes a
        # different stamp, so the checkpoint must be ignored.
        other = Runner(cache_dir=tmp_path / "cache",
                       allow_surrogate=False, checkpoint_interval=0.0)
        calls = []
        original_epoch = gae_module._GAETask.epoch

        def counting_epoch(self, state, rng):
            calls.append(state.epoch)
            return original_epoch(self, state, rng)

        monkeypatch.setattr(gae_module._GAETask, "epoch", counting_epoch)
        result = other.run(self.SPEC)
        assert calls[0] == 0  # trained from scratch
        assert result.generated.num_nodes > 0

    def test_default_runner_interval_writes_no_checkpoints(self, tmp_path):
        runner = Runner(cache_dir=tmp_path / "cache")  # 30s interval
        runner.run(self.SPEC)
        leftovers = list((tmp_path / "cache").glob("*.ckpt.npz"))
        assert leftovers == []  # sub-second fit: zero checkpoint I/O


class TestWorkerCheckpointCadence:
    def test_worker_checkpoints_on_heartbeat_interval(self, tmp_path):
        worker = Worker(tmp_path / "q", tmp_path / "cache",
                        heartbeat_interval=0.25)
        assert worker.runner.checkpoint_interval == 0.25

    def test_worker_default_cadence_follows_lease_timeout(self, tmp_path):
        from repro.experiments import JobQueue

        queue = JobQueue(tmp_path / "q", lease_timeout=8.0)
        worker = Worker(queue, tmp_path / "cache")
        assert worker.runner.checkpoint_interval == worker.heartbeat_interval
        assert worker.heartbeat_interval == pytest.approx(2.0)
