"""Tests for seed-stacked (vmap-style) multi-seed fits.

The contract under test everywhere: a K-seed stacked fit leaves every
seed's model, loss history, RNG state and downstream artifacts
**byte-identical** to what K separate sequential fits would have
produced — the stacking is a pure execution strategy, invisible to
caches, checkpoints and the sweep scheduler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, Runner
from repro.experiments.sweep import grid, run_sweep, stack_cells
from repro.graph import planted_protected_graph
from repro.models import GAEModel
from repro.nn import (LayerNorm, Linear, Module, Parameter, Tensor,
                      stack_modules, unstack_state_dict)
from repro.nn.vmap import register_stack_rule
from repro.train import (StackedRNG, TrainCallback, TrainControl, Trainer,
                         stacked_step_rng)
from repro.train.stacked import STACKED_STATE_KEY

SMALLEST = "EMAIL"  # smallest bundled dataset (106 nodes)
SEEDS = [11, 23, 35, 47, 59]


def _graph():
    rng = np.random.default_rng(7)
    graph, _, _ = planted_protected_graph(48, 12, rng, p_in=0.3, p_out=0.03,
                                          num_classes=2,
                                          protected_as_class=True)
    return graph


def _gae():
    return GAEModel(epochs=12, hidden=16, latent=8)


def _sequential_fits(graph, seeds):
    models, rngs = [], []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        models.append(_gae().fit(graph, rng))
        rngs.append(rng)
    return models, rngs


def _assert_state_equal(a: dict, b: dict, context: str = "") -> None:
    assert a.keys() == b.keys(), context
    for name in a:
        assert a[name].dtype == b[name].dtype, (context, name)
        assert np.array_equal(a[name], b[name]), (context, name)


# ----------------------------------------------------------------------
# StackedRNG: per-seed streams behind a batched interface
# ----------------------------------------------------------------------
class TestStackedRNG:
    def test_draws_match_per_seed_generators(self):
        stacked = StackedRNG([np.random.default_rng(s) for s in (1, 2, 3)])
        solo = [np.random.default_rng(s) for s in (1, 2, 3)]
        got = stacked.standard_normal((3, 4, 2))
        want = np.stack([rng.standard_normal((4, 2)) for rng in solo])
        np.testing.assert_array_equal(got, want)
        # Draw methods interleave on the same underlying streams.
        np.testing.assert_array_equal(
            stacked.random((3, 5)),
            np.stack([rng.random(5) for rng in solo]))
        np.testing.assert_array_equal(
            stacked.normal(2.0, 0.5, size=(3, 2)),
            np.stack([rng.normal(2.0, 0.5, 2) for rng in solo]))
        np.testing.assert_array_equal(
            stacked.uniform(-1.0, 1.0, size=(3, 2)),
            np.stack([rng.uniform(-1.0, 1.0, 2) for rng in solo]))
        np.testing.assert_array_equal(
            stacked.integers(0, 10, size=(3, 6)),
            np.stack([rng.integers(0, 10, 6) for rng in solo]))

    def test_rejects_shapes_without_leading_seed_axis(self):
        stacked = StackedRNG([np.random.default_rng(s) for s in (1, 2)])
        with pytest.raises(ValueError, match="seed axis"):
            stacked.standard_normal((3, 4))  # wrong K
        with pytest.raises(ValueError, match="seed axis"):
            stacked.random(())  # no leading axis at all

    def test_rejects_empty_generator_list(self):
        with pytest.raises(ValueError, match="at least one"):
            StackedRNG([])

    def test_len(self):
        assert len(StackedRNG([np.random.default_rng(0)] * 1)) == 1

    def test_bit_generator_state_roundtrip(self):
        """The duck-typed ``bit_generator`` checkpoints and restores the
        whole stack through the same attribute Trainer snapshots."""
        stacked = StackedRNG([np.random.default_rng(s) for s in (5, 6)])
        stacked.standard_normal((2, 3))
        snapshot = stacked.bit_generator.state
        assert STACKED_STATE_KEY in snapshot
        first = stacked.standard_normal((2, 8))
        stacked.bit_generator.state = snapshot
        np.testing.assert_array_equal(stacked.standard_normal((2, 8)), first)

    def test_state_setter_rejects_wrong_cardinality(self):
        two = StackedRNG([np.random.default_rng(s) for s in (5, 6)])
        three = StackedRNG([np.random.default_rng(s) for s in (5, 6, 7)])
        with pytest.raises(ValueError, match="2 RNG states"):
            three.bit_generator.state = two.bit_generator.state

    def test_stacked_step_rng_matches_step_rng(self):
        from repro.train.trainer import step_rng

        stacked = stacked_step_rng([4, 9], epoch=3, step=1)
        want = np.stack([step_rng(4, 3, 1).standard_normal(5),
                         step_rng(9, 3, 1).standard_normal(5)])
        np.testing.assert_array_equal(stacked.standard_normal((2, 5)), want)


# ----------------------------------------------------------------------
# stack_modules: the parameter-tree transform
# ----------------------------------------------------------------------
class _TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.lin = Linear(4, 3, rng)
        self.norm = LayerNorm(3)

    def forward(self, x):
        return self.norm(self.lin(x))


class TestStackModules:
    def test_stacked_forward_matches_per_seed_forwards(self):
        rngs = [np.random.default_rng(s) for s in (1, 2, 3)]
        modules = [_TwoLayer(rng) for rng in rngs]
        stacked = stack_modules(modules)
        assert stacked.num_seeds == 3

        x = np.random.default_rng(9).standard_normal((3, 5, 4))
        got = stacked(Tensor(x)).data
        for k, module in enumerate(modules):
            np.testing.assert_array_equal(got[k], module(Tensor(x[k])).data)

    def test_stacked_parameter_shapes(self):
        modules = [_TwoLayer(np.random.default_rng(s)) for s in (1, 2)]
        stacked = stack_modules(modules).module
        assert stacked.lin.weight.shape == (2, 4, 3)
        assert stacked.lin.bias.shape == (2, 1, 3)    # broadcast row
        assert stacked.norm.gamma.shape == (2, 1, 3)
        assert stacked.norm.beta.shape == (2, 1, 3)

    def test_state_dict_for_roundtrips_each_seed(self):
        modules = [_TwoLayer(np.random.default_rng(s)) for s in (1, 2, 3)]
        stacked = stack_modules(modules)
        for k, module in enumerate(modules):
            want = {name: param.data
                    for name, param in module.named_parameters()}
            _assert_state_equal(stacked.state_dict_for(k), want, f"seed {k}")
            _assert_state_equal(unstack_state_dict(stacked, k), want)

    def test_state_dict_for_range_checked(self):
        stacked = stack_modules(
            [_TwoLayer(np.random.default_rng(s)) for s in (1, 2)])
        with pytest.raises(IndexError, match="out of range"):
            stacked.state_dict_for(2)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            stack_modules([])

    def test_mixed_module_types_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TypeError, match="cannot stack"):
            stack_modules([Linear(4, 3, rng), LayerNorm(3)])

    def test_mismatched_shapes_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="shapes differ"):
            stack_modules([Linear(4, 3, rng), Linear(4, 2, rng)])

    def test_unknown_parameter_kind_fails_loudly(self):
        class Odd(Module):
            def __init__(self):
                super().__init__()
                self.theta = Parameter(np.ones(3))

            def forward(self, x):  # pragma: no cover - never called
                return x

        with pytest.raises(NotImplementedError, match="register_stack_rule"):
            stack_modules([Odd(), Odd()])

        # Declaring a rule makes the same class stackable.
        register_stack_rule(Odd, "theta", lambda arrays: np.stack(arrays))
        stacked = stack_modules([Odd(), Odd()])
        assert stacked.module.theta.shape == (2, 3)


# ----------------------------------------------------------------------
# fit_stacked: byte-identity against sequential fits
# ----------------------------------------------------------------------
class TestStackedGAEFit:
    def test_stacked_fit_byte_identical_to_sequential(self):
        """The tentpole acceptance check: state dicts, loss histories,
        post-fit RNG states and generated graphs all match exactly."""
        graph = _graph()
        seq_models, seq_rngs = _sequential_fits(graph, SEEDS)

        stk_models = [_gae() for _ in SEEDS]
        stk_rngs = [np.random.default_rng(s) for s in SEEDS]
        out = GAEModel.fit_stacked(stk_models, graph, stk_rngs)
        assert out is not None and len(out) == len(SEEDS)

        for k, (seq, stk) in enumerate(zip(seq_models, stk_models)):
            assert seq.loss_history == stk.loss_history, f"seed {SEEDS[k]}"
            _assert_state_equal(seq.state_dict(), stk.state_dict(),
                                f"seed {SEEDS[k]}")
            # The caller's generators end in the same state, so the
            # post-fit generate stream continues identically.
            assert seq_rngs[k].bit_generator.state \
                == stk_rngs[k].bit_generator.state
            a = seq.generate(seq_rngs[k])
            b = stk.generate(stk_rngs[k])
            assert (a.adjacency != b.adjacency).nnz == 0

    def test_single_seed_stack_degenerates_cleanly(self):
        graph = _graph()
        [seq], [seq_rng] = _sequential_fits(graph, [SEEDS[0]])
        stk_rng = np.random.default_rng(SEEDS[0])
        [stk] = GAEModel.fit_stacked([_gae()], graph, [stk_rng])
        _assert_state_equal(seq.state_dict(), stk.state_dict())
        assert seq_rng.bit_generator.state == stk_rng.bit_generator.state

    def test_mismatched_configs_rejected(self):
        with pytest.raises(ValueError, match="identical configs"):
            GAEModel.fit_stacked(
                [_gae(), GAEModel(epochs=12, hidden=8, latent=8)],
                _graph(), [np.random.default_rng(s) for s in (1, 2)])

    def test_rng_cardinality_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one RNG per model"):
            GAEModel.fit_stacked([_gae(), _gae()], _graph(),
                                 [np.random.default_rng(1)])
        with pytest.raises(ValueError, match="one RNG per model"):
            GAEModel.fit_stacked([], _graph(), [])

    def test_interrupted_stacked_fit_resumes_byte_identically(
            self, tmp_path):
        """Checkpoint/resume rides the unchanged Trainer machinery: the
        stacked RNG snapshot fans back out across all K generators."""

        class _InterruptAfter(TrainCallback):
            def __init__(self, k):
                self.k = k

            def on_epoch_commit(self, trainer, state):
                if state.epoch >= self.k:
                    raise RuntimeError("interrupted for the resume test")

        graph = _graph()
        seeds = SEEDS[:3]
        ckpt = tmp_path / "stack.ckpt.npz"

        ref_models = [_gae() for _ in seeds]
        ref_rngs = [np.random.default_rng(s) for s in seeds]
        GAEModel.fit_stacked(ref_models, graph, ref_rngs)

        with pytest.raises(RuntimeError, match="interrupted"):
            GAEModel.fit_stacked(
                [_gae() for _ in seeds], graph,
                [np.random.default_rng(s) for s in seeds],
                control=TrainControl(checkpoint_path=ckpt,
                                     callbacks=(_InterruptAfter(4),)))
        assert ckpt.exists()

        resumed = [_gae() for _ in seeds]
        resumed_rngs = [np.random.default_rng(s) for s in seeds]
        GAEModel.fit_stacked(resumed, graph, resumed_rngs,
                             control=TrainControl(checkpoint_path=ckpt))

        for ref, res, ref_rng, res_rng in zip(ref_models, resumed,
                                              ref_rngs, resumed_rngs):
            _assert_state_equal(ref.state_dict(), res.state_dict())
            assert ref.loss_history == res.loss_history
            assert ref_rng.bit_generator.state == res_rng.bit_generator.state


# ----------------------------------------------------------------------
# Runner integration: stacked execution behind per-seed cache keys
# ----------------------------------------------------------------------
def _cell(seeds, **kw):
    return [ExperimentSpec(model="gae", dataset=SMALLEST, profile="smoke",
                           seed=s, **kw) for s in seeds]


class TestRunnerStacked:
    def test_stackable_cell(self):
        runner = Runner()
        assert runner.stackable(_cell([1, 2, 3]))

    @pytest.mark.parametrize("specs", [
        [],                                    # empty
        _cell([1]),                            # single seed
        _cell([1]) + _cell([1]),               # duplicate seeds
        _cell([1]) + [ExperimentSpec(model="gae", dataset=SMALLEST,
                                     profile="bench", seed=2)],  # mixed cell
        [ExperimentSpec(model="er", dataset=SMALLEST, profile="smoke",
                        seed=s) for s in (1, 2)],   # no fit_stacked
        [ExperimentSpec(model="fairgen", dataset=SMALLEST, profile="smoke",
                        seed=s) for s in (1, 2)],   # needs supervision
    ], ids=["empty", "single", "dup-seeds", "mixed-cell", "no-support",
            "supervised"])
    def test_not_stackable(self, specs):
        assert not Runner().stackable(specs)

    def test_run_stacked_artifacts_match_per_seed_run(self, tmp_path):
        specs = _cell([1, 2, 3])
        solo = Runner(cache_dir=tmp_path / "solo")
        solo_results = [solo.run(spec, need_model=True) for spec in specs]

        stacker = Runner(cache_dir=tmp_path / "stacked")
        stacked_results = stacker.run_stacked(specs, need_model=True)

        for a, b in zip(solo_results, stacked_results):
            assert (a.generated.adjacency != b.generated.adjacency).nnz == 0
            _assert_state_equal(a.model.state_dict(), b.model.state_dict(),
                                a.spec.cache_key())
        # Identical cache keys: per-seed files named exactly as the
        # sequential path names them, nothing stack-specific left over.
        solo_files = sorted(p.name for p in (tmp_path / "solo").iterdir())
        stack_files = sorted(p.name
                             for p in (tmp_path / "stacked").iterdir())
        assert solo_files == stack_files
        assert not [name for name in stack_files if "stack" in name]

    def test_run_stacked_replays_without_refitting(self, tmp_path):
        specs = _cell([1, 2])
        runner = Runner(cache_dir=tmp_path)
        first = runner.run_stacked(specs)
        assert all(not r.from_cache for r in first)
        replay = Runner(cache_dir=tmp_path).run_stacked(specs)
        assert all(r.from_cache for r in replay)
        for a, b in zip(first, replay):
            assert (a.generated.adjacency != b.generated.adjacency).nnz == 0

    def test_run_stacked_fits_only_the_cache_misses(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        warm = runner.run(_cell([2])[0])  # pre-warm one seed per-seed
        results = Runner(cache_dir=tmp_path).run_stacked(_cell([1, 2, 3]))
        assert (results[1].generated.adjacency
                != warm.generated.adjacency).nnz == 0
        # The warm seed replays; the misses still match their solo fits.
        solo = Runner(cache_dir=tmp_path / "ref").run(_cell([1])[0])
        assert (results[0].generated.adjacency
                != solo.generated.adjacency).nnz == 0

    def test_run_stacked_falls_back_for_unstackable_batches(self, tmp_path):
        specs = [ExperimentSpec(model="er", dataset=SMALLEST,
                                profile="smoke", seed=s) for s in (1, 2)]
        results = Runner(cache_dir=tmp_path).run_stacked(specs)
        reference = Runner(cache_dir=tmp_path / "ref").run_many(specs)
        for got, want in zip(results, reference):
            assert (got.generated.adjacency
                    != want.generated.adjacency).nnz == 0

    def test_stacked_checkpoint_keyed_by_cell_and_seeds(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        a = runner.stacked_checkpoint_path(_cell([1, 2]))
        b = runner.stacked_checkpoint_path(_cell([1, 3]))
        c = runner.stacked_checkpoint_path(_cell([1, 2]))
        assert a != b and a == c
        assert a.name.endswith(".stacked.ckpt.npz")
        # No stray checkpoint survives a completed stacked fit.
        runner.run_stacked(_cell([1, 2]))
        assert not list(tmp_path.glob("*.stacked.ckpt.npz"))


# ----------------------------------------------------------------------
# Sweep integration: stack_seeds collapses grid cells
# ----------------------------------------------------------------------
class TestSweepStacked:
    def test_stack_cells_groups_by_everything_but_seed(self):
        gae = _cell([1, 2, 3])
        er = [ExperimentSpec(model="er", dataset=SMALLEST, profile="smoke",
                             seed=s) for s in (1, 2)]
        single = _cell([9], overrides={"epochs": 4})
        cells = stack_cells(gae + er + single)
        assert [len(c) for c in cells] == [3, 2]   # single-seed cell dropped
        assert cells[0] == gae and cells[1] == er

    def test_stacked_sweep_matches_per_seed_sweep(self, tmp_path):
        """`--stack-seeds` is invisible in the artifacts: byte-identical
        graphs under identical cache keys, with zero worker fits for the
        stacked cell (the pre-pass warmed the shared cache)."""
        specs = grid("gae", SMALLEST, profiles="smoke", seeds=[1, 2])
        assert len(specs) == 2

        plain = run_sweep(specs, tmp_path / "q1", tmp_path / "c1",
                          workers=1, timeout=300)
        assert plain.completed == 2 and len(plain.fits) == 2

        stacked = run_sweep(specs, tmp_path / "q2", tmp_path / "c2",
                            workers=1, timeout=300, stack_seeds=True)
        assert stacked.completed == 2
        assert not stacked.fits  # workers replayed the warmed cache

        for got, want in zip(stacked.results, plain.results):
            assert (got.generated.adjacency
                    != want.generated.adjacency).nnz == 0
        assert sorted(p.name for p in (tmp_path / "c1").iterdir()) \
            == sorted(p.name for p in (tmp_path / "c2").iterdir())

    def test_stacked_sweep_leaves_ineligible_cells_to_the_fleet(
            self, tmp_path):
        specs = grid("er", SMALLEST, profiles="smoke", seeds=[1, 2])
        report = run_sweep(specs, tmp_path / "q", tmp_path / "cache",
                           workers=1, timeout=300, stack_seeds=True)
        assert report.completed == 2
        assert len(report.fits) == 2  # ER cells still fit in the fleet
