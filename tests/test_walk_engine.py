"""Tests for the batched walk engine: structural validity, start
batching, and statistical equivalence against the scalar reference
walkers (`uniform_random_walk` / `node2vec_walk`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (Graph, WalkEngine, node2vec_walk, sample_walks,
                         uniform_random_walk)


def _walks_are_valid(graph: Graph, walks: np.ndarray) -> bool:
    for walk in walks:
        for a, b in zip(walk[:-1], walk[1:]):
            if a != b and not graph.has_edge(int(a), int(b)):
                return False
    return True


def _pair_distribution(walks: np.ndarray) -> dict[tuple[int, int], float]:
    """Empirical distribution of the (w1, w2) transition pair."""
    pairs, counts = np.unique(walks[:, 1:3], axis=0, return_counts=True)
    total = counts.sum()
    return {tuple(p): c / total for p, c in zip(pairs.tolist(), counts)}


def _total_variation(dist_a: dict, dist_b: dict) -> float:
    keys = set(dist_a) | set(dist_b)
    return 0.5 * sum(abs(dist_a.get(k, 0.0) - dist_b.get(k, 0.0))
                     for k in keys)


class TestEngineBasics:
    def test_cached_per_graph(self, two_cliques_graph):
        assert two_cliques_graph.walk_engine() is two_cliques_graph.walk_engine()

    def test_walks_shape_and_starts(self, two_cliques_graph, rng):
        engine = two_cliques_graph.walk_engine()
        starts = np.array([0, 3, 7, 4])
        walks = engine.node2vec_walks(starts, 6, rng)
        assert walks.shape == (4, 6)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_length_one(self, triangle_graph, rng):
        walks = triangle_graph.walk_engine().node2vec_walks(
            np.array([1, 2]), 1, rng)
        np.testing.assert_array_equal(walks, [[1], [2]])

    def test_invalid_pq_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            triangle_graph.walk_engine().node2vec_walks(
                np.array([0]), 5, rng, p=0.0)

    def test_invalid_length_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            triangle_graph.walk_engine().uniform_walks(np.array([0]), 0, rng)

    def test_walks_num_validation(self, triangle_graph, rng):
        engine = triangle_graph.walk_engine()
        with pytest.raises(ValueError):
            engine.walks(0, 4, rng)
        with pytest.raises(ValueError):
            engine.walks(3, 4, rng, starts=np.array([0]))


class TestStructuralValidity:
    def test_uniform_follows_edges(self, two_cliques_graph, rng):
        engine = two_cliques_graph.walk_engine()
        starts = rng.integers(8, size=64)
        assert _walks_are_valid(two_cliques_graph,
                                engine.uniform_walks(starts, 10, rng))

    @pytest.mark.parametrize("p,q", [(1.0, 1.0), (0.5, 2.0), (4.0, 0.25)])
    def test_biased_follows_edges(self, two_cliques_graph, rng, p, q):
        engine = two_cliques_graph.walk_engine()
        starts = rng.integers(8, size=64)
        assert _walks_are_valid(two_cliques_graph,
                                engine.node2vec_walks(starts, 10, rng,
                                                      p=p, q=q))

    def test_isolated_start_stalls(self, rng):
        g = Graph.from_edges(4, [(0, 1)])
        engine = g.walk_engine()
        walks = engine.node2vec_walks(np.array([2, 3, 2]), 6, rng,
                                      p=0.5, q=2.0)
        np.testing.assert_array_equal(walks, np.full((3, 6),
                                                     [[2], [3], [2]]))

    def test_exact_fallback_matches_semantics(self, two_cliques_graph, rng):
        """With a zero rejection budget every biased step goes through the
        exact batched fallback; walks must stay valid and biased."""
        engine = WalkEngine(two_cliques_graph, max_rejection_rounds=0)
        starts = rng.integers(8, size=32)
        walks = engine.node2vec_walks(starts, 8, rng, p=1e-3, q=1.0)
        assert _walks_are_valid(two_cliques_graph, walks)
        # Tiny p: the third node should usually return to the first.
        returns = (walks[:, 2] == walks[:, 0]).mean()
        assert returns > 0.5

    def test_exact_fallback_batched_matches_scalar_reference(self):
        """The batched straggler step is pinned to the per-walk reference.

        Both paths draw one uniform per pending walk in the same RNG
        order (``rng.random(n)`` yields the same doubles as ``n`` scalar
        calls) and build bit-identical per-row CDFs, so with a zero
        rejection budget — every biased step a straggler — seeded walks
        must match exactly, not just statistically.
        """
        from repro.graph import erdos_renyi

        graph = erdos_renyi(60, 0.15, np.random.default_rng(0))
        batched = WalkEngine(graph, max_rejection_rounds=0)
        scalar = WalkEngine(graph, max_rejection_rounds=0)
        scalar._exact_biased_steps = scalar._exact_biased_steps_scalar
        starts = np.arange(40)
        for p, q in [(0.02, 30.0), (5.0, 0.1)]:
            got = batched.node2vec_walks(starts, 15,
                                         np.random.default_rng(9), p=p, q=q)
            want = scalar.node2vec_walks(starts, 15,
                                         np.random.default_rng(9), p=p, q=q)
            np.testing.assert_array_equal(got, want)

    def test_scalar_rng_draws_match_batched_draw(self):
        """The RNG contract the straggler parity relies on."""
        a = np.random.default_rng(123).random(16)
        gen = np.random.default_rng(123)
        b = np.array([gen.random() for _ in range(16)])
        np.testing.assert_array_equal(a, b)

    def test_exact_fallback_cell_budget_chunking_preserves_output(self):
        """A tiny cell budget forces many small batches; the chunking
        must be invisible — same walks as one unbounded rectangle."""
        from repro.graph import erdos_renyi

        graph = erdos_renyi(60, 0.15, np.random.default_rng(0))
        wide = WalkEngine(graph, max_rejection_rounds=0)
        narrow = WalkEngine(graph, max_rejection_rounds=0)
        narrow._EXACT_CELL_BUDGET = 16  # a few walks per batch
        starts = np.arange(40)
        a = wide.node2vec_walks(starts, 12, np.random.default_rng(4),
                                p=0.05, q=10.0)
        b = narrow.node2vec_walks(starts, 12, np.random.default_rng(4),
                                  p=0.05, q=10.0)
        np.testing.assert_array_equal(a, b)


class TestBiasStatistics:
    def test_low_p_returns_often(self, path_graph, rng):
        engine = path_graph.walk_engine()
        starts = np.full(300, 2)
        walks = engine.node2vec_walks(starts, 4, rng, p=1e-4, q=1.0)
        assert (walks[:, 2] == walks[:, 0]).mean() > 0.7

    def test_high_p_explores(self, rng):
        cycle = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        walks = cycle.walk_engine().node2vec_walks(np.zeros(50, np.int64),
                                                   4, rng, p=1e6, q=1.0)
        assert (walks[:, 2] != walks[:, 0]).all()

    def test_matches_scalar_transition_statistics(self, two_cliques_graph):
        """Batched and scalar node2vec walks from the same start must have
        matching (w1, w2) transition-pair distributions."""
        p, q, trials = 0.5, 2.0, 4000
        rng_scalar = np.random.default_rng(7)
        scalar = np.stack([node2vec_walk(two_cliques_graph, 3, 3,
                                         rng_scalar, p=p, q=q)
                           for _ in range(trials)])
        rng_batch = np.random.default_rng(8)
        batched = two_cliques_graph.walk_engine().node2vec_walks(
            np.full(trials, 3), 3, rng_batch, p=p, q=q)
        tv = _total_variation(_pair_distribution(scalar),
                              _pair_distribution(batched))
        assert tv < 0.05

    def test_matches_scalar_uniform_statistics(self, two_cliques_graph):
        trials = 4000
        rng_scalar = np.random.default_rng(9)
        scalar = np.stack([uniform_random_walk(two_cliques_graph, 3, 3,
                                               rng_scalar)
                           for _ in range(trials)])
        rng_batch = np.random.default_rng(10)
        batched = two_cliques_graph.walk_engine().uniform_walks(
            np.full(trials, 3), 3, rng_batch)
        tv = _total_variation(_pair_distribution(scalar),
                              _pair_distribution(batched))
        assert tv < 0.05


class TestStartBatching:
    def test_degree_weighted_star(self, rng):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        starts = star.walk_engine().sample_starts(400, rng)
        hub_fraction = (starts == 0).mean()
        assert 0.35 < hub_fraction < 0.65  # hub has half the volume

    def test_uniform_mode(self, rng):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        starts = star.walk_engine().sample_starts(500, rng,
                                                  weight="uniform")
        assert (starts == 0).mean() < 0.35

    def test_edgeless_graph_falls_back_to_uniform(self, rng):
        g = Graph.from_edges(4, [])
        starts = g.walk_engine().sample_starts(100, rng)
        assert starts.min() >= 0 and starts.max() < 4

    def test_invalid_weight_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            triangle_graph.walk_engine().sample_starts(5, rng, weight="bad")

    def test_class_batched_starts_membership(self, rng):
        pools = [np.array([0, 1]), np.array([5]), np.array([7, 8, 9])]
        starts = WalkEngine.class_batched_starts(pools, 600, rng)
        flat = set(np.concatenate(pools).tolist())
        assert set(starts.tolist()).issubset(flat)
        # Classes are chosen uniformly: each pool gets ~1/3 of the walks.
        for pool in pools:
            frac = np.isin(starts, pool).mean()
            assert 0.2 < frac < 0.47

    def test_class_batched_starts_empty_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            WalkEngine.class_batched_starts(
                [np.array([0]), np.empty(0, np.int64)], 5, rng)


class TestHasEdgesBatch:
    def test_matches_scalar_has_edge(self, two_cliques_graph, rng):
        engine = two_cliques_graph.walk_engine()
        u = rng.integers(8, size=200)
        v = rng.integers(8, size=200)
        expected = np.array([two_cliques_graph.has_edge(int(a), int(b))
                             for a, b in zip(u, v)])
        np.testing.assert_array_equal(engine.has_edges(u, v), expected)

    def test_last_key_boundary(self):
        """Querying a pair past the last edge key must not index out of
        bounds."""
        g = Graph.from_edges(3, [(0, 1)])
        engine = g.walk_engine()
        out = engine.has_edges(np.array([2, 1]), np.array([2, 0]))
        np.testing.assert_array_equal(out, [False, True])


class TestSampleWalksIntegration:
    def test_sample_walks_uses_engine(self, two_cliques_graph, rng):
        walks = sample_walks(two_cliques_graph, 12, 6, rng)
        assert walks.shape == (12, 6)
        assert _walks_are_valid(two_cliques_graph, walks)

    def test_explicit_starts_respected(self, two_cliques_graph, rng):
        starts = np.array([1, 5, 7])
        walks = sample_walks(two_cliques_graph, 3, 4, rng, starts=starts)
        np.testing.assert_array_equal(walks[:, 0], starts)
