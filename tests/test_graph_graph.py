"""Tests for the Graph data structure and its walk-matrix algebra."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self, triangle_graph):
        assert triangle_graph.num_nodes == 3
        assert triangle_graph.num_edges == 3

    def test_from_edges_deduplicates(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_stripped(self):
        g = Graph(sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]])))
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_asymmetric_rejected(self):
        mat = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError):
            Graph(mat)

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_empty_graph(self):
        g = Graph.from_edges(4, [])
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_from_numpy(self):
        dense = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        g = Graph.from_numpy(dense)
        assert g.num_edges == 2

    def test_weights_binarised(self):
        mat = sp.csr_matrix(np.array([[0.0, 3.0], [3.0, 0.0]]))
        g = Graph(mat)
        assert g.adjacency.max() == 1.0

    def test_equality(self, triangle_graph):
        other = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert triangle_graph == other
        assert triangle_graph != Graph.from_edges(3, [(0, 1)])

    def test_duplicate_structural_entries_merged(self):
        # A hand-built CSR can carry the same (row, col) slot twice;
        # scipy keeps both until sum_duplicates.  Construction must
        # canonicalise, or degrees and has_edge double-count.
        indptr = np.array([0, 2, 3])
        indices = np.array([1, 1, 0])
        data = np.ones(3)
        g = Graph(sp.csr_matrix((data, indices, indptr), shape=(2, 2)))
        assert g.num_edges == 1
        np.testing.assert_array_equal(g.degrees, [1, 1])
        assert g.adjacency.nnz == 2


class TestAccessors:
    def test_degrees(self, path_graph):
        np.testing.assert_array_equal(path_graph.degrees, [1, 2, 2, 2, 1])

    def test_neighbors_sorted(self, two_cliques_graph):
        np.testing.assert_array_equal(two_cliques_graph.neighbors(0),
                                      [1, 2, 3])

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(0, 2)

    def test_has_edge_high_degree_hub(self, rng):
        """Binary-search membership must agree with the adjacency on a
        hub with many sorted neighbors, including both boundary ids."""
        star = Graph.from_edges(200, [(0, i) for i in range(1, 200)])
        assert star.has_edge(0, 1) and star.has_edge(0, 199)
        assert star.has_edge(199, 0)
        assert not star.has_edge(1, 199)  # past leaf 1's only neighbor
        assert not star.has_edge(1, 2)

    def test_has_edge_isolated_node(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert not g.has_edge(2, 0)
        assert not g.has_edge(0, 2)

    def test_has_edge_returns_bool(self, path_graph):
        assert isinstance(path_graph.has_edge(0, 1), bool)
        assert isinstance(path_graph.has_edge(0, 4), bool)

    def test_edges_each_once_with_u_less_v(self, triangle_graph):
        edges = triangle_graph.edges()
        assert edges.shape == (3, 2)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_density(self, triangle_graph):
        assert triangle_graph.density() == pytest.approx(1.0)

    def test_density_tiny(self):
        assert Graph.from_edges(1, []).density() == 0.0

    def test_repr(self, triangle_graph):
        assert repr(triangle_graph) == "Graph(n=3, m=3)"

    def test_to_networkx_matches(self, two_cliques_graph):
        nxg = two_cliques_graph.to_networkx()
        assert nxg.number_of_nodes() == two_cliques_graph.num_nodes
        assert nxg.number_of_edges() == two_cliques_graph.num_edges


class TestTransitionMatrix:
    def test_column_stochastic(self, two_cliques_graph):
        m = two_cliques_graph.transition_matrix()
        np.testing.assert_allclose(np.asarray(m.sum(axis=0)).ravel(), 1.0)

    def test_lazy_self_loop_half(self, path_graph):
        m = path_graph.transition_matrix().toarray()
        np.testing.assert_allclose(np.diag(m), 0.5)

    def test_isolated_node_self_loops(self):
        g = Graph.from_edges(3, [(0, 1)])
        m = g.transition_matrix().toarray()
        assert m[2, 2] == 1.0
        np.testing.assert_allclose(m.sum(axis=0), 1.0)

    def test_many_isolated_nodes_stay_csr_and_stochastic(self):
        """The isolated-node patch is a sparse diagonal, not a Python
        loop: every isolated column gets a full self-loop and the result
        stays CSR."""
        import scipy.sparse as sp

        g = Graph.from_edges(8, [(0, 1), (2, 3)])
        m = g.transition_matrix()
        assert isinstance(m, sp.csr_matrix)
        dense = m.toarray()
        np.testing.assert_allclose(dense.sum(axis=0), 1.0)
        for v in (4, 5, 6, 7):
            assert dense[v, v] == 1.0
        # Non-isolated nodes keep the lazy 1/2 self-loop.
        np.testing.assert_allclose(np.diag(dense)[:4], 0.5)

    def test_matches_definition(self, triangle_graph):
        a = triangle_graph.adjacency.toarray()
        d_inv = np.diag(1.0 / triangle_graph.degrees)
        expected = (a @ d_inv + np.eye(3)) / 2.0
        np.testing.assert_allclose(
            triangle_graph.transition_matrix().toarray(), expected)


class TestCutsAndConductance:
    def test_volume(self, two_cliques_graph):
        assert two_cliques_graph.volume([0, 1, 2, 3]) == 13  # 4*3 + bridge

    def test_cut_size_bridge(self, two_cliques_graph):
        assert two_cliques_graph.cut_size([0, 1, 2, 3]) == 1

    def test_conductance_bridge(self, two_cliques_graph):
        phi = two_cliques_graph.conductance([0, 1, 2, 3])
        assert phi == pytest.approx(1.0 / 13.0)

    def test_conductance_symmetric_in_complement(self, two_cliques_graph):
        s = [0, 1, 2, 3]
        comp = [4, 5, 6, 7]
        assert two_cliques_graph.conductance(s) == pytest.approx(
            two_cliques_graph.conductance(comp))

    def test_conductance_degenerate_sets(self, triangle_graph):
        assert triangle_graph.conductance([]) == 1.0
        assert triangle_graph.conductance([0, 1, 2]) == 1.0

    def test_conductance_isolated_set(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert g.conductance([2]) == 1.0


class TestSubgraphs:
    def test_subgraph_compacts_ids(self, two_cliques_graph):
        sub = two_cliques_graph.subgraph([4, 5, 6, 7])
        assert sub.num_nodes == 4
        assert sub.num_edges == 6

    def test_subgraph_drops_external_edges(self, path_graph):
        sub = path_graph.subgraph([0, 2, 4])
        assert sub.num_edges == 0

    def test_ego_network_includes_neighbors(self, path_graph):
        sub, nodes = path_graph.ego_network([2])
        np.testing.assert_array_equal(nodes, [1, 2, 3])
        assert sub.num_edges == 2

    def test_ego_network_multiple_anchors(self, two_cliques_graph):
        sub, nodes = two_cliques_graph.ego_network([3, 4])
        assert set(nodes.tolist()) == set(range(8))

    def test_ego_network_isolated_anchor(self):
        g = Graph.from_edges(3, [(0, 1)])
        sub, nodes = g.ego_network([2])
        assert sub.num_nodes == 1
        assert sub.num_edges == 0

    def test_subgraph_rejects_duplicate_nodes(self, path_graph):
        with pytest.raises(ValueError, match="unique"):
            path_graph.subgraph([0, 1, 1])

    def test_subgraph_csr_sorted_and_deduplicated(self,
                                                  two_cliques_graph):
        # fancy-indexed scipy slices can leave per-row indices unsorted;
        # downstream binary searches (walk engines, has_edge) need the
        # canonical form
        sub = two_cliques_graph.subgraph([3, 0, 2, 1])
        adj = sub.adjacency
        for lo, hi in zip(adj.indptr[:-1], adj.indptr[1:]):
            row = adj.indices[lo:hi]
            assert np.array_equal(row, np.sort(row))
            assert np.unique(row).size == row.size
        assert sub.num_edges == 6  # clique structure is order-invariant
