"""Tests for the sharded CSR graph store and out-of-core walk engine.

Covers the ingest pipeline (streaming binning, dedup/self-loop
semantics, resume/overwrite), the ``ShardedGraph`` read surface
(manifest, LRU residency, adjacency queries, ``to_graph`` round-trip),
the ``ShardedWalkEngine`` RNG-stream contract (byte-identity against
:class:`~repro.graph.WalkEngine` where the contract promises it,
determinism where it doesn't), and integration with the walk-based
model stack and the CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.graph import (Graph, ShardedGraph, ShardedWalkEngine,
                         WalkEngine, ingest_edge_file, ingest_edge_stream,
                         ingest_graph, ring_of_chords, sample_walks,
                         synthetic_edge_stream)


def _ring(num_nodes: int) -> Graph:
    return Graph.from_edges(
        num_nodes, [(i, (i + 1) % num_nodes) for i in range(num_nodes)])


@pytest.fixture
def chord_graph() -> Graph:
    return ring_of_chords(400, 700, seed=13)


@pytest.fixture
def sharded4(chord_graph, tmp_path) -> ShardedGraph:
    return ingest_graph(chord_graph, tmp_path / "s4", num_shards=4)


# ----------------------------------------------------------------------
# Ingest
# ----------------------------------------------------------------------
class TestIngest:
    def test_manifest_matches_source_graph(self, chord_graph, sharded4):
        stats = sharded4.stats()
        assert sharded4.num_nodes == chord_graph.num_nodes
        assert sharded4.num_edges == chord_graph.num_edges
        assert stats["num_shards"] == 4
        assert stats["shard_starts"][0] == 0
        assert stats["shard_starts"][-1] == chord_graph.num_nodes
        # directed slots per shard sum to twice the undirected count
        assert sum(stats["shard_edges"]) == 2 * chord_graph.num_edges
        assert stats["max_degree"] == int(np.max(chord_graph.degrees))

    def test_degrees_match(self, chord_graph, sharded4):
        np.testing.assert_array_equal(np.asarray(sharded4.degrees),
                                      chord_graph.degrees)

    def test_degree_histogram_counts_every_node(self, sharded4):
        hist = sharded4.stats()["degree_histogram"]
        assert sum(hist["counts"]) == sharded4.num_nodes
        assert hist["bins"][0] == "0"
        assert len(hist["bins"]) == len(hist["counts"])

    def test_dedup_and_self_loop_semantics(self, tmp_path):
        # duplicates (both orientations) and self-loops collapse away,
        # matching Graph construction semantics
        chunks = [np.array([[0, 1], [1, 0], [0, 1], [2, 2], [1, 2]])]
        sharded = ingest_edge_stream(chunks, 3, tmp_path / "s")
        assert sharded.num_edges == 2
        assert sharded.to_graph() == Graph.from_edges(3, [(0, 1), (1, 2)])

    def test_indices_sorted_per_row(self, sharded4):
        for i in range(sharded4.num_shards):
            shard = sharded4.shard(i)
            indptr = np.asarray(shard.indptr)
            indices = np.asarray(shard.indices)
            for lo, hi in zip(indptr[:-1], indptr[1:]):
                row = indices[lo:hi]
                assert np.array_equal(row, np.sort(row))
                assert np.unique(row).size == row.size

    def test_completed_dir_refused_without_overwrite(self, tmp_path):
        g = _ring(10)
        ingest_graph(g, tmp_path / "s", num_shards=2)
        with pytest.raises(FileExistsError):
            ingest_graph(g, tmp_path / "s", num_shards=2)
        again = ingest_graph(g, tmp_path / "s", num_shards=3,
                             overwrite=True)
        assert again.num_shards == 3

    def test_interrupted_ingest_resumes_without_flag(self, tmp_path):
        # leftovers without a manifest (spills, stale shards) are not a
        # completed ingest — re-running needs no overwrite flag
        out = tmp_path / "s"
        out.mkdir()
        (out / "spill_00000.bin").write_bytes(b"\x00" * 16)
        (out / "shard_00000.npz").write_bytes(b"junk")
        sharded = ingest_graph(_ring(10), out, num_shards=2)
        assert sharded.num_edges == 10
        assert not (out / "spill_00000.bin").exists()

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ingest_graph(_ring(6), tmp_path / "a", num_shards=2,
                         nodes_per_shard=3)
        with pytest.raises(ValueError, match="more shards"):
            ingest_graph(_ring(4), tmp_path / "b", num_shards=9)
        with pytest.raises(ValueError, match="out of range"):
            ingest_edge_stream([np.array([[0, 5]])], 3, tmp_path / "c")
        with pytest.raises(ValueError, match=r"shape \(k, 2\)"):
            ingest_edge_stream([np.arange(6).reshape(2, 3)], 9,
                               tmp_path / "d")

    def test_nodes_per_shard_sizing(self, tmp_path):
        sharded = ingest_graph(_ring(10), tmp_path / "s",
                               nodes_per_shard=3)
        assert sharded.num_shards == 4  # ceil(10 / 3)

    def test_edgeless_graph(self, tmp_path):
        sharded = ingest_edge_stream([], 5, tmp_path / "s", num_shards=2)
        assert sharded.num_edges == 0
        walks = sharded.walk_engine().uniform_walks(
            np.array([0, 4]), 4, np.random.default_rng(0))
        # isolated nodes stall in place
        np.testing.assert_array_equal(walks, [[0] * 4, [4] * 4])

    def test_ingest_text_edge_file(self, tmp_path):
        listing = tmp_path / "edges.txt"
        listing.write_text("# comment line\n0 1\n1 2\n2 3\n3 0\n")
        sharded = ingest_edge_file(listing, tmp_path / "s", num_shards=2)
        assert sharded.num_nodes == 4  # discovered as max id + 1
        assert sharded.to_graph() == Graph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_ingest_graph_npz_archive(self, chord_graph, tmp_path):
        from repro.core.serialization import save_graph

        save_graph(chord_graph, tmp_path / "g.npz")
        sharded = ingest_edge_file(tmp_path / "g.npz", tmp_path / "s",
                                   num_shards=3)
        assert sharded.to_graph() == chord_graph

    def test_ingest_rejects_non_graph_npz(self, tmp_path):
        np.savez(tmp_path / "junk.npz", x=np.arange(3))
        with pytest.raises(ValueError, match="not a graph archive"):
            ingest_edge_file(tmp_path / "junk.npz", tmp_path / "s")


# ----------------------------------------------------------------------
# Read side
# ----------------------------------------------------------------------
class TestShardedGraph:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardedGraph(tmp_path)

    def test_unknown_format_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "bogus"}')
        with pytest.raises(ValueError, match="unsupported"):
            ShardedGraph(tmp_path)

    def test_shard_of_matches_boundaries(self, sharded4):
        nodes = np.arange(sharded4.num_nodes)
        expected = np.searchsorted(sharded4.shard_starts[1:-1], nodes,
                                   side="right")
        np.testing.assert_array_equal(sharded4.shard_of(nodes), expected)

    def test_lru_bounds_residency(self, chord_graph, tmp_path):
        sharded = ingest_graph(chord_graph, tmp_path / "s", num_shards=8)
        sharded.max_resident = 2
        for i in range(8):
            sharded.shard(i)
        assert len(sharded.resident_shards()) == 2
        loads = sharded.shard_loads
        sharded.shard(7)  # hot shard: no new load
        assert sharded.shard_loads == loads

    def test_eviction_drops_edge_keys(self, chord_graph, tmp_path):
        sharded = ingest_graph(chord_graph, tmp_path / "s", num_shards=4)
        sharded.max_resident = 1
        first = sharded.shard(0)
        first.edge_keys  # materialise the lazy table
        sharded.shard(1)  # evicts shard 0
        assert first._edge_keys is None

    def test_neighbors_match_graph(self, chord_graph, sharded4):
        for node in [0, 7, 123, 399]:
            np.testing.assert_array_equal(
                sharded4.neighbors(node), chord_graph.neighbors(node))

    def test_has_edges_matches_graph(self, chord_graph, sharded4):
        rng = np.random.default_rng(5)
        u = rng.integers(400, size=300)
        v = rng.integers(400, size=300)
        expected = np.array([chord_graph.has_edge(int(a), int(b))
                             for a, b in zip(u, v)])
        np.testing.assert_array_equal(sharded4.has_edges(u, v), expected)
        assert sharded4.has_edge(0, 1) == chord_graph.has_edge(0, 1)

    def test_to_graph_round_trip(self, chord_graph, sharded4):
        assert sharded4.to_graph() == chord_graph

    def test_walk_engine_cached(self, sharded4):
        assert sharded4.walk_engine() is sharded4.walk_engine()


# ----------------------------------------------------------------------
# Walk engine: RNG-stream contract
# ----------------------------------------------------------------------
class TestWalkContract:
    @pytest.mark.parametrize("p,q", [(1.0, 1.0), (0.25, 4.0), (4.0, 0.5)])
    def test_single_shard_byte_identity(self, chord_graph, tmp_path,
                                        p, q):
        sharded = ingest_graph(chord_graph, tmp_path / "s", num_shards=1)
        expected = WalkEngine(chord_graph).walks(
            256, 10, np.random.default_rng(42), p=p, q=q)
        actual = ShardedWalkEngine(sharded).walks(
            256, 10, np.random.default_rng(42), p=p, q=q)
        np.testing.assert_array_equal(expected, actual)

    def test_uniform_walks_byte_identical_any_shard_count(
            self, chord_graph, tmp_path):
        # first-order draws never depend on the bucketing
        expected = WalkEngine(chord_graph).walks(
            300, 12, np.random.default_rng(9))
        for shards in (2, 5, 8):
            sharded = ingest_graph(chord_graph,
                                   tmp_path / f"s{shards}",
                                   num_shards=shards)
            actual = ShardedWalkEngine(sharded).walks(
                300, 12, np.random.default_rng(9))
            np.testing.assert_array_equal(expected, actual)

    def test_starts_byte_identical_any_shard_count(self, chord_graph,
                                                   sharded4):
        expected = WalkEngine(chord_graph).sample_starts(
            500, np.random.default_rng(1))
        actual = ShardedWalkEngine(sharded4).sample_starts(
            500, np.random.default_rng(1))
        np.testing.assert_array_equal(expected, actual)

    def test_multi_shard_biased_deterministic(self, sharded4):
        kwargs = dict(p=0.5, q=2.0)
        a = ShardedWalkEngine(sharded4).walks(
            200, 10, np.random.default_rng(3), **kwargs)
        b = ShardedWalkEngine(sharded4).walks(
            200, 10, np.random.default_rng(3), **kwargs)
        np.testing.assert_array_equal(a, b)

    def test_multi_shard_biased_steps_are_edges(self, chord_graph,
                                                sharded4):
        walks = ShardedWalkEngine(sharded4).walks(
            150, 10, np.random.default_rng(8), p=0.25, q=4.0)
        for t in range(1, walks.shape[1]):
            u, v = walks[:, t - 1], walks[:, t]
            moved = u != v
            assert sharded4.has_edges(u[moved], v[moved]).all()
            assert all(chord_graph.has_edge(int(a), int(b))
                       for a, b in zip(u[moved], v[moved]))

    def test_cross_shard_heavy_ring(self, tmp_path):
        # one node per shard: every single step crosses a shard
        # boundary, the worst case for the frontier router
        ring = _ring(12)
        sharded = ingest_graph(ring, tmp_path / "s", nodes_per_shard=1)
        assert sharded.num_shards == 12
        sharded.max_resident = 2
        expected = WalkEngine(ring).walks(64, 8, np.random.default_rng(2))
        actual = ShardedWalkEngine(sharded).walks(
            64, 8, np.random.default_rng(2))
        np.testing.assert_array_equal(expected, actual)
        assert len(sharded.resident_shards()) <= 2

    def test_empty_shard_range(self, tmp_path):
        # nodes 8..15 are isolated, so shard 1 of 2 holds no edges
        g = Graph.from_edges(16, [(i, i + 1) for i in range(7)])
        sharded = ingest_graph(g, tmp_path / "s", num_shards=2)
        assert sharded.stats()["shard_edges"][1] == 0
        walks = ShardedWalkEngine(sharded).uniform_walks(
            np.array([3, 12]), 6, np.random.default_rng(0))
        assert walks[1].tolist() == [12] * 6  # isolated: stalls
        expected = WalkEngine(g).uniform_walks(
            np.array([3, 12]), 6, np.random.default_rng(0))
        np.testing.assert_array_equal(walks, expected)

    def test_bounded_residency_during_walks(self, chord_graph, tmp_path):
        sharded = ingest_graph(chord_graph, tmp_path / "s", num_shards=8)
        sharded.max_resident = 3
        ShardedWalkEngine(sharded).walks(200, 10,
                                         np.random.default_rng(4))
        assert len(sharded.resident_shards()) <= 3


# ----------------------------------------------------------------------
# Integration: walk consumers and the CLI
# ----------------------------------------------------------------------
class TestIntegration:
    def test_sample_walks_accepts_sharded_graph(self, chord_graph,
                                                sharded4):
        expected = sample_walks(chord_graph, 100, 8,
                                np.random.default_rng(6))
        actual = sample_walks(sharded4, 100, 8,
                              np.random.default_rng(6))
        np.testing.assert_array_equal(expected, actual)

    def test_node2vec_embedding_on_sharded_graph(self, sharded4):
        from repro.embedding import Node2VecConfig, node2vec_embedding

        config = Node2VecConfig(dim=8, walks_per_node=1, walk_length=4,
                                epochs=1)
        vectors = node2vec_embedding(sharded4, config,
                                     np.random.default_rng(0))
        assert vectors.shape == (sharded4.num_nodes, 8)
        assert np.isfinite(vectors).all()

    def test_cli_ingest_then_stats(self, tmp_path, capsys):
        listing = tmp_path / "edges.txt"
        listing.write_text("0 1\n1 2\n2 0\n")
        out_dir = tmp_path / "shards"
        assert main(["ingest", str(listing), str(out_dir),
                     "--num-shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "ingested 3 edges over 3 nodes into 2 shard(s)" in out
        assert main(["graph", "stats", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "nodes:  3" in out
        assert "edges:  3" in out
        assert "max degree: 2" in out

    def test_cli_ingest_refuses_completed_dir(self, tmp_path, capsys):
        listing = tmp_path / "edges.txt"
        listing.write_text("0 1\n")
        out_dir = tmp_path / "shards"
        assert main(["ingest", str(listing), str(out_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="overwrite"):
            main(["ingest", str(listing), str(out_dir)])
        assert main(["ingest", str(listing), str(out_dir),
                     "--overwrite"]) == 0

    def test_cli_stats_rejects_non_shard_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["graph", "stats", str(tmp_path)])

    def test_synthetic_stream_matches_in_memory_twin(self, tmp_path):
        sharded = ingest_edge_stream(
            synthetic_edge_stream(200, 300, seed=5), 200,
            tmp_path / "s", num_shards=3)
        assert sharded.to_graph() == ring_of_chords(200, 300, seed=5)
