"""Tests for the observability subsystem: registry, tracing, wiring."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import ExperimentSpec, JobQueue, Runner, Worker
from repro.models.walk_lm import TransformerWalkModel
from repro.obs import trace
from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, get_registry)
from repro.serve import ContinuousBatcher
from repro.train import MetricsCallback, Trainer

SMALLEST = "EMAIL"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tracing is process-global state; never leak it across tests."""
    trace.disable()
    yield
    trace.disable()


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total").inc(**{"bad-label": 1})

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("req_total")
        counter.inc(route="/a")
        counter.inc(2, route="/b")
        assert counter.value(route="/a") == 1
        assert counter.value(route="/b") == 2
        assert counter.total() == 3

    def test_gauge_set_max_and_function(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value() == 3
        live = MetricsRegistry().gauge("live")
        live.set_function(lambda: 42.0)
        assert live.value() == 42.0

    def test_thread_safety_exact_totals(self):
        """12 hammering threads, every increment lands — no lost updates."""
        reg = MetricsRegistry()
        counter = reg.counter("hits_total")
        hist = reg.histogram("lat", buckets=(0.5,))
        nthreads, per_thread = 12, 5000
        barrier = threading.Barrier(nthreads)

        def hammer(i):
            barrier.wait()
            for _ in range(per_thread):
                counter.inc(worker=i % 3)
                hist.observe(0.25)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total() == nthreads * per_thread
        assert hist.count() == nthreads * per_thread


class TestHistogram:
    def test_bucket_boundary_is_inclusive(self):
        """``le`` is <= : a value exactly on a bound lands in its bucket."""
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.1)       # exactly the first bound
        hist.observe(1.0)       # exactly the last finite bound
        hist.observe(1.0000001)  # just past it -> overflow
        lines = hist.expositions()
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines

    def test_percentiles_interpolate(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        assert hist.percentile(50) == pytest.approx(1.0)
        assert hist.percentile(99) == pytest.approx(1.98)
        # overflow observations report the largest finite bound
        hist2 = MetricsRegistry().histogram("h2", buckets=(1.0,))
        hist2.observe(100.0)
        assert hist2.percentile(99) == 1.0

    def test_empty_and_invalid(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(50) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("dup", buckets=(1.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_timer_context(self):
        hist = MetricsRegistry().histogram("t")
        with hist.time(op="x"):
            pass
        assert hist.count(op="x") == 1


class TestPrometheusExposition:
    def test_golden_render(self):
        """Byte-exact exposition of a small, fully-known registry."""
        reg = MetricsRegistry()
        counter = reg.counter("requests_total", "Total requests")
        counter.inc(route="/a")
        counter.inc(2, route="/b")
        reg.gauge("queue_depth", "Depth").set(3)
        hist = reg.histogram("latency_seconds", "Latency",
                             buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        expected = "\n".join([
            "# HELP latency_seconds Latency",
            "# TYPE latency_seconds histogram",
            'latency_seconds_bucket{le="0.1"} 1',
            'latency_seconds_bucket{le="1"} 2',
            'latency_seconds_bucket{le="+Inf"} 3',
            "latency_seconds_sum 5.55",
            "latency_seconds_count 3",
            "# HELP queue_depth Depth",
            "# TYPE queue_depth gauge",
            "queue_depth 3",
            "# HELP requests_total Total requests",
            "# TYPE requests_total counter",
            'requests_total{route="/a"} 1',
            'requests_total{route="/b"} 2',
        ]) + "\n"
        assert reg.render_prometheus() == expected

    def test_label_values_escaped(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(path='a"b\\c\nd')
        line = counter.expositions()[0]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'


class TestSnapshots:
    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("plain_total").inc(5)
        reg.counter("labeled_total").inc(state="a")
        hist = reg.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        snap = reg.snapshot()
        assert snap["plain_total"] == {"kind": "counter", "value": 5.0}
        assert snap["labeled_total"]["value"] == {'{"state": "a"}': 1.0}
        assert snap["h"]["value"]["count"] == 1
        assert "p50" in snap["h"]["value"]

    def test_write_snapshot_merge_updates(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"keep_me": 1}))
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        merged = reg.write_snapshot(path, worker_id="w7")
        on_disk = json.loads(path.read_text())
        assert on_disk.keys() == merged.keys()
        assert on_disk["keep_me"] == 1
        assert on_disk["worker_id"] == "w7"
        assert on_disk["c_total"]["value"] == 1
        assert "snapshot_unix_time" in on_disk


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_disabled_span_is_shared_noop_singleton(self):
        assert not trace.enabled()
        sp = trace.span("anything", a=1)
        assert sp is trace.span("else")
        assert sp is trace.NULL_SPAN
        with sp as inner:
            assert inner.set(b=2) is sp
        trace.instant("nothing")  # must not raise

    def test_jsonl_schema_and_nesting(self, tmp_path):
        path = tmp_path / "trace.json"
        trace.enable(path)
        assert trace.enabled() and trace.trace_path() == str(path)
        with trace.span("outer", depth=0) as sp:
            with trace.span("inner", depth=1):
                pass
            with trace.span("inner", depth=1):
                pass
            sp.set(children=2)
        trace.instant("marker", note="hi")
        trace.disable()

        events = trace.load_trace(path)
        assert events, "trace file must parse to events"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] in ("B", "E", "i"):
                assert isinstance(event["ts"], (int, float))
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

        # B/E balance + LIFO nesting, replayed per (pid, tid) track.
        stacks: dict = {}
        for event in events:
            if event["ph"] == "B":
                stacks.setdefault((event["pid"], event["tid"]),
                                  []).append(event["name"])
            elif event["ph"] == "E":
                stack = stacks[(event["pid"], event["tid"])]
                assert stack.pop() == event["name"]
        assert all(not s for s in stacks.values())
        ends = {e["name"]: e for e in events if e["ph"] == "E"}
        assert ends["outer"]["args"]["children"] == 2

        # Whole file is also a valid JSON array (close() wrote "]").
        assert isinstance(json.loads(path.read_text()), list)

    def test_enable_via_environment(self, tmp_path):
        path = tmp_path / "env_trace.json"
        code = ("from repro.obs import trace\n"
                "with trace.span('env.span'):\n"
                "    pass\n")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   REPRO_TRACE=str(path))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
        names = {e["name"] for e in trace.load_trace(path)}
        assert "env.span" in names

    def test_summarize_self_time_excludes_children(self, tmp_path):
        path = tmp_path / "t.json"
        trace.enable(path)
        with trace.span("parent"):
            with trace.span("child"):
                pass
        trace.disable()
        rows = {r["name"]: r for r in trace.summarize_trace([path])}
        assert rows["parent"]["count"] == 1
        assert rows["child"]["total_us"] <= rows["parent"]["total_us"]
        assert rows["parent"]["self_us"] == pytest.approx(
            rows["parent"]["total_us"] - rows["child"]["total_us"])
        table = trace.render_summary(list(rows.values()))
        assert "parent" in table and "child" in table

    def test_cli_trace_flag_and_summarize(self, tmp_path, capsys):
        path = tmp_path / "cli.json"
        assert main(["--trace", str(path), "generate", "--model", "er",
                     "--dataset", SMALLEST, "--profile", "smoke"]) == 0
        trace.disable()  # main() enabled the module-global tracer
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runner.fit" in out
        assert "runner.generate" in out


# ----------------------------------------------------------------------
# Instrumentation wiring
# ----------------------------------------------------------------------
class _NullTask:
    def modules(self):
        return {}

    def optimizers(self):
        return {}

    def epoch(self, state, rng) -> float:
        return 0.0


class TestTrainerMetrics:
    def test_metrics_callback_counts(self):
        reg = MetricsRegistry()
        trainer = Trainer(_NullTask(), epochs=3,
                          callbacks=[MetricsCallback(registry=reg)])
        trainer.fit(np.random.default_rng(0))
        assert reg.counter("train_epochs_total").value(
            task="_NullTask") == 3
        assert reg.counter("train_fits_total").value(task="_NullTask") == 1
        assert reg.histogram("train_epoch_seconds").count(
            task="_NullTask") == 3
        assert reg.histogram("train_fit_seconds").count(
            task="_NullTask") == 1

    def test_default_trainer_feeds_global_registry(self):
        before = get_registry().counter("train_epochs_total").total()
        Trainer(_NullTask(), epochs=2).fit(np.random.default_rng(0))
        after = get_registry().counter("train_epochs_total").total()
        assert after - before == 2


class TestRunnerMetrics:
    def test_cache_hit_miss_counters(self, tmp_path):
        reg = MetricsRegistry()
        runner = Runner(cache_dir=tmp_path, registry=reg)
        spec = ExperimentSpec(model="er", dataset=SMALLEST, profile="smoke")
        runner.run(spec)
        assert reg.counter("runner_cache_misses_total").value() == 1
        assert reg.counter("runner_fits_total").value(model="er") == 1
        runner.run(spec)
        assert reg.counter("runner_cache_hits_total").value(
            layer="memory") == 1
        reg2 = MetricsRegistry()
        Runner(cache_dir=tmp_path, registry=reg2).run(spec)
        assert reg2.counter("runner_cache_hits_total").value(
            layer="disk") == 1

    def test_stacked_sidecar_records_raw_wall_clock(self, tmp_path):
        specs = [ExperimentSpec(model="gae", dataset=SMALLEST,
                                profile="smoke", seed=s) for s in (1, 2)]
        runner = Runner(cache_dir=tmp_path)
        results = runner.run_stacked(specs)
        for result, spec in zip(results, specs):
            assert result.stacked_size == 2
            assert result.stacked_fit_seconds is not None
            # amortized mean stays the headline number
            assert result.fit_seconds == pytest.approx(
                result.stacked_fit_seconds / 2)
            sidecar = json.loads(
                (tmp_path / f"{spec.cache_key()}.json").read_text())
            assert sidecar["stacked_fit_seconds"] == pytest.approx(
                result.stacked_fit_seconds)
            assert sidecar["stacked_size"] == 2
        # raw seconds survive the disk round trip
        replay = Runner(cache_dir=tmp_path).run_stacked(specs)
        assert all(r.from_cache for r in replay)
        assert replay[0].stacked_fit_seconds == pytest.approx(
            results[0].stacked_fit_seconds)
        assert replay[0].stacked_size == 2

    def test_artifacts_byte_identical_with_tracing(self, tmp_path):
        spec = ExperimentSpec(model="gae", dataset=SMALLEST,
                              profile="smoke", seed=3)
        Runner(cache_dir=tmp_path / "plain").run(spec)
        trace.enable(tmp_path / "t.json")
        Runner(cache_dir=tmp_path / "traced").run(spec)
        trace.disable()
        name = f"{spec.cache_key()}.npz"
        plain = (tmp_path / "plain" / name).read_bytes()
        traced = (tmp_path / "traced" / name).read_bytes()
        assert plain == traced


class TestQueueMetrics:
    def test_jobqueue_counters_and_depth_gauge(self, tmp_path):
        reg = MetricsRegistry()
        queue = JobQueue(tmp_path / "q", registry=reg)
        specs = [ExperimentSpec(model="er", dataset=SMALLEST,
                                profile="smoke", seed=s) for s in (0, 1)]
        queue.submit(specs)
        assert reg.counter("jobqueue_submitted_total").value() == 2
        job = queue.claim("w1")
        assert reg.counter("jobqueue_claims_total").value() == 1
        queue.complete(job.id, "w1")
        assert reg.counter("jobqueue_completions_total").value() == 1
        queue.counts()
        depth = reg.gauge("jobqueue_depth")
        assert depth.value(state="pending") == 1
        assert depth.value(state="done") == 1

    def test_worker_metrics_file_auto_snapshot(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit([ExperimentSpec(model="er", dataset=SMALLEST,
                                     profile="smoke")])
        worker = Worker(queue, tmp_path / "cache", worker_id="w-obs",
                        metrics_file="auto")
        stats = worker.run(max_jobs=1)
        assert stats["completed"] == 1
        snap_path = tmp_path / "q" / "metrics" / "w-obs.json"
        snap = json.loads(snap_path.read_text())
        assert snap["worker_id"] == "w-obs"
        assert snap["worker_jobs_total"]["value"] \
            == {'{"outcome": "completed"}': 1.0}
        assert snap["jobqueue_claims_total"]["value"] == 1

    def test_sweep_status_prints_fleet_metrics(self, tmp_path, capsys):
        queue = JobQueue(tmp_path / "q")
        queue.submit([ExperimentSpec(model="er", dataset=SMALLEST,
                                     profile="smoke")])
        worker = Worker(queue, tmp_path / "cache", worker_id="w-obs",
                        metrics_file="auto")
        worker.run(max_jobs=1)
        capsys.readouterr()
        assert main(["sweep", "--status", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "fleet metrics" in out
        assert "w-obs" in out
        assert "queue depth (freshest snapshot):" in out
        assert "done=1" in out

    def test_sweep_status_silent_without_snapshots(self, tmp_path, capsys):
        JobQueue(tmp_path / "q")
        capsys.readouterr()
        assert main(["sweep", "--status", str(tmp_path / "q")]) == 0
        assert "fleet metrics" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# Serve-engine counters under concurrency (satellite: race regression)
# ----------------------------------------------------------------------
class TestEngineCounterRaces:
    def test_concurrent_submit_never_drops_counts(self):
        """submit() runs on arbitrary HTTP handler threads; the old
        hand-rolled ``submitted += 1`` could lose increments.  The
        registry-backed stats must stay exact under a thread hammer."""
        model = TransformerWalkModel(num_nodes=23, dim=16, num_heads=2,
                                     num_layers=1, max_length=8,
                                     rng=np.random.default_rng(7))
        engine = ContinuousBatcher(model, max_walks=64)
        nthreads, per_thread = 8, 25
        barrier = threading.Barrier(nthreads)
        tickets: list = []
        lock = threading.Lock()

        def hammer(i):
            barrier.wait()
            mine = [engine.submit(1, 3, np.random.default_rng(100 * i + j))
                    for j in range(per_thread)]
            with lock:
                tickets.extend(mine)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = nthreads * per_thread
        assert engine.stats.submitted == total
        engine.drain()
        for ticket in tickets:
            assert ticket.result(timeout=5).shape == (1, 3)
        assert engine.stats.completed == total
        assert engine.stats.admitted == total
        assert engine.stats.steps > 0
        assert engine.stats.rows_decoded >= total  # >=1 step per request
