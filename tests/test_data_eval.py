"""Tests for the datasets and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (Dataset, dataset_names, dataset_statistics,
                        labeled_dataset_names, load_dataset)
from repro.eval import (LogisticRegression, accuracy, augment_graph,
                        augmentation_study, cross_validated_accuracy,
                        k_fold_indices, mean_discrepancy,
                        overall_discrepancy, protected_discrepancy,
                        relative_discrepancy)
from repro.graph import Graph, erdos_renyi


class TestDatasets:
    def test_seven_datasets(self):
        assert len(dataset_names()) == 7

    def test_labeled_subset(self):
        assert labeled_dataset_names() == ["BLOG", "FLICKR", "ACM"]

    @pytest.mark.parametrize("name", ["EMAIL", "FB", "BLOG", "FLICKR",
                                      "GNU", "CA", "ACM"])
    def test_loadable_and_nonempty(self, name):
        data = load_dataset(name)
        assert data.graph.num_nodes > 50
        assert data.graph.num_edges > 50

    def test_deterministic(self):
        a = load_dataset("BLOG")
        b = load_dataset("BLOG")
        assert a.graph == b.graph
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_case_insensitive(self):
        assert load_dataset("blog").name == "BLOG"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("IMAGINARY")

    @pytest.mark.parametrize("name,classes", [("BLOG", 6), ("FLICKR", 9),
                                              ("ACM", 9)])
    def test_class_counts_match_table1(self, name, classes):
        assert load_dataset(name).num_classes == classes

    def test_labeled_have_protected_minority(self):
        for name in labeled_dataset_names():
            data = load_dataset(name)
            frac = data.protected_mask.mean()
            assert 0.0 < frac < 0.15

    def test_unlabeled_have_no_labels(self):
        data = load_dataset("EMAIL")
        assert not data.has_labels
        assert data.protected_mask is None

    def test_statistics_row(self):
        row = dataset_statistics(load_dataset("ACM"))
        assert row["name"] == "ACM"
        assert row["classes"] == 9
        assert row["protected"] > 0

    def test_few_shot_covers_every_class(self, rng):
        data = load_dataset("BLOG")
        nodes, classes = data.labeled_few_shot(2, rng)
        assert set(classes.tolist()) == set(range(data.num_classes))
        np.testing.assert_array_equal(data.labels[nodes], classes)

    def test_few_shot_on_unlabeled_rejected(self, rng):
        with pytest.raises(ValueError):
            load_dataset("FB").labeled_few_shot(2, rng)


class TestRelativeDiscrepancy:
    def test_identity_is_zero(self):
        assert relative_discrepancy(3.0, 3.0) == 0.0

    def test_formula(self):
        assert relative_discrepancy(4.0, 3.0) == pytest.approx(0.25)

    def test_zero_original_matching(self):
        assert relative_discrepancy(0.0, 0.0) == 0.0

    def test_zero_original_mismatch_inf(self):
        assert relative_discrepancy(0.0, 1.0) == float("inf")

    def test_nan_propagates(self):
        assert np.isnan(relative_discrepancy(float("nan"), 1.0))


class TestGraphDiscrepancy:
    def test_same_graph_all_zero(self, two_cliques_graph):
        values = overall_discrepancy(two_cliques_graph, two_cliques_graph)
        finite = {k: v for k, v in values.items() if np.isfinite(v)}
        assert all(v == pytest.approx(0.0) for v in finite.values())

    def test_nine_metrics_reported(self, two_cliques_graph, rng):
        other = erdos_renyi(8, 0.4, rng)
        values = overall_discrepancy(two_cliques_graph, other)
        assert len(values) == 9

    def test_protected_uses_ego_networks(self, two_cliques_graph):
        protected = np.zeros(8, dtype=bool)
        protected[0] = True
        values = protected_discrepancy(two_cliques_graph, two_cliques_graph,
                                       protected)
        finite = {k: v for k, v in values.items() if np.isfinite(v)}
        assert all(v == pytest.approx(0.0) for v in finite.values())

    def test_empty_protected_rejected(self, two_cliques_graph):
        with pytest.raises(ValueError):
            protected_discrepancy(two_cliques_graph, two_cliques_graph,
                                  np.zeros(8, dtype=bool))

    def test_mean_discrepancy_ignores_inf(self):
        assert mean_discrepancy({"a": 1.0, "b": float("inf"),
                                 "c": 3.0}) == pytest.approx(2.0)

    def test_mean_discrepancy_all_inf_nan(self):
        assert np.isnan(mean_discrepancy({"a": float("inf")}))


class TestLogisticRegression:
    def test_learns_linear_boundary(self, rng):
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)
        clf = LogisticRegression(2).fit(x, y)
        assert accuracy(clf.predict(x), y) > 0.95

    def test_multiclass(self, rng):
        centers = np.array([[0, 0], [5, 0], [0, 5]])
        x = np.vstack([rng.normal(size=(30, 2)) + c for c in centers])
        y = np.repeat(np.arange(3), 30)
        clf = LogisticRegression(3).fit(x, y)
        assert accuracy(clf.predict(x), y) > 0.95

    def test_proba_normalised(self, rng):
        x = rng.normal(size=(10, 3))
        y = rng.integers(0, 2, 10)
        clf = LogisticRegression(2).fit(x, y)
        np.testing.assert_allclose(clf.predict_proba(x).sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression(2).predict(np.zeros((2, 2)))

    def test_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression(2).fit(np.zeros(3), np.zeros(3))

    def test_single_class_config_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(1)


class TestKFold:
    def test_partitions_everything(self, rng):
        splits = k_fold_indices(20, 4, rng)
        all_test = np.concatenate([t for _, t in splits])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_train_test_disjoint(self, rng):
        for train, test in k_fold_indices(15, 3, rng):
            assert not set(train.tolist()) & set(test.tolist())

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            k_fold_indices(5, 1, rng)
        with pytest.raises(ValueError):
            k_fold_indices(5, 6, rng)

    def test_cross_validated_accuracy_range(self, rng):
        x = rng.normal(size=(60, 4))
        y = (x[:, 0] > 0).astype(int)
        mean, std = cross_validated_accuracy(x, y, 2, rng, k=5)
        assert 0.5 < mean <= 1.0
        assert std >= 0.0


class TestAugmentation:
    def test_augment_budget(self, rng):
        original = erdos_renyi(40, 0.1, rng)
        other = erdos_renyi(40, 0.1, np.random.default_rng(99))
        augmented = augment_graph(original, other, fraction=0.05)
        budget = max(1, int(round(0.05 * original.num_edges)))
        added = augmented.num_edges - original.num_edges
        assert 0 < added <= budget

    def test_augment_keeps_original_edges(self, rng):
        original = erdos_renyi(30, 0.1, rng)
        other = erdos_renyi(30, 0.1, np.random.default_rng(5))
        augmented = augment_graph(original, other, fraction=0.1)
        for u, v in original.edges():
            assert augmented.has_edge(int(u), int(v))

    def test_no_novel_edges_is_noop(self, rng):
        g = erdos_renyi(20, 0.2, rng)
        assert augment_graph(g, g, fraction=0.05) == g

    def test_invalid_fraction(self, rng):
        g = erdos_renyi(10, 0.2, rng)
        with pytest.raises(ValueError):
            augment_graph(g, g, fraction=0.0)

    def test_study_requires_fitted_model(self, rng):
        from repro.models import ERModel

        g = erdos_renyi(20, 0.2, rng)
        with pytest.raises(ValueError):
            augmentation_study(g, np.zeros(20, dtype=int), 2,
                               ERModel(), rng)

    def test_study_end_to_end(self, rng):
        """Full Figure 6 pipeline with a cheap model on a tiny graph."""
        from repro.data import load_dataset
        from repro.embedding import Node2VecConfig
        from repro.models import ERModel

        data = load_dataset("BLOG")
        model = ERModel().fit(data.graph, rng)
        result = augmentation_study(
            data.graph, data.labels, data.num_classes, model, rng,
            embed_config=Node2VecConfig(dim=16, epochs=1, walks_per_node=2),
            folds=3)
        assert 0.0 <= result.baseline_accuracy <= 1.0
        assert 0.0 <= result.augmented_accuracy <= 1.0
        assert result.model_name == "ER"
        assert np.isfinite(result.improvement)
