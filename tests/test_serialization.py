"""Tests for module, model-zoo and FairGen persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (FairGen, FairGenConfig, load_fairgen, load_model,
                        save_fairgen, save_model)
from repro.experiments import Supervision
from repro.graph import planted_protected_graph
from repro.nn import MLP, Tensor, load_state, save_state
from repro.registry import create_model, get_entry


class TestModuleSerialization:
    def test_roundtrip(self, rng, tmp_path):
        path = tmp_path / "mlp.npz"
        src = MLP([4, 8, 2], rng)
        save_state(src, path)
        dst = MLP([4, 8, 2], np.random.default_rng(99))
        load_state(dst, path)
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(src(x).numpy(), dst(x).numpy())

    def test_wrong_architecture_rejected(self, rng, tmp_path):
        path = tmp_path / "mlp.npz"
        save_state(MLP([4, 8, 2], rng), path)
        with pytest.raises((KeyError, ValueError)):
            load_state(MLP([4, 16, 2], rng), path)

    def test_empty_module_rejected(self, tmp_path):
        from repro.nn import Module

        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            save_state(Empty(), tmp_path / "e.npz")


class TestFairGenSerialization:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(17)
        graph, labels, protected = planted_protected_graph(
            40, 10, rng, p_in=0.3, p_out=0.03, num_classes=2,
            protected_as_class=True)
        few = np.concatenate([np.flatnonzero(labels == c)[:2]
                              for c in range(3)])
        model = FairGen(FairGenConfig(
            self_paced_cycles=2, walks_per_cycle=16,
            generator_steps_per_cycle=2, generator_batch=8, model_dim=16,
            num_layers=1, walk_length=5, feature_dim=16,
            batch_iterations=2, batch_size=16, generation_walk_factor=6))
        model.fit(graph, rng, labeled_nodes=few,
                  labeled_classes=labels[few], protected_mask=protected,
                  num_classes=3)
        return model, graph

    def test_roundtrip_generates_identically(self, trained, tmp_path):
        model, graph = trained
        path = tmp_path / "fairgen.npz"
        save_fairgen(model, path)
        restored = load_fairgen(path, graph)
        a = model.generate(np.random.default_rng(3))
        b = restored.generate(np.random.default_rng(3))
        assert a == b

    def test_roundtrip_preserves_discriminator(self, trained, tmp_path):
        model, graph = trained
        path = tmp_path / "fairgen.npz"
        save_fairgen(model, path)
        restored = load_fairgen(path, graph)
        np.testing.assert_allclose(model.discriminator.predict_proba(),
                                   restored.discriminator.predict_proba())

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_fairgen(FairGen(), tmp_path / "x.npz")

    def test_wrong_graph_rejected(self, trained, tmp_path):
        model, _ = trained
        path = tmp_path / "fairgen.npz"
        save_fairgen(model, path)
        from repro.graph import erdos_renyi

        other = erdos_renyi(10, 0.3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_fairgen(path, other)

    def test_config_round_trips(self, trained, tmp_path):
        model, graph = trained
        path = tmp_path / "fairgen.npz"
        save_fairgen(model, path)
        restored = load_fairgen(path, graph)
        assert restored.config == model.config


# One registry name per serialisable model class (FairGen's ablation
# variants share the FairGen class; "fairgen-no-spl" doubles as the
# check that a variant's display name survives the round trip).
ALL_MODEL_CLASSES = ["er", "ba", "gae", "netgan", "taggen", "graphrnn",
                     "fairgen-no-spl"]


class TestModelZooSerialization:
    """save_model/load_model round-trip every registry model class."""

    @pytest.fixture(scope="class")
    def fit_setting(self):
        rng = np.random.default_rng(23)
        graph, _, _ = planted_protected_graph(
            36, 9, rng, p_in=0.3, p_out=0.04, num_classes=2,
            protected_as_class=True)
        supervision = Supervision.surrogate_for(
            graph, rng=np.random.default_rng(24))
        return graph, supervision

    @pytest.mark.parametrize("name", ALL_MODEL_CLASSES)
    def test_state_dict_round_trips(self, name, fit_setting, tmp_path):
        graph, supervision = fit_setting
        model = create_model(name, profile="smoke")
        if get_entry(name).needs_supervision:
            model.fit(graph, np.random.default_rng(5),
                      supervision=supervision)
        else:
            model.fit(graph, np.random.default_rng(5))
        path = tmp_path / f"{name}.npz"
        save_model(model, path)
        restored = load_model(path, graph)

        assert type(restored) is type(model)
        assert restored.name == model.name
        assert restored.is_fitted
        original_state = model.state_dict()
        restored_state = restored.state_dict()
        assert set(original_state) == set(restored_state)
        for key, value in original_state.items():
            np.testing.assert_array_equal(
                np.asarray(value), np.asarray(restored_state[key]),
                err_msg=f"{name}: {key}")
        # Same seed, same synthetic graph — the restored model is a
        # drop-in replacement on the generation path.
        a = model.generate(np.random.default_rng(9))
        b = restored.generate(np.random.default_rng(9))
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fitted"):
            save_model(create_model("er"), tmp_path / "x.npz")

    def test_wrong_graph_rejected(self, fit_setting, tmp_path):
        graph, _ = fit_setting
        model = create_model("er").fit(graph, np.random.default_rng(0))
        path = tmp_path / "er.npz"
        save_model(model, path)
        from repro.graph import erdos_renyi

        other = erdos_renyi(10, 0.3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="does not match"):
            load_model(path, other)

    def test_foreign_archive_rejected(self, fit_setting, tmp_path):
        graph, _ = fit_setting
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a model archive"):
            load_model(path, graph)

    def test_fairgen_typed_loader_rejects_other_classes(self, fit_setting,
                                                        tmp_path):
        graph, _ = fit_setting
        model = create_model("er").fit(graph, np.random.default_rng(0))
        path = tmp_path / "er.npz"
        save_model(model, path)
        with pytest.raises(ValueError, match="not a FairGen"):
            load_fairgen(path, graph)


class TestMmapLoading:
    """load_model(mmap=True): the serving daemon's resident-model mode."""

    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(31)
        graph, _, _ = planted_protected_graph(
            36, 9, rng, p_in=0.3, p_out=0.04, num_classes=2,
            protected_as_class=True)
        model = create_model("taggen", profile="smoke")
        model.fit(graph, np.random.default_rng(5))
        return model, graph

    def test_uncompressed_roundtrip_is_mmap_backed(self, fitted, tmp_path):
        model, graph = fitted
        path = tmp_path / "taggen.npz"
        save_model(model, path, compress=False)
        restored = load_model(path, graph, mmap=True)
        state, restored_state = model.state_dict(), restored.state_dict()
        for key, value in state.items():
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(restored_state[key]),
                                          err_msg=key)
        weight = restored.model.embed.weight.data
        assert not weight.flags.writeable
        assert isinstance(weight.base, np.memmap)

    def test_mmap_model_generates_identically(self, fitted, tmp_path):
        model, graph = fitted
        path = tmp_path / "taggen.npz"
        save_model(model, path, compress=False)
        restored = load_model(path, graph, mmap=True)
        np.testing.assert_array_equal(
            restored.generate_walks(12, np.random.default_rng(7)),
            model.generate_walks(12, np.random.default_rng(7)))

    def test_mmap_weights_are_read_only_safe(self, fitted, tmp_path):
        """Training an mmap-loaded model must fail loudly, not corrupt
        the archive every resident model shares."""
        model, graph = fitted
        path = tmp_path / "taggen.npz"
        save_model(model, path, compress=False)
        restored = load_model(path, graph, mmap=True)
        param = next(iter(restored.model.parameters()))
        with pytest.raises(ValueError):
            param.data += 1.0  # in-place update = a training step

    def test_compressed_archive_falls_back_to_copy(self, fitted, tmp_path):
        model, graph = fitted
        path = tmp_path / "taggen.npz"
        save_model(model, path)  # compressed default
        restored = load_model(path, graph, mmap=True)
        weight = restored.model.embed.weight.data
        assert weight.flags.writeable  # ordinary in-memory load
        np.testing.assert_array_equal(
            restored.generate_walks(8, np.random.default_rng(3)),
            model.generate_walks(8, np.random.default_rng(3)))

    def test_mmap_false_still_copies(self, fitted, tmp_path):
        model, graph = fitted
        path = tmp_path / "taggen.npz"
        save_model(model, path, compress=False)
        restored = load_model(path, graph)
        assert restored.model.embed.weight.data.flags.writeable
