"""Tests for the unified experiment API: registry, supervision, Runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.serialization import load_graph, save_graph
from repro.data import load_dataset
from repro.experiments import (ExperimentSpec, Runner, Supervision,
                               benchmark_model_names, create_model,
                               display_name, get_entry, model_names,
                               profile_names)
from repro.graph import Graph
from repro.models import GraphGenerativeModel
from repro.models.random_models import ERModel

SMALLEST = "EMAIL"  # smallest bundled dataset (106 nodes)


def _adjacency_equal(a: Graph, b: Graph) -> bool:
    return (a.adjacency != b.adjacency).nnz == 0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_name_constructs_under_every_profile(self):
        for name in model_names():
            for profile in profile_names():
                model = create_model(name, profile=profile)
                assert isinstance(model, GraphGenerativeModel), (name,
                                                                 profile)

    def test_display_names_resolve_to_same_entry(self):
        for name in model_names():
            entry = get_entry(name)
            assert get_entry(entry.display_name) is entry
            for alias in entry.aliases:
                assert get_entry(alias) is entry

    def test_benchmark_scoreboard_order(self):
        assert benchmark_model_names() == [
            "FairGen", "FairGen-R", "FairGen-w/o-SPL",
            "FairGen-w/o-Parity", "ER", "BA", "GAE", "NetGAN", "TagGen"]

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_entry("bogus")

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            create_model("er", profile="warp-speed")

    def test_overrides_apply_on_top_of_profile(self):
        model = create_model("fairgen", profile="bench",
                             overrides={"self_paced_cycles": 1})
        assert model.config.self_paced_cycles == 1
        assert model.config.walks_per_cycle == 96  # bench value kept

    def test_fairgen_variants_need_supervision(self):
        assert get_entry("fairgen").needs_supervision
        assert not get_entry("er").needs_supervision

    def test_display_name_helper(self):
        assert display_name("fairgen-no-spl") == "FairGen-w/o-SPL"

    def test_alias_collision_rejected_without_partial_state(self):
        from repro.registry import register_model

        with pytest.raises(ValueError, match="collides"):
            # Display name shadows an existing canonical name.
            register_model("shadow-test", display_name="ER",
                           profiles={"paper": {}, "bench": {},
                                     "smoke": {}})(lambda **kw: None)
        # The failed registration must not leave a half-registered entry.
        assert "shadow-test" not in model_names()
        assert get_entry("er").name == "er"  # still the real ER


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
class TestSupervision:
    def test_from_labeled_dataset_uses_real_labels(self, rng):
        data = load_dataset("BLOG")
        sup = Supervision.from_dataset(data, rng=rng)
        assert not sup.surrogate
        assert sup.num_classes == data.num_classes
        assert np.array_equal(sup.labels, data.labels)
        # few-shot set covers every class
        assert set(sup.labeled_classes) == set(range(data.num_classes))
        assert np.array_equal(sup.labels[sup.labeled_nodes],
                              sup.labeled_classes)

    def test_unlabeled_dataset_falls_back_to_surrogate(self, rng):
        data = load_dataset(SMALLEST)
        sup = Supervision.from_dataset(data, rng=rng)
        assert sup.surrogate
        assert sup.num_classes == 2
        # protected group = bottom-quartile degrees, a strict minority
        assert 0 < sup.protected_mask.sum() < data.graph.num_nodes

    def test_unlabeled_dataset_without_surrogate_raises(self, rng):
        with pytest.raises(ValueError, match="has no labels"):
            Supervision.from_dataset(load_dataset(SMALLEST), rng=rng,
                                     allow_surrogate=False)

    def test_surrogate_on_degenerate_degree_graph(self, rng):
        # A cycle graph: every node has degree 2, so the quantile split
        # degenerates and the node-id fallback must kick in.
        n = 24
        cycle = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        sup = Supervision.surrogate_for(cycle, rng=rng)
        assert 0 < sup.protected_mask.sum() < n
        assert sup.protected_mask.sum() == n // 4
        assert set(sup.labeled_classes) == {0, 1}

    def test_fit_kwargs_match_fields(self, rng):
        sup = Supervision.from_dataset(load_dataset("BLOG"), rng=rng)
        kwargs = sup.fit_kwargs()
        assert kwargs["num_classes"] == sup.num_classes
        assert kwargs["labeled_nodes"] is sup.labeled_nodes

    def test_baselines_accept_and_ignore_supervision(self, rng,
                                                     triangle_graph):
        sup = Supervision.surrogate_for(triangle_graph, rng=rng)
        model = ERModel().fit(triangle_graph, rng, supervision=sup)
        assert model.is_fitted


# ----------------------------------------------------------------------
# Graph serialization (cache storage format)
# ----------------------------------------------------------------------
class TestGraphSerialization:
    def test_roundtrip(self, tmp_path, two_cliques_graph):
        path = tmp_path / "g.npz"
        save_graph(two_cliques_graph, path)
        restored = load_graph(path)
        assert _adjacency_equal(two_cliques_graph, restored)

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "not_a_graph.npz"
        np.savez_compressed(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a graph archive"):
            load_graph(path)


# ----------------------------------------------------------------------
# Runner + cache
# ----------------------------------------------------------------------
class TestRunner:
    SPEC = ExperimentSpec(model="er", dataset=SMALLEST, profile="bench",
                          seed=7)

    def test_spec_normalises_names(self):
        spec = ExperimentSpec(model="FairGen-R", dataset="email")
        assert spec.model == "fairgen-r"
        assert spec.dataset == "EMAIL"

    def test_spec_overrides_hashable_and_in_cache_key(self):
        a = ExperimentSpec(model="er", dataset=SMALLEST,
                           overrides={"x": 1})
        b = ExperimentSpec(model="er", dataset=SMALLEST)
        assert hash(a) != hash(b) or a != b
        assert a.cache_key() != b.cache_key()

    def test_deterministic_across_runner_instances(self):
        r1 = Runner().run(self.SPEC)
        r2 = Runner().run(self.SPEC)
        assert _adjacency_equal(r1.generated, r2.generated)

    def test_memory_cache_hit_returns_same_result(self):
        runner = Runner()
        first = runner.run(self.SPEC)
        again = runner.run(self.SPEC)
        assert again is first
        assert again.model is not None  # fitted model retained in-session

    def test_disk_cache_miss_then_hit(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        cold = runner.run(self.SPEC)
        assert not cold.from_cache
        key = self.SPEC.cache_key()
        assert (tmp_path / f"{key}.npz").exists()
        metadata = json.loads((tmp_path / f"{key}.json").read_text())
        assert metadata["spec"]["model"] == "er"

        warm = Runner(cache_dir=tmp_path).run(self.SPEC)
        assert warm.from_cache
        assert _adjacency_equal(cold.generated, warm.generated)
        assert warm.fit_seconds == pytest.approx(cold.fit_seconds)

    def test_warm_cache_performs_zero_fitting(self, tmp_path,
                                              monkeypatch):
        Runner(cache_dir=tmp_path).run(self.SPEC)

        def _no_fit(*args, **kwargs):
            raise AssertionError("cached run must not fit")

        monkeypatch.setattr(ERModel, "fit", _no_fit)
        # A fresh Runner simulates a new process against the same dir.
        result = Runner(cache_dir=tmp_path).run(self.SPEC)
        assert result.from_cache
        assert result.model is None

    def test_need_model_refits_after_disk_hit(self, tmp_path):
        Runner(cache_dir=tmp_path).run(self.SPEC)
        runner = Runner(cache_dir=tmp_path)
        cached = runner.run(self.SPEC)
        assert cached.model is None
        modeled = runner.run(self.SPEC, need_model=True)
        assert modeled.model is not None and modeled.model.is_fitted
        assert _adjacency_equal(cached.generated, modeled.generated)

    def test_warm_cache_satisfies_need_model_with_zero_fits(
            self, tmp_path, monkeypatch):
        # A plain run persists the fitted model alongside the artifact;
        # a later need_model run must replay it without any fitting.
        Runner(cache_dir=tmp_path).run(self.SPEC)
        assert (tmp_path / f"{self.SPEC.cache_key()}.model.npz").exists()

        fits: list[int] = []
        original = ERModel.fit

        def counting_fit(model, *args, **kwargs):
            fits.append(1)
            return original(model, *args, **kwargs)

        monkeypatch.setattr(ERModel, "fit", counting_fit)
        result = Runner(cache_dir=tmp_path).run(self.SPEC, need_model=True)
        assert result.from_cache
        assert result.model is not None and result.model.is_fitted
        assert fits == []  # zero fits on a warm cache

    def test_need_model_stamp_mismatch_refits(self, tmp_path):
        # A stale stamp must invalidate the model artifact too, not
        # replay a model fitted under different resolved parameters.
        spec = ExperimentSpec(model="fairgen", dataset=SMALLEST,
                              profile="smoke")
        Runner(cache_dir=tmp_path).run(spec, need_model=True)
        miss = Runner(cache_dir=tmp_path, few_shot_per_class=5).run(
            spec, need_model=True)
        assert not miss.from_cache
        assert miss.model is not None and miss.model.is_fitted

    def test_metrics_attached_and_cached(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        result = runner.run(self.SPEC, with_metrics=True)
        assert np.isfinite(result.metrics["overall_mean"])
        # surrogate protected group => protected scoreboard exists too
        assert "protected_mean" in result.metrics
        metadata = json.loads(
            (tmp_path / f"{self.SPEC.cache_key()}.json").read_text())
        assert metadata["metrics"]["overall_mean"] == pytest.approx(
            result.metrics["overall_mean"])

    def test_cache_invalidated_when_supervision_settings_change(
            self, tmp_path):
        # The artifact depends on the few-shot budget for label-aware
        # models; a Runner with a different budget must not replay it.
        spec = ExperimentSpec(model="fairgen", dataset=SMALLEST,
                              profile="smoke")
        Runner(cache_dir=tmp_path).run(spec)
        hit = Runner(cache_dir=tmp_path).run(spec)
        assert hit.from_cache
        miss = Runner(cache_dir=tmp_path, few_shot_per_class=5).run(spec)
        assert not miss.from_cache

    def test_supervision_shared_across_model_variants(self):
        # The paper's ablations compare variants trained on the SAME
        # few-shot labeled set; only the seed/dataset may change it.
        runner = Runner()
        sups = [runner.supervision_for(
                    ExperimentSpec(model=m, dataset="BLOG", seed=4))
                for m in ("fairgen", "fairgen-r")]
        assert np.array_equal(sups[0].labeled_nodes, sups[1].labeled_nodes)
        other_seed = runner.supervision_for(
            ExperimentSpec(model="fairgen", dataset="BLOG", seed=5))
        assert not np.array_equal(sups[0].labeled_nodes,
                                  other_seed.labeled_nodes)

    def test_cache_stamp_includes_allow_surrogate(self, tmp_path):
        Runner(cache_dir=tmp_path).run(self.SPEC, with_metrics=True)
        # --no-surrogate-labels must not replay surrogate-based metrics.
        miss = Runner(cache_dir=tmp_path, allow_surrogate=False).run(
            self.SPEC, with_metrics=True)
        assert not miss.from_cache
        assert "protected_mean" not in miss.metrics

    def test_need_model_refit_preserves_cached_metrics(self, tmp_path,
                                                       monkeypatch):
        runner = Runner(cache_dir=tmp_path)
        runner.run(self.SPEC, with_metrics=True)
        fresh = Runner(cache_dir=tmp_path)
        fresh.run(self.SPEC, need_model=True)
        metadata = json.loads(
            (tmp_path / f"{self.SPEC.cache_key()}.json").read_text())
        assert metadata["metrics"] is not None
        # The preserved metrics are reused, never recomputed.
        import repro.experiments.runner as runner_mod

        def _no_recompute(*args, **kwargs):
            raise AssertionError("metrics must come from the cache")

        monkeypatch.setattr(runner_mod, "overall_discrepancy",
                            _no_recompute)
        result = fresh.run(self.SPEC, with_metrics=True)
        assert np.isfinite(result.metrics["overall_mean"])

    def test_surrogate_protected_metrics_are_flagged(self):
        result = Runner().run(self.SPEC, with_metrics=True)
        assert result.metrics["protected_surrogate"] is True
        labeled = Runner().run(
            ExperimentSpec(model="er", dataset="BLOG", seed=1),
            with_metrics=True)
        assert labeled.metrics["protected_surrogate"] is False

    def test_run_many_parallel_fills_metrics_locally(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        first = runner.run(self.SPEC)  # fitted model lives in memory
        results = runner.run_many([self.SPEC], processes=2,
                                  with_metrics=True)
        # Served from memory with locally computed metrics — the fitted
        # model survives (a worker round-trip would have dropped it).
        assert results[0] is first
        assert results[0].model is not None
        assert np.isfinite(results[0].metrics["overall_mean"])

    def test_unhashable_override_values_are_frozen(self):
        spec = ExperimentSpec(model="gae", dataset=SMALLEST,
                              overrides={"shape": [32, 16]})
        assert hash(spec) is not None
        assert spec.override_dict["shape"] == (32, 16)

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.run(self.SPEC)
        (tmp_path / f"{self.SPEC.cache_key()}.npz").write_bytes(b"junk")
        result = Runner(cache_dir=tmp_path).run(self.SPEC)
        assert not result.from_cache  # fell back to recomputation

    def test_run_many_sequential(self, tmp_path):
        specs = [ExperimentSpec(model=m, dataset=SMALLEST, profile="bench",
                                seed=7) for m in ("er", "ba")]
        results = Runner(cache_dir=tmp_path).run_many(specs)
        assert [r.spec.model for r in results] == ["er", "ba"]
        assert all(not r.from_cache for r in results)

    def test_run_many_process_parallel(self, tmp_path):
        specs = [ExperimentSpec(model="er", dataset=SMALLEST, seed=s)
                 for s in (0, 1)]
        runner = Runner(cache_dir=tmp_path)
        results = runner.run_many(specs, processes=2)
        assert len(results) == 2
        assert all(r.model is None for r in results)
        # artifacts landed in the shared cache; the parent replays them
        replay = runner.run(specs[0])
        assert _adjacency_equal(replay.generated, results[0].generated)

    def test_run_many_parallel_need_model_ships_models_via_cache(
            self, tmp_path, monkeypatch):
        # With a shared cache_dir, need_model no longer forces the
        # sequential path: workers persist their fitted models and the
        # parent restores them from the archives.
        specs = [ExperimentSpec(model="er", dataset=SMALLEST, seed=s)
                 for s in (3, 4)]
        results = Runner(cache_dir=tmp_path).run_many(
            specs, processes=2, need_model=True)
        assert all(r.model is not None and r.model.is_fitted
                   for r in results)
        for spec in specs:
            assert (tmp_path / f"{spec.cache_key()}.model.npz").exists()

        # Second batch against the warm cache performs zero fits.
        def no_fit(*args, **kwargs):
            raise AssertionError("warm run_many must not fit")

        monkeypatch.setattr(ERModel, "fit", no_fit)
        warm = Runner(cache_dir=tmp_path).run_many(
            specs, processes=2, need_model=True)
        assert all(r.from_cache and r.model is not None for r in warm)

    def test_custom_model_degrades_to_graph_only_caching(self, tmp_path):
        # A third-party registry model without the serialization hooks
        # must not crash cached runs: the graph artifact is persisted,
        # the model archive is skipped, and need_model refits.
        from repro.experiments import register_model
        from repro.models import GraphGenerativeModel

        class EchoModel(GraphGenerativeModel):
            name = "Echo"

            def fit(self, graph, rng, supervision=None):
                self._fitted_graph = graph
                return self

            def generate(self, rng):
                return self._fitted_graph

        try:
            register_model(
                "echo-test", benchmarked=False,
                profiles={p: {} for p in profile_names()})(
                    lambda **kw: EchoModel())
        except ValueError:
            pass  # already registered by an earlier run in this process

        spec = ExperimentSpec(model="echo-test", dataset=SMALLEST)
        cold = Runner(cache_dir=tmp_path).run(spec)
        assert not cold.from_cache
        assert (tmp_path / f"{spec.cache_key()}.npz").exists()
        assert not (tmp_path / f"{spec.cache_key()}.model.npz").exists()
        warm = Runner(cache_dir=tmp_path).run(spec)
        assert warm.from_cache  # graph-only entry still replays
        modeled = Runner(cache_dir=tmp_path).run(spec, need_model=True)
        assert modeled.model is not None and modeled.model.is_fitted

    def test_run_many_need_model_unserialisable_fits_once_in_parent(
            self, tmp_path):
        # A model that can't ship through the cache must not be fitted
        # in a worker (the result would be discarded and refit); it runs
        # exactly once, in the parent.
        import os

        from repro.experiments import register_model
        from repro.models import GraphGenerativeModel

        marker = tmp_path / "fits.log"

        class MarkerModel(GraphGenerativeModel):
            name = "Marker"
            marker_path: str | None = None

            def fit(self, graph, rng, supervision=None):
                if MarkerModel.marker_path:
                    with open(MarkerModel.marker_path, "a") as fh:
                        fh.write(f"{os.getpid()}\n")
                self._fitted_graph = graph
                return self

            def generate(self, rng):
                return self._fitted_graph

        try:
            register_model(
                "marker-test", benchmarked=False,
                profiles={p: {} for p in profile_names()})(
                    lambda **kw: MarkerModel())
        except ValueError:
            pass  # already registered earlier in this process

        MarkerModel.marker_path = str(marker)
        specs = [ExperimentSpec(model="marker-test", dataset=SMALLEST,
                                seed=s) for s in (0, 1)]
        results = Runner(cache_dir=tmp_path / "cache").run_many(
            specs, processes=2, need_model=True)
        assert all(r.model is not None and r.model.is_fitted
                   for r in results)
        fits = marker.read_text().splitlines()
        assert len(fits) == len(specs)  # one fit per spec, none wasted
        assert set(fits) == {str(os.getpid())}  # all in the parent

    def test_run_many_need_model_without_cache_runs_sequentially(self):
        # No cache_dir means no channel to ship fitted models across
        # processes, so the batch falls back to the in-parent path.
        specs = [ExperimentSpec(model="er", dataset=SMALLEST, seed=s)
                 for s in (5, 6)]
        results = Runner().run_many(specs, processes=2, need_model=True)
        assert all(r.model is not None and r.model.is_fitted
                   for r in results)

    def test_surrogate_disabled_raises_for_labelled_models(self):
        runner = Runner(allow_surrogate=False)
        spec = ExperimentSpec(model="fairgen", dataset=SMALLEST,
                              profile="smoke")
        with pytest.raises(ValueError, match="has no labels"):
            runner.run(spec)


# ----------------------------------------------------------------------
# CLI smoke through the experiment API
# ----------------------------------------------------------------------
class TestCLISmoke:
    def test_generate_evaluate_through_runner_cache(self, tmp_path,
                                                    capsys):
        cache = str(tmp_path)
        argv = ["generate", "--dataset", SMALLEST, "--model", "er",
                "--profile", "smoke", "--cache-dir", cache]
        assert main(argv) == 0
        assert "generated" in capsys.readouterr().out
        # Second invocation replays the artifact from disk.
        assert main(argv) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_evaluate_fairgen_on_unlabeled_dataset(self, capsys):
        # The old CLI refused EMAIL outright; surrogate supervision
        # (default on) makes all seven datasets work like the benchmarks.
        assert main(["evaluate", "--dataset", SMALLEST, "--model",
                     "fairgen", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "mean R" in out
        assert "mean R+" in out

    def test_augment_smallest_labeled_dataset(self, capsys):
        assert main(["augment", "--dataset", "BLOG", "--model", "er",
                     "--profile", "smoke", "--fraction", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "augmented accuracy" in out

    def test_models_command_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("fairgen", "er", "taggen", "graphrnn"):
            assert name in out
