"""Tests for the pluggable tensor backend seam (``repro.nn.backend``).

Covers the registry/selection API, the thread-local grad flag, a
finite-difference gradcheck sweep over the ops table under every
registered backend, bit-identity of the fused compound kernels, and a
rerun of the seeded training parity pins
(``tests/fixtures/train_parity.json``) under every backend held to the
bit-identity bar.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.nn import (Backend, FusedNumpyBackend, NumpyBackend, OPS, Tensor,
                      active_backend, available_backends, get_backend,
                      no_grad, register_backend, set_backend, use_backend)
from repro.nn.gradcheck import check_gradients

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[1]


def _load_parity():
    spec = importlib.util.spec_from_file_location(
        "generate_train_parity", FIXTURES / "generate_train_parity.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


parity = _load_parity()
PINNED = json.loads((FIXTURES / "train_parity.json").read_text())

#: backends held to the bit-identity bar.  numba — registered only when
#: the optional package is importable — is exempt by design: compiled
#: transcendentals may differ from libm at the ULP level.
BIT_IDENTICAL = [name for name in available_backends()
                 if name in ("numpy", "fused")]


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = active_backend().name
    yield
    set_backend(previous)


# ----------------------------------------------------------------------
# Registry + selection API
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends()[:2] == ["numpy", "fused"]

    def test_numba_registration_matches_importability(self):
        has_numba = importlib.util.find_spec("numba") is not None
        assert ("numba" in available_backends()) == has_numba

    def test_base_class_implements_full_ops_table(self):
        base = Backend()
        for op in OPS:
            assert callable(getattr(base, op)), op

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="unknown backend 'warp'"):
            get_backend("warp")
        # The error names what IS registered, to aid typo recovery.
        with pytest.raises(KeyError, match="numpy"):
            get_backend("warp")

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_register_validates_ops_table(self):
        class Broken(NumpyBackend):
            name = "broken-test"
            gelu = None  # shadow an op with a non-callable

        with pytest.raises(TypeError, match="missing ops.*gelu"):
            register_backend(Broken())
        assert "broken-test" not in available_backends()

    def test_register_and_select_custom_backend(self):
        from repro.nn import backend as backend_module

        class Custom(NumpyBackend):
            name = "custom-test"

        custom = Custom()
        register_backend(custom)
        try:
            with use_backend("custom-test"):
                assert active_backend() is custom
                x = Tensor([1.0, 2.0], requires_grad=True)
                loss = (x * 3.0).sum()
                loss.backward()
                np.testing.assert_array_equal(x.grad, [3.0, 3.0])
            assert active_backend() is not custom
        finally:
            backend_module._REGISTRY.pop("custom-test", None)

    def test_set_backend_switches_and_returns(self):
        backend = set_backend("fused")
        assert isinstance(backend, FusedNumpyBackend)
        assert active_backend() is backend

    def test_use_backend_restores_on_exception(self):
        before = active_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("fused"):
                assert active_backend().name == "fused"
                raise RuntimeError("boom")
        assert active_backend() is before

    def test_use_backend_nests(self):
        with use_backend("fused"):
            with use_backend("numpy"):
                assert active_backend().name == "numpy"
            assert active_backend().name == "fused"


class TestEnvSelection:
    """``REPRO_BACKEND`` picks the import-time default (subprocess)."""

    def _spawn(self, env_value: str | None):
        env = dict(os.environ)
        env.pop("REPRO_BACKEND", None)
        if env_value is not None:
            env["REPRO_BACKEND"] = env_value
        extra = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")] + ([extra] if extra else []))
        return subprocess.run(
            [sys.executable, "-c",
             "import repro.nn as nn; print(nn.active_backend().name)"],
            env=env, capture_output=True, text=True, timeout=120)

    def test_default_is_numpy(self):
        proc = self._spawn(None)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "numpy"

    def test_env_var_selects_backend(self):
        proc = self._spawn("fused")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fused"

    def test_unknown_env_value_fails_at_import(self):
        proc = self._spawn("warp")
        assert proc.returncode != 0
        assert "unknown backend" in proc.stderr


# ----------------------------------------------------------------------
# Thread-local autograd flag (satellite regression)
# ----------------------------------------------------------------------
class TestThreadLocalGrad:
    def test_no_grad_in_one_thread_does_not_leak_into_another(self):
        """A thread inside ``no_grad()`` must not disable recording in
        concurrently running threads (the old process-global flag did)."""
        entered, release = threading.Event(), threading.Event()
        failures: list[BaseException] = []

        def holder():
            try:
                with no_grad():
                    entered.set()
                    release.wait(10.0)
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(10.0)
            # While the other thread holds no_grad, this thread records.
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
            assert y.requires_grad
            y.backward()
            np.testing.assert_array_equal(x.grad, [2.0, 2.0, 2.0])
        finally:
            release.set()
            thread.join(10.0)
        assert not failures

    def test_worker_thread_has_independent_flag(self):
        results: dict[str, bool] = {}

        def worker():
            with no_grad():
                t = Tensor(np.ones(2), requires_grad=True)
                results["inside"] = (t * 3.0).requires_grad
            t = Tensor(np.ones(2), requires_grad=True)
            results["after"] = (t * 3.0).requires_grad

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(10.0)
        assert results == {"inside": False, "after": True}

    def test_nested_no_grad_restores_outer_state(self):
        with no_grad():
            with no_grad():
                pass
            t = Tensor(np.ones(2), requires_grad=True)
            assert not (t + 1.0).requires_grad
        t = Tensor(np.ones(2), requires_grad=True)
        assert (t + 1.0).requires_grad


# ----------------------------------------------------------------------
# Gradcheck sweep over the ops table, per backend
# ----------------------------------------------------------------------
def _inputs():
    rng = np.random.default_rng(42)
    x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    y = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
    return x, y


# Each program is a scalar-valued function of (x, y) exercising a band
# of the ops table; together they cover every differentiable primitive.
GRADCHECK_PROGRAMS = {
    "arithmetic": lambda x, y: (x * 2.0 + 1.0 - x / 3.0 + (-x)).sum(),
    "power": lambda x, y: ((x * x + 1.5) ** 2.5).mean(),
    "tensor_power": lambda x, y: ((x.abs() + 0.5)
                                  ** (y.T.abs() + 0.5)).sum(),
    "matmul_reshape": lambda x, y: (x @ y).reshape((9,)).sum(),
    "transpose_swap": lambda x, y: (x.T * y + x.swapaxes(0, 1)).sum(),
    "getitem_concat_stack": lambda x, y: (
        Tensor.concat([x, x], axis=0)[1:4].sum()
        + Tensor.stack([x, y.T]).mean()),
    "reductions": lambda x, y: (x.sum(axis=0) * x.mean(axis=0)).sum()
    + x.max() + x.sum(axis=1, keepdims=True).mean(),
    "exp_log_sqrt_abs": lambda x, y: (
        (x.abs() + 0.5).log() + (x * x + 1.0).sqrt() + (x * 0.1).exp()).sum(),
    "activations": lambda x, y: (
        x.relu() + x.tanh() + x.sigmoid() + x.gelu()).sum(),
    "clip": lambda x, y: x.clip(-0.75, 0.75).sum(),
    "softmax_family": lambda x, y: (x.softmax(axis=-1) * y.T).sum()
    + (x.log_softmax(axis=-1) * y.T).mean(),
}


class TestGradcheckSweep:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("program", sorted(GRADCHECK_PROGRAMS))
    def test_ops_table_gradients(self, backend, program):
        fn = GRADCHECK_PROGRAMS[program]
        with use_backend(backend):
            x, y = _inputs()
            check_gradients(lambda: fn(x, y), [x, y])


# ----------------------------------------------------------------------
# Fused-kernel bit-identity against the numpy reference
# ----------------------------------------------------------------------
class TestFusedBitIdentity:
    """Every fused compound kernel reproduces the reference bytes."""

    @staticmethod
    def _payload():
        rng = np.random.default_rng(11)
        return rng.standard_normal((7, 5)) * 3.0

    @pytest.mark.parametrize("op", ["sigmoid", "gelu"])
    def test_unary_compounds(self, op):
        x = self._payload()
        ref, fused = get_backend("numpy"), get_backend("fused")
        assert np.array_equal(getattr(fused, op)(x.copy()),
                              getattr(ref, op)(x.copy()))

    @pytest.mark.parametrize("op", ["softmax", "log_softmax"])
    def test_axis_compounds(self, op):
        x = self._payload()
        ref, fused = get_backend("numpy"), get_backend("fused")
        for axis in (-1, 0):
            assert np.array_equal(getattr(fused, op)(x.copy(), axis=axis),
                                  getattr(ref, op)(x.copy(), axis=axis))

    def test_grad_kernels(self):
        rng = np.random.default_rng(12)
        grad = rng.standard_normal((7, 5))
        x = self._payload()
        ref, fused = get_backend("numpy"), get_backend("fused")
        out = ref.sigmoid(x)
        assert np.array_equal(fused.sigmoid_grad(grad.copy(), out),
                              ref.sigmoid_grad(grad.copy(), out))
        t = np.tanh(x)
        assert np.array_equal(fused.tanh_grad(grad.copy(), t),
                              ref.tanh_grad(grad.copy(), t))
        assert np.array_equal(fused.gelu_grad(grad.copy(), x.copy()),
                              ref.gelu_grad(grad.copy(), x.copy()))

    def test_layer_norm_and_linear(self):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((6, 8))
        gamma, beta = rng.standard_normal(8), rng.standard_normal(8)
        weight, bias = rng.standard_normal((8, 4)), rng.standard_normal(4)
        ref, fused = get_backend("numpy"), get_backend("fused")
        assert np.array_equal(fused.layer_norm(x.copy(), gamma, beta, 1e-5),
                              ref.layer_norm(x.copy(), gamma, beta, 1e-5))
        assert np.array_equal(fused.linear(x.copy(), weight, bias),
                              ref.linear(x.copy(), weight, bias))
        assert np.array_equal(fused.linear(x.copy(), weight),
                              ref.linear(x.copy(), weight))

    def test_compound_kernels_do_not_mutate_inputs(self):
        x = self._payload()
        snapshot = x.copy()
        fused = get_backend("fused")
        fused.sigmoid(x)
        fused.gelu(x)
        fused.softmax(x)
        fused.log_softmax(x)
        np.testing.assert_array_equal(x, snapshot)


# ----------------------------------------------------------------------
# Grad-free inference path routes through the active backend
# ----------------------------------------------------------------------
class TestInferenceRouting:
    def test_gradfree_helpers_match_reference_under_fused(self):
        from repro.nn import inference

        rng = np.random.default_rng(3)
        x = rng.standard_normal((5, 8))
        gamma, beta = rng.standard_normal(8), rng.standard_normal(8)
        with use_backend("numpy"):
            ref = (inference._layer_norm(x, gamma, beta, 1e-5),
                   inference._softmax(x), inference._gelu(x))
        with use_backend("fused"):
            got = (inference._layer_norm(x, gamma, beta, 1e-5),
                   inference._softmax(x), inference._gelu(x))
        for r, g in zip(ref, got):
            assert np.array_equal(r, g)


# ----------------------------------------------------------------------
# Seeded parity pins under every bit-identity backend (satellite)
# ----------------------------------------------------------------------
class TestBackendParity:
    """The pinned training digests hold under every backend held to the
    bit-identity bar — the fused kernels change allocation, not floats."""

    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_fit_matches_pins(self, backend, name):
        with use_backend(backend):
            model, history = parity.fit_model(name)
        assert parity.state_digest(model.state_dict()) \
            == PINNED[name]["state"], f"{name}@{backend}: state drifted"
        assert parity.history_digest(history) \
            == PINNED[name]["history"], f"{name}@{backend}: history drifted"
