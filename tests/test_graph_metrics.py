"""Tests for the nine Table II metrics, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import Graph, connected_components, largest_component_nodes
from repro.graph import metrics as gm


@pytest.fixture
def random_graph(rng):
    from repro.graph import erdos_renyi

    return erdos_renyi(60, 0.08, rng)


class TestAverageDegree:
    def test_triangle(self, triangle_graph):
        assert gm.average_degree(triangle_graph) == 2.0

    def test_empty(self):
        assert gm.average_degree(Graph.from_edges(0, [])) == 0.0

    def test_matches_networkx(self, random_graph):
        nxg = random_graph.to_networkx()
        expected = 2 * nxg.number_of_edges() / nxg.number_of_nodes()
        assert gm.average_degree(random_graph) == pytest.approx(expected)


class TestComponents:
    def test_labels_partition(self, disconnected_graph):
        labels = connected_components(disconnected_graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[3] != labels[0]
        assert labels[5] not in (labels[0], labels[3])

    def test_lcc_size(self, disconnected_graph):
        assert gm.largest_connected_component(disconnected_graph) == 3.0

    def test_ncc(self, disconnected_graph):
        assert gm.number_of_connected_components(disconnected_graph) == 3.0

    def test_largest_component_nodes(self, disconnected_graph):
        np.testing.assert_array_equal(
            largest_component_nodes(disconnected_graph), [0, 1, 2])

    def test_matches_networkx(self, random_graph):
        nxg = random_graph.to_networkx()
        assert gm.number_of_connected_components(random_graph) == \
            nx.number_connected_components(nxg)
        assert gm.largest_connected_component(random_graph) == \
            len(max(nx.connected_components(nxg), key=len))


class TestTriangleCount:
    def test_single_triangle(self, triangle_graph):
        assert gm.triangle_count(triangle_graph) == 1.0

    def test_path_has_none(self, path_graph):
        assert gm.triangle_count(path_graph) == 0.0

    def test_k4(self):
        k4 = Graph.from_edges(4, [(a, b) for a in range(4)
                                  for b in range(a + 1, 4)])
        assert gm.triangle_count(k4) == 4.0

    def test_matches_networkx(self, random_graph):
        nxg = random_graph.to_networkx()
        expected = sum(nx.triangles(nxg).values()) / 3
        assert gm.triangle_count(random_graph) == pytest.approx(expected)


class TestPowerLawExponent:
    def test_uniform_degrees_infinite(self, triangle_graph):
        assert gm.power_law_exponent(triangle_graph) == float("inf")

    def test_formula(self):
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        deg = np.array([3.0, 1.0, 1.0, 1.0])
        expected = 1.0 + 4 / np.log(deg / 1.0).sum()
        assert gm.power_law_exponent(star) == pytest.approx(expected)

    def test_excludes_isolated(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3)])
        star = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert gm.power_law_exponent(g) == pytest.approx(
            gm.power_law_exponent(star))

    def test_ba_exponent_in_plausible_range(self, rng):
        from repro.graph import barabasi_albert

        g = barabasi_albert(400, 3, rng)
        ple = gm.power_law_exponent(g)
        assert 1.5 < ple < 3.5


class TestGini:
    def test_uniform_is_zero(self, triangle_graph):
        assert gm.gini_coefficient(triangle_graph) == pytest.approx(0.0)

    def test_star_positive(self):
        star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert gm.gini_coefficient(star) > 0.3

    def test_bounded(self, random_graph):
        g = gm.gini_coefficient(random_graph)
        assert 0.0 <= g <= 1.0

    def test_empty(self):
        assert gm.gini_coefficient(Graph.from_edges(0, [])) == 0.0


class TestEDE:
    def test_regular_graph_is_one(self):
        cycle = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        assert gm.edge_distribution_entropy(cycle) == pytest.approx(1.0)

    def test_star_below_one(self):
        star = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        assert gm.edge_distribution_entropy(star) < 1.0

    def test_empty(self):
        assert gm.edge_distribution_entropy(Graph.from_edges(3, [])) == 0.0


class TestASPL:
    def test_path_graph(self, path_graph):
        nxg = path_graph.to_networkx()
        expected = nx.average_shortest_path_length(nxg)
        assert gm.average_shortest_path_length(path_graph) == \
            pytest.approx(expected)

    def test_disconnected_uses_reachable_pairs(self, disconnected_graph):
        val = gm.average_shortest_path_length(disconnected_graph)
        assert np.isfinite(val)
        assert val == pytest.approx(1.0)  # triangle + edge: all dist 1

    def test_single_node(self):
        assert gm.average_shortest_path_length(Graph.from_edges(1, [])) == 0.0

    def test_sampled_close_to_exact(self, random_graph, rng):
        exact = gm.average_shortest_path_length(random_graph)
        sampled = gm.average_shortest_path_length(random_graph,
                                                  sample_size=40, rng=rng)
        assert sampled == pytest.approx(exact, rel=0.15)


class TestClusteringCoefficient:
    def test_triangle(self, triangle_graph):
        assert gm.clustering_coefficient(triangle_graph) == 1.0

    def test_path(self, path_graph):
        assert gm.clustering_coefficient(path_graph) == 0.0

    def test_matches_networkx(self, random_graph):
        nxg = random_graph.to_networkx()
        expected = nx.average_clustering(nxg)
        assert gm.clustering_coefficient(random_graph) == \
            pytest.approx(expected)


class TestAllMetrics:
    def test_contains_all_nine(self, triangle_graph):
        vals = gm.all_metrics(triangle_graph)
        assert set(vals) == set(gm.METRIC_NAMES)

    def test_values_are_floats(self, two_cliques_graph):
        for name, value in gm.all_metrics(two_cliques_graph).items():
            assert isinstance(value, float), name
