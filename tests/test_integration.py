"""Cross-module integration tests: full paper pipelines at toy scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairGen, FairGenConfig, make_fairgen_variant
from repro.data import load_dataset
from repro.embedding import Node2VecConfig, node2vec_embedding
from repro.eval import (augmentation_study, mean_discrepancy,
                        overall_discrepancy, protected_discrepancy)
from repro.models import ERModel, TagGen


TINY = FairGenConfig(
    self_paced_cycles=3, walks_per_cycle=24, generator_steps_per_cycle=2,
    generator_batch=12, model_dim=16, num_layers=1, walk_length=6,
    feature_dim=32, batch_iterations=8, batch_size=64,
    discriminator_lr=0.05,
    generation_walk_factor=8)


@pytest.fixture(scope="module")
def blog_pipeline():
    data = load_dataset("BLOG")
    rng = np.random.default_rng(0)
    nodes, classes = data.labeled_few_shot(3, rng)
    model = FairGen(TINY)
    model.fit(data.graph, rng, labeled_nodes=nodes, labeled_classes=classes,
              protected_mask=data.protected_mask)
    generated = model.generate(rng)
    return data, model, generated


class TestFullPipeline:
    def test_generated_graph_same_shape(self, blog_pipeline):
        data, _, generated = blog_pipeline
        assert generated.num_nodes == data.graph.num_nodes
        assert generated.num_edges == data.graph.num_edges

    def test_overall_discrepancy_computable(self, blog_pipeline):
        data, _, generated = blog_pipeline
        values = overall_discrepancy(data.graph, generated, aspl_sample=50)
        assert len(values) == 9
        assert np.isfinite(mean_discrepancy(values))

    def test_protected_discrepancy_computable(self, blog_pipeline):
        data, _, generated = blog_pipeline
        values = protected_discrepancy(data.graph, generated,
                                       data.protected_mask, aspl_sample=50)
        assert len(values) == 9

    def test_average_degree_close(self, blog_pipeline):
        """AD must match nearly exactly: same n and m by construction."""
        data, _, generated = blog_pipeline
        values = overall_discrepancy(data.graph, generated)
        assert values["AD"] < 0.01

    def test_pseudo_labels_grow_over_cycles(self, blog_pipeline):
        _, model, _ = blog_pipeline
        counts = [h["num_pseudo_labels"] for h in model.history]
        assert counts[-1] >= 0
        assert max(counts) > 0  # self-paced propagation actually fired

    def test_discriminator_beats_chance_on_true_labels(self, blog_pipeline):
        data, model, _ = blog_pipeline
        predictions = model.discriminator.predict()
        acc = (predictions == data.labels).mean()
        assert acc > 1.0 / data.num_classes


class TestVariantPipelines:
    @pytest.mark.parametrize("variant", ["no-sampling", "no-spl",
                                         "no-parity"])
    def test_variant_runs_end_to_end(self, variant):
        data = load_dataset("BLOG")
        rng = np.random.default_rng(1)
        nodes, classes = data.labeled_few_shot(2, rng)
        model = make_fairgen_variant(variant, TINY)
        model.fit(data.graph, rng, labeled_nodes=nodes,
                  labeled_classes=classes,
                  protected_mask=data.protected_mask)
        generated = model.generate(rng)
        assert generated.num_edges == data.graph.num_edges


class TestBaselineComparison:
    def test_er_and_taggen_comparable(self, rng):
        """The Figure 4 harness logic: multiple models, one scoreboard."""
        data = load_dataset("EMAIL")
        results = {}
        for model in (ERModel(),
                      TagGen(epochs=2, walks_per_epoch=32, dim=16,
                             num_layers=1, generation_walk_factor=8)):
            fitted = model.fit(data.graph, rng)
            generated = fitted.generate(rng)
            values = overall_discrepancy(data.graph, generated,
                                         aspl_sample=50)
            results[model.name] = mean_discrepancy(values)
        assert set(results) == {"ER", "TagGen"}
        assert all(np.isfinite(v) for v in results.values())


class TestAugmentationIntegration:
    def test_fairgen_augmentation_study(self, blog_pipeline, rng):
        data, model, _ = blog_pipeline
        result = augmentation_study(
            data.graph, data.labels, data.num_classes, model, rng,
            embed_config=Node2VecConfig(dim=16, epochs=1, walks_per_node=2),
            folds=3)
        assert result.model_name == "FairGen"
        assert 0.0 <= result.augmented_accuracy <= 1.0


class TestEmbeddingVisualizationPath:
    def test_tsne_on_generated_graph(self, blog_pipeline, rng):
        """Figure 9 path: node2vec + t-SNE on a generated graph."""
        from repro.embedding import centroid_separability, tsne

        data, _, generated = blog_pipeline
        emb = node2vec_embedding(
            generated, Node2VecConfig(dim=16, epochs=1, walks_per_node=2),
            rng)
        low = tsne(emb[:80], iterations=60, rng=rng)
        assert low.shape == (80, 2)
