"""Tests for the synthetic graph generators (ER, BA, SBM, planted)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (barabasi_albert, erdos_renyi,
                         planted_protected_graph, stochastic_block_model)
from repro.graph import metrics as gm


class TestErdosRenyi:
    def test_size(self, rng):
        g = erdos_renyi(50, 0.1, rng)
        assert g.num_nodes == 50

    def test_edge_count_near_expectation(self, rng):
        n, p = 120, 0.05
        g = erdos_renyi(n, p, rng)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_p_zero(self, rng):
        assert erdos_renyi(10, 0.0, rng).num_edges == 0

    def test_p_one(self, rng):
        g = erdos_renyi(6, 1.0, rng)
        assert g.num_edges == 15

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, rng)

    def test_no_self_loops(self, rng):
        g = erdos_renyi(30, 0.3, rng)
        assert g.adjacency.diagonal().sum() == 0


class TestBarabasiAlbert:
    def test_edge_count(self, rng):
        g = barabasi_albert(100, 3, rng)
        assert g.num_edges == (100 - 3) * 3

    def test_min_degree(self, rng):
        g = barabasi_albert(80, 2, rng)
        assert g.degrees.min() >= 2

    def test_heavy_tail(self, rng):
        """Max degree should far exceed the mean (hallmark of BA)."""
        g = barabasi_albert(300, 2, rng)
        assert g.degrees.max() > 4 * g.degrees.mean()

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0, rng)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, rng)


class TestSBM:
    def test_block_labels(self, rng):
        g, labels = stochastic_block_model(
            [10, 20], np.array([[0.5, 0.01], [0.01, 0.5]]), rng)
        assert g.num_nodes == 30
        assert (labels[:10] == 0).all()
        assert (labels[10:] == 1).all()

    def test_intra_denser_than_inter(self, rng):
        g, labels = stochastic_block_model(
            [40, 40], np.array([[0.3, 0.01], [0.01, 0.3]]), rng)
        edges = g.edges()
        same = (labels[edges[:, 0]] == labels[edges[:, 1]]).sum()
        cross = len(edges) - same
        assert same > 5 * cross

    def test_asymmetric_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5],
                                   np.array([[0.5, 0.1], [0.2, 0.5]]), rng)

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], np.array([[0.5]]), rng)

    def test_zero_probability_block(self, rng):
        g, _ = stochastic_block_model(
            [10, 10], np.array([[0.0, 0.0], [0.0, 0.5]]), rng)
        assert all(g.degree(v) == 0 for v in range(10))


class TestPlantedProtected:
    def test_outputs_consistent(self, rng):
        g, labels, protected = planted_protected_graph(60, 15, rng)
        assert g.num_nodes == 75
        assert protected.sum() == 15
        assert labels.shape == (75,)

    def test_as_class_mode_protected_is_own_class(self, rng):
        g, labels, protected = planted_protected_graph(
            60, 15, rng, num_classes=3, protected_as_class=True)
        assert set(np.unique(labels[protected])) == {3}
        assert set(np.unique(labels[~protected])) == {0, 1, 2}

    def test_orthogonal_mode_protected_spans_classes(self, rng):
        """Default mode: protected attribute orthogonal to class labels."""
        g, labels, protected = planted_protected_graph(
            60, 15, rng, num_classes=3)
        assert set(np.unique(labels[protected])) == {0, 1, 2}
        assert set(np.unique(labels[~protected])) == {0, 1, 2}

    def test_orthogonal_mode_class_structurally_predictable(self, rng):
        """Protected nodes connect mostly to their own class community."""
        g, labels, protected = planted_protected_graph(
            200, 30, rng, p_in=0.3, p_out=0.005, num_classes=2)
        edges = g.edges()
        prot_nodes = np.flatnonzero(protected)
        same_class = 0
        total = 0
        for u, v in edges:
            if protected[u] or protected[v]:
                total += 1
                same_class += labels[u] == labels[v]
        assert same_class / total > 0.6

    def test_as_class_mode_protected_group_cohesive(self, rng):
        g, _, protected = planted_protected_graph(
            100, 25, rng, p_in=0.3, p_out=0.01, protected_as_class=True)
        phi = g.conductance(np.flatnonzero(protected))
        assert phi < 0.3  # low conductance = cohesive community

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            planted_protected_graph(0, 5, rng)

    def test_orthogonal_needs_protected_per_class(self, rng):
        with pytest.raises(ValueError):
            planted_protected_graph(60, 2, rng, num_classes=3)

    def test_protected_under_represented(self, rng):
        g, _, protected = planted_protected_graph(100, 10, rng)
        assert protected.sum() < (~protected).sum() / 5
