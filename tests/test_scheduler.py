"""Tests for the distributed sweep scheduler: queue protocol, workers,
crash recovery, and the ``run_many(scheduler=...)`` / CLI fronts."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import (ExperimentSpec, JobQueue, LocalWorkerPool,
                               QueueError, Runner, Worker)
from repro.experiments.scheduler import _pool_worker_main
from repro.graph import Graph

SMALLEST = "EMAIL"  # smallest bundled dataset (106 nodes)

#: a deliberately multi-second FairGen job for the mid-job kill test
SLOW_OVERRIDES = {"self_paced_cycles": 3, "generator_steps_per_cycle": 16,
                  "walks_per_cycle": 64}


def _spec(model="er", seed=0, **overrides) -> ExperimentSpec:
    return ExperimentSpec(model=model, dataset=SMALLEST, profile="smoke",
                          seed=seed, overrides=overrides)


def _adjacency_equal(a: Graph, b: Graph) -> bool:
    return (a.adjacency != b.adjacency).nnz == 0


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Queue protocol
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_creates_pending_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit([_spec(seed=0), _spec(seed=1)])
        assert len(ids) == 2
        assert queue.counts() == {"pending": 2, "claimed": 0, "done": 0,
                                  "failed": 0}
        assert not queue.drained()

    def test_submit_is_idempotent_and_deduplicates(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec()
        ids = queue.submit([spec, spec])  # in-batch duplicate
        assert ids == [spec.cache_key()]
        queue.submit([spec])  # resubmission
        assert queue.counts()["pending"] == 1

    def test_submit_skips_jobs_already_done(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec()
        queue.submit([spec])
        job = queue.claim("w1")
        assert queue.complete(job.id, "w1", {"fitted": True})
        queue.submit([spec])
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1,
                                  "failed": 0}

    def test_submit_requeues_terminally_failed_jobs(self, tmp_path):
        """Resubmission is the operator's retry switch: a failed/ job
        goes back to pending with a fresh budget and its old traceback
        preserved in the error history."""
        queue = JobQueue(tmp_path, max_retries=0)
        spec = _spec()
        queue.submit([spec])
        job = queue.claim("w1")
        assert queue.fail(job.id, "w1", "transient: disk full") == "failed"
        queue.submit([spec])
        assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0,
                                  "failed": 0}
        retry = queue.claim("w2")
        assert retry.attempts == 1  # fresh budget
        payload = queue.payload(job.id)
        assert "disk full" in payload["errors"][0]["error"]

    def test_claim_round_trips_spec_with_overrides(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = _spec(model="fairgen", self_paced_cycles=2,
                     walk_length=6)
        queue.submit([spec], need_model=True, with_metrics=True)
        job = queue.claim("w1")
        assert job.spec == spec
        assert job.spec.cache_key() == spec.cache_key()
        assert job.need_model and job.with_metrics
        assert job.attempts == 1

    def test_claim_is_mutually_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec(seed=0), _spec(seed=1)])
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first.id != second.id
        assert queue.claim("w3") is None
        assert queue.counts()["claimed"] == 2

    def test_claim_writes_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        job = queue.claim("w1")
        lease = json.loads(
            (tmp_path / "leases" / f"{job.id}.json").read_text())
        assert lease["worker"] == "w1"
        assert lease["attempt"] == 1

    def test_heartbeat_advances_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        job = queue.claim("w1")
        lease_path = tmp_path / "leases" / f"{job.id}.json"
        before = json.loads(lease_path.read_text())["heartbeat_at"]
        time.sleep(0.02)
        assert queue.heartbeat(job.id, "w1")
        after = json.loads(lease_path.read_text())["heartbeat_at"]
        assert after > before

    def test_heartbeat_by_nonowner_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        job = queue.claim("w1")
        assert not queue.heartbeat(job.id, "w2")

    def test_complete_moves_to_done_with_payload(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        job = queue.claim("w1")
        assert queue.complete(job.id, "w1", {"fitted": True})
        assert queue.drained()
        payload = queue.payload(job.id)
        assert payload["state"] == "done"
        assert payload["worker"] == "w1"
        assert payload["result"]["fitted"] is True
        assert not (tmp_path / "leases" / f"{job.id}.json").exists()

    def test_complete_by_nonowner_discarded(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        job = queue.claim("w1")
        assert not queue.complete(job.id, "imposter", {})
        assert queue.payload(job.id)["state"] == "claimed"

    def test_fail_requeues_within_retry_budget(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=1)
        queue.submit([_spec()])
        job = queue.claim("w1")
        assert queue.fail(job.id, "w1", "boom") == "requeued"
        assert queue.counts()["pending"] == 1
        retry = queue.claim("w2")
        assert retry.id == job.id
        assert retry.attempts == 2

    def test_fail_exhausts_into_terminal_failed_state(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=0)
        queue.submit([_spec()])
        job = queue.claim("w1")
        assert queue.fail(job.id, "w1", "Traceback: kaboom") == "failed"
        assert queue.drained()  # failed jobs don't block draining
        payload = queue.payload(job.id)
        assert payload["state"] == "failed"
        assert "kaboom" in payload["failure"]
        assert payload["errors"][0]["worker"] == "w1"

    def test_recover_ignores_fresh_leases(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=30)
        queue.submit([_spec()])
        queue.claim("w1")
        assert queue.recover() == []
        assert queue.counts()["claimed"] == 1

    def test_recover_requeues_expired_lease(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.05, max_retries=2)
        queue.submit([_spec()])
        job = queue.claim("w1")
        time.sleep(0.1)
        assert queue.recover() == [job.id]
        assert queue.counts()["pending"] == 1
        retry = queue.claim("w2")
        assert retry.attempts == 2
        # The original worker's lease is gone: its completion is dropped.
        assert not queue.complete(job.id, "w1", {})

    def test_recover_fails_job_out_of_retry_budget(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.05, max_retries=0)
        queue.submit([_spec()])
        job = queue.claim("w1")
        time.sleep(0.1)
        assert queue.recover() == []
        payload = queue.payload(job.id)
        assert payload["state"] == "failed"
        assert "lease expired" in payload["failure"]

    def test_config_shared_through_queue_json(self, tmp_path):
        JobQueue(tmp_path, lease_timeout=7.5, max_retries=5)
        reopened = JobQueue(tmp_path)  # no explicit settings
        assert reopened.lease_timeout == 7.5
        assert reopened.max_retries == 5

    def test_wait_times_out(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([_spec()])
        with pytest.raises(QueueError, match="did not drain"):
            queue.wait(poll=0.01, timeout=0.05)

    def test_fit_log_appends_and_parses(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.record_fit("job-a", "w1")
        queue.record_fit("job-b", "w2")
        assert queue.fit_log() == [("job-a", "w1"), ("job-b", "w2")]


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class TestWorker:
    def test_worker_drains_queue_into_shared_cache(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        specs = [_spec(model=m, seed=s) for m in ("er", "ba")
                 for s in (0, 1)]
        queue.submit(specs, with_metrics=True)
        stats = Worker(queue, tmp_path / "cache", worker_id="w1").run()
        assert stats == {"completed": 4, "failed": 0, "requeued": 0,
                         "lost": 0}
        assert queue.drained()
        # Every artifact replays from the cache with zero fits.
        replayed = Runner(cache_dir=tmp_path / "cache").run_many(
            specs, with_metrics=True)
        assert all(r.from_cache and r.metrics is not None for r in replayed)
        assert len(queue.fit_log()) == len(specs)

    def test_worker_skips_fit_for_warm_cache_jobs(self, tmp_path):
        spec = _spec()
        Runner(cache_dir=tmp_path / "cache").run(spec)  # pre-warm
        queue = JobQueue(tmp_path / "q")
        queue.submit([spec])
        Worker(queue, tmp_path / "cache", worker_id="w1").run()
        payload = queue.payload(spec.cache_key())
        assert payload["state"] == "done"
        assert payload["result"]["fitted"] is False
        assert queue.fit_log() == []  # replay, not a fit

    def test_failing_job_retries_then_lands_in_failed(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_retries=1)
        bad = ExperimentSpec(model="er", dataset="NO-SUCH-DATASET")
        queue.submit([bad])
        stats = Worker(queue, tmp_path / "cache", worker_id="w1").run()
        assert stats["failed"] == 1  # the terminal attempt
        assert stats["requeued"] == 1  # the first, retried attempt
        payload = queue.payload(bad.cache_key())
        assert payload["state"] == "failed"
        assert payload["attempts"] == 2  # initial try + one retry
        assert "NO-SUCH-DATASET" in payload["failure"]
        assert queue.drained()

    def test_failed_jobs_do_not_poison_the_batch(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_retries=0)
        good = _spec()
        bad = ExperimentSpec(model="er", dataset="NO-SUCH-DATASET")
        queue.submit([good, bad])
        stats = Worker(queue, tmp_path / "cache", worker_id="w1").run()
        assert stats["completed"] == 1 and stats["failed"] == 1
        assert queue.payload(good.cache_key())["state"] == "done"

    def test_max_jobs_bounds_one_drain(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit([_spec(seed=s) for s in range(3)])
        stats = Worker(queue, tmp_path / "cache",
                       worker_id="w1").run(max_jobs=2)
        assert stats["completed"] == 2
        assert queue.counts()["pending"] == 1


# ----------------------------------------------------------------------
# run_many(scheduler=...) and the local pool
# ----------------------------------------------------------------------
class TestRunManyScheduler:
    def test_requires_cache_dir(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            Runner().run_many([_spec()], scheduler=tmp_path / "q")

    def test_scheduled_batch_matches_sequential(self, tmp_path):
        specs = [_spec(model=m, seed=s) for m in ("er", "ba")
                 for s in (0, 1)]
        scheduled = Runner(cache_dir=tmp_path / "cache").run_many(
            specs, scheduler=tmp_path / "q", processes=2,
            with_metrics=True)
        sequential = Runner(cache_dir=tmp_path / "seq").run_many(
            specs, with_metrics=True)
        for sched, seq in zip(scheduled, sequential):
            assert _adjacency_equal(sched.generated, seq.generated)
            assert json.dumps(sched.metrics, sort_keys=True) == \
                json.dumps(seq.metrics, sort_keys=True)
        # The parent only replayed: all fits happened in the workers.
        assert all(r.from_cache for r in scheduled)
        fits = JobQueue(tmp_path / "q").fit_log()
        assert sorted(job for job, _ in fits) == \
            sorted(s.cache_key() for s in specs)

    def test_scheduled_need_model_restores_models(self, tmp_path):
        specs = [_spec(seed=s) for s in (0, 1)]
        results = Runner(cache_dir=tmp_path / "cache").run_many(
            specs, scheduler=tmp_path / "q", processes=2, need_model=True)
        assert all(r.model is not None and r.model.is_fitted
                   for r in results)

    def test_scheduled_failure_raises_with_traceback(self, tmp_path):
        bad = ExperimentSpec(model="er", dataset="NO-SUCH-DATASET")
        queue = JobQueue(tmp_path / "q", max_retries=0)
        with pytest.raises(QueueError, match="NO-SUCH-DATASET"):
            Runner(cache_dir=tmp_path / "cache").run_many(
                [bad], scheduler=queue, processes=1)

    def test_pool_requires_at_least_one_worker(self, tmp_path):
        with pytest.raises(ValueError):
            LocalWorkerPool(tmp_path / "q", tmp_path / "cache", 0)

    def test_scheduled_need_model_unserialisable_runs_in_parent(
            self, tmp_path):
        # Mirrors the process-pool guard: a model that can't round-trip
        # through the cache must not be fitted in a worker and thrown
        # away — it runs once, in the parent, and never hits the queue.
        from repro.experiments import register_model
        from repro.models import GraphGenerativeModel
        from repro.registry import profile_names

        class OpaqueModel(GraphGenerativeModel):
            name = "Opaque"

            def fit(self, graph, rng, supervision=None):
                self._fitted_graph = graph
                return self

            def generate(self, rng):
                return self._fitted_graph

        try:
            register_model(
                "opaque-test", benchmarked=False,
                profiles={p: {} for p in profile_names()})(
                    lambda **kw: OpaqueModel())
        except ValueError:
            pass  # already registered earlier in this process

        specs = [ExperimentSpec(model="opaque-test", dataset=SMALLEST,
                                seed=s) for s in (0, 1)]
        results = Runner(cache_dir=tmp_path / "cache").run_many(
            specs, scheduler=tmp_path / "q", processes=1, need_model=True)
        assert all(r.model is not None and r.model.is_fitted
                   for r in results)
        # Nothing was enqueued: the whole batch stayed in the parent.
        assert JobQueue(tmp_path / "q").counts()["done"] == 0


# ----------------------------------------------------------------------
# Read-only status dashboard
# ----------------------------------------------------------------------
class TestQueueStatus:
    def test_status_reports_pending_claimed_and_failed(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=30.0, max_retries=0)
        queue.submit([_spec(seed=s) for s in (0, 1, 2)])
        claimed = queue.claim("worker-a")
        failed = queue.claim("worker-a")
        queue.fail(failed.id, "worker-a",
                   "Traceback (most recent call last):\n"
                   "ValueError: boom goes the dataset")

        snapshot = queue.status()
        assert snapshot["counts"] == {"pending": 1, "claimed": 1,
                                      "done": 0, "failed": 1}
        by_state = {}
        for job in snapshot["jobs"]:
            by_state.setdefault(job["state"], []).append(job)

        [pending] = by_state["pending"]
        assert pending["attempts"] == 0 and pending["worker"] is None

        [running] = by_state["claimed"]
        assert running["id"] == claimed.id
        assert running["worker"] == "worker-a"
        assert 0.0 <= running["lease_age"] < 30.0
        assert running["note"] == ""

        [dead] = by_state["failed"]
        assert dead["note"] == "ValueError: boom goes the dataset"
        assert dead["retries"] == 1

    def test_status_flags_expired_leases_without_recovering(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.05)
        queue.submit([_spec()])
        job = queue.claim("w")
        time.sleep(0.1)
        snapshot = queue.status()
        [row] = [j for j in snapshot["jobs"] if j["state"] == "claimed"]
        assert row["note"] == "lease expired"
        # Read-only: the job is still claimed, not requeued.
        assert queue.counts()["claimed"] == 1
        assert queue.payload(job.id)["state"] == "claimed"

    def test_status_of_empty_queue(self, tmp_path):
        queue = JobQueue(tmp_path)
        snapshot = queue.status()
        assert snapshot["jobs"] == []
        assert sum(snapshot["counts"].values()) == 0

    def test_cli_sweep_status_renders_dashboard(self, tmp_path, capsys):
        queue = JobQueue(tmp_path / "q")
        queue.submit([_spec(seed=0), _spec(seed=1)])
        queue.claim("cli-worker")
        assert main(["sweep", "--status", os.fspath(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "pending=1" in out and "claimed=1" in out
        assert "cli-worker" in out

    def test_cli_sweep_status_rejects_missing_queue(self, tmp_path):
        with pytest.raises(SystemExit, match="no queue"):
            main(["sweep", "--status", os.fspath(tmp_path / "nowhere")])

    def test_cli_sweep_status_does_not_scaffold_non_queue_dirs(
            self, tmp_path):
        """--status on an arbitrary existing directory must refuse,
        not silently convert it into a valid empty queue."""
        innocent = tmp_path / "results"
        innocent.mkdir()
        (innocent / "data.txt").write_text("not a queue")
        with pytest.raises(SystemExit, match="no queue"):
            main(["sweep", "--status", os.fspath(innocent)])
        assert sorted(p.name for p in innocent.iterdir()) == ["data.txt"]


# ----------------------------------------------------------------------
# Crash recovery: SIGKILL a worker mid-job
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkilled_worker_job_requeues_and_completes_once(
            self, tmp_path):
        """The headline fault-tolerance guarantee, end to end.

        A worker process is SIGKILLed while fitting; its lease stops
        heartbeating and expires; a second worker requeues the job via
        recovery, completes it exactly once, and the final artifacts are
        identical to a sequential ``run_many`` over the same spec.

        The kill waits for the victim's first mid-fit checkpoint
        (written on its heartbeat cadence), so the rescue exercises the
        resume path: the second worker continues the fit from the
        ``.ckpt.npz`` in the shared cache rather than refitting from
        epoch zero — and must still reproduce the sequential run's
        bytes, because the checkpoint carries the exact RNG state.
        """
        spec = _spec(model="fairgen", **SLOW_OVERRIDES)
        queue_dir = tmp_path / "q"
        cache_dir = tmp_path / "cache"
        queue = JobQueue(queue_dir, lease_timeout=1.0, max_retries=2)
        queue.submit([spec], with_metrics=True)

        victim = _mp_context().Process(
            target=_pool_worker_main,
            args=(os.fspath(queue_dir), os.fspath(cache_dir), "victim",
                  True, 3, 0.2),
            daemon=True)
        victim.start()
        ckpt_path = cache_dir / f"{spec.cache_key()}.ckpt.npz"
        deadline = time.monotonic() + 30
        while not ckpt_path.exists():
            assert time.monotonic() < deadline, \
                "worker never wrote a mid-fit checkpoint"
            assert victim.is_alive(), "worker died before checkpointing"
            time.sleep(0.005)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        # The job is stranded mid-execution: claimed, not done.
        assert queue.payload(spec.cache_key())["state"] == "claimed"

        rescuer = Worker(JobQueue(queue_dir), cache_dir,
                         worker_id="rescuer", heartbeat_interval=0.2,
                         few_shot_per_class=3)
        stats = rescuer.run(poll_interval=0.05)
        assert stats["completed"] == 1

        payload = queue.payload(spec.cache_key())
        assert payload["state"] == "done"
        assert payload["worker"] == "rescuer"
        assert payload["attempts"] == 2  # victim's claim + the retry
        assert "lease expired" in payload["errors"][0]["error"]
        # Exactly one *completed* fit: the victim died before reporting.
        assert queue.fit_log() == [(spec.cache_key(), "rescuer")]
        # The finished artifacts superseded the mid-fit checkpoint.
        assert not ckpt_path.exists()

        # Byte-identical outcome vs a sequential run of the same spec.
        [distributed] = Runner(cache_dir=cache_dir,
                               few_shot_per_class=3).run_many(
            [spec], with_metrics=True)
        [sequential] = Runner(cache_dir=tmp_path / "seq",
                              few_shot_per_class=3).run_many(
            [spec], with_metrics=True)
        assert distributed.from_cache and not sequential.from_cache
        assert _adjacency_equal(distributed.generated, sequential.generated)
        assert json.dumps(distributed.metrics, sort_keys=True) == \
            json.dumps(sequential.metrics, sort_keys=True)


# ----------------------------------------------------------------------
# CLI front
# ----------------------------------------------------------------------
class TestSchedulerCLI:
    def test_worker_command_drains_queue(self, tmp_path, capsys):
        queue = JobQueue(tmp_path / "q")
        queue.submit([_spec(seed=s) for s in (0, 1)])
        code = main(["worker", os.fspath(tmp_path / "q"),
                     "--cache-dir", os.fspath(tmp_path / "cache"),
                     "--worker-id", "cli-worker"])
        assert code == 0
        assert "2 completed" in capsys.readouterr().out
        assert queue.drained()

    def test_sweep_command_end_to_end(self, tmp_path, capsys):
        code = main(["sweep",
                     "--queue-dir", os.fspath(tmp_path / "q"),
                     "--cache-dir", os.fspath(tmp_path / "cache"),
                     "--model", "er", "--model", "ba",
                     "--dataset", SMALLEST, "--profile", "smoke",
                     "--seed", "0", "--seed", "1",
                     "--workers", "2", "--with-metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 completed" in out
        assert "0 duplicate fit(s)" in out
        assert "mean R" in out

    def test_sweep_submit_only_then_worker(self, tmp_path, capsys):
        queue_dir = os.fspath(tmp_path / "q")
        cache_dir = os.fspath(tmp_path / "cache")
        assert main(["sweep", "--queue-dir", queue_dir,
                     "--cache-dir", cache_dir,
                     "--model", "er", "--dataset", SMALLEST,
                     "--profile", "smoke", "--submit-only"]) == 0
        assert "submitted" in capsys.readouterr().out
        assert JobQueue(queue_dir).counts()["pending"] == 1
        assert main(["worker", queue_dir, "--cache-dir", cache_dir]) == 0
        assert JobQueue(queue_dir).drained()

    def test_sweep_override_axis(self, tmp_path, capsys):
        code = main(["sweep",
                     "--queue-dir", os.fspath(tmp_path / "q"),
                     "--cache-dir", os.fspath(tmp_path / "cache"),
                     "--model", "gae", "--dataset", SMALLEST,
                     "--profile", "smoke", "--seed", "3",
                     "--set", "epochs=2",
                     "--workers", "1"])
        assert code == 0
        spec = ExperimentSpec(model="gae", dataset=SMALLEST,
                              profile="smoke", seed=3,
                              overrides={"epochs": 2})
        assert JobQueue(tmp_path / "q").payload(
            spec.cache_key())["state"] == "done"

    def test_sweep_rejects_malformed_set(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--queue-dir", os.fspath(tmp_path / "q"),
                  "--cache-dir", os.fspath(tmp_path / "cache"),
                  "--model", "er", "--dataset", SMALLEST,
                  "--set", "not-a-pair"])
