"""Tests for transformer components: mask, positions, attention, block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (MultiHeadSelfAttention, Tensor, TransformerBlock,
                      causal_mask, sinusoidal_positions)
from repro.nn.gradcheck import check_gradients


class TestCausalMask:
    def test_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert (np.tril(mask) == 0).all()
        assert (mask[np.triu_indices(4, k=1)] == -1e9).all()

    def test_length_one(self):
        assert causal_mask(1).shape == (1, 1)
        assert causal_mask(1)[0, 0] == 0


class TestSinusoidalPositions:
    def test_shape(self):
        assert sinusoidal_positions(7, 6).shape == (7, 6)

    def test_odd_dim(self):
        enc = sinusoidal_positions(5, 5)
        assert enc.shape == (5, 5)
        assert np.isfinite(enc).all()

    def test_first_position_is_cosine_one(self):
        enc = sinusoidal_positions(3, 4)
        np.testing.assert_allclose(enc[0, 0::2], 0.0)  # sin(0)
        np.testing.assert_allclose(enc[0, 1::2], 1.0)  # cos(0)

    def test_positions_distinct(self):
        enc = sinusoidal_positions(10, 16)
        dists = np.linalg.norm(enc[:, None] - enc[None, :], axis=-1)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert (off_diag > 1e-6).all()


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(3, 5, 8)))
        assert attn(x).shape == (3, 5, 8)

    def test_dim_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng)

    def test_causal_mask_blocks_future(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        mask = causal_mask(4)
        out1 = attn(Tensor(x), mask).numpy().copy()
        x_mod = x.copy()
        x_mod[0, 3] += 10.0  # perturb the last position only
        out2 = attn(Tensor(x_mod), mask).numpy()
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)
        assert not np.allclose(out1[0, 3], out2[0, 3])

    def test_without_mask_all_positions_interact(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        out1 = attn(Tensor(x)).numpy().copy()
        x_mod = x.copy()
        x_mod[0, 3] += 10.0
        out2 = attn(Tensor(x_mod)).numpy()
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_gradients_flow_to_all_projections(self, rng):
        attn = MultiHeadSelfAttention(4, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)))
        attn(x, causal_mask(3)).sum().backward()
        for p in attn.parameters():
            assert p.grad is not None

    def test_gradcheck_small(self, rng):
        attn = MultiHeadSelfAttention(4, 1, rng)
        x = Tensor(rng.normal(size=(1, 2, 4)), requires_grad=True)
        check_gradients(lambda: attn(x).sum(), [x])


class TestTransformerBlock:
    def test_output_shape(self, rng):
        block = TransformerBlock(8, 2, rng)
        x = Tensor(rng.normal(size=(2, 5, 8)))
        assert block(x).shape == (2, 5, 8)

    def test_residual_path_exists(self, rng):
        """With zeroed sublayer outputs the block is the identity."""
        block = TransformerBlock(8, 2, rng)
        block.attn.out_proj.weight.data[:] = 0.0
        block.attn.out_proj.bias.data[:] = 0.0
        block.ff_out.weight.data[:] = 0.0
        block.ff_out.bias.data[:] = 0.0
        x = rng.normal(size=(1, 3, 8))
        np.testing.assert_allclose(block(Tensor(x)).numpy(), x, atol=1e-12)

    def test_causality_end_to_end(self, rng):
        block = TransformerBlock(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        mask = causal_mask(4)
        out1 = block(Tensor(x), mask).numpy().copy()
        x_mod = x.copy()
        x_mod[0, -1] += 5.0
        out2 = block(Tensor(x_mod), mask).numpy()
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)

    def test_all_parameters_receive_gradients(self, rng):
        block = TransformerBlock(4, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)))
        block(x, causal_mask(3)).sum().backward()
        missing = [n for n, p in block.named_parameters() if p.grad is None]
        assert not missing
