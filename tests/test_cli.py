"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "EMAIL", "--model", "er"])
        assert args.command == "generate"
        assert args.dataset == "EMAIL"
        assert args.seed == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "EMAIL", "--model", "bogus"])

    def test_augment_restricted_to_labeled(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["augment", "--dataset", "EMAIL", "--model", "fairgen"])

    def test_sweep_accumulates_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--queue-dir", "q", "--cache-dir", "c",
             "--model", "er", "--model", "ba", "--dataset", "EMAIL",
             "--seed", "0", "--seed", "1", "--set", "epochs=2"])
        assert args.model == ["er", "ba"]
        assert args.seed == [0, 1]
        assert args.overrides == ["epochs=2"]
        assert args.workers == 2

    def test_sweep_requires_queue_and_cache(self):
        # Validation happens in the command (not argparse) so that
        # --status can run without the grid arguments.
        with pytest.raises(SystemExit, match="--queue-dir"):
            main(["sweep", "--model", "er", "--dataset", "EMAIL"])

    def test_sweep_status_flag_parses_alone(self):
        args = build_parser().parse_args(["sweep", "--status", "qdir"])
        assert args.status == "qdir"

    def test_worker_args(self):
        args = build_parser().parse_args(
            ["worker", "queue", "--cache-dir", "c", "--max-jobs", "3"])
        assert args.queue_dir == "queue"
        assert args.max_jobs == 3
        assert not args.keep_alive


class TestCommands:
    def test_datasets_prints_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("EMAIL", "BLOG", "ACM"):
            assert name in out

    def test_generate_er(self, capsys):
        assert main(["generate", "--dataset", "EMAIL", "--model",
                     "er"]) == 0
        out = capsys.readouterr().out
        assert "generated" in out

    def test_evaluate_ba(self, capsys):
        assert main(["evaluate", "--dataset", "CA", "--model", "ba"]) == 0
        out = capsys.readouterr().out
        assert "mean R" in out

    def test_evaluate_fairgen_small(self, capsys):
        assert main(["evaluate", "--dataset", "BLOG", "--model", "fairgen",
                     "--cycles", "2", "--generator-steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "mean R+" in out

    def test_fairgen_on_unlabeled_without_surrogate_fails_cleanly(self):
        # Surrogate supervision is on by default; opting out restores the
        # old refusal for unlabeled datasets.
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "EMAIL", "--model", "fairgen",
                  "--no-surrogate-labels", "--profile", "smoke"])
