"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "EMAIL", "--model", "er"])
        assert args.command == "generate"
        assert args.dataset == "EMAIL"
        assert args.seed == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "EMAIL", "--model", "bogus"])

    def test_augment_restricted_to_labeled(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["augment", "--dataset", "EMAIL", "--model", "fairgen"])


class TestCommands:
    def test_datasets_prints_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("EMAIL", "BLOG", "ACM"):
            assert name in out

    def test_generate_er(self, capsys):
        assert main(["generate", "--dataset", "EMAIL", "--model",
                     "er"]) == 0
        out = capsys.readouterr().out
        assert "generated" in out

    def test_evaluate_ba(self, capsys):
        assert main(["evaluate", "--dataset", "CA", "--model", "ba"]) == 0
        out = capsys.readouterr().out
        assert "mean R" in out

    def test_evaluate_fairgen_small(self, capsys):
        assert main(["evaluate", "--dataset", "BLOG", "--model", "fairgen",
                     "--cycles", "2", "--generator-steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "mean R+" in out

    def test_fairgen_on_unlabeled_without_surrogate_fails_cleanly(self):
        # Surrogate supervision is on by default; opting out restores the
        # old refusal for unlabeled datasets.
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "EMAIL", "--model", "fairgen",
                  "--no-surrogate-labels", "--profile", "smoke"])
