"""Additional edge-case coverage across packages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.tsne import _calibrated_affinities, \
    pairwise_sq_distances
from repro.graph import Graph


class TestTSNEInternals:
    def test_affinities_hit_target_perplexity(self, rng):
        x = rng.normal(size=(25, 4))
        perplexity = 5.0
        p = _calibrated_affinities(pairwise_sq_distances(x), perplexity)
        # Each row's entropy should be ~log(perplexity).
        for row in p:
            nz = row[row > 0]
            entropy = float(-(nz * np.log(nz)).sum())
            assert entropy == pytest.approx(np.log(perplexity), abs=0.05)

    def test_affinities_rows_normalised(self, rng):
        x = rng.normal(size=(10, 3))
        p = _calibrated_affinities(pairwise_sq_distances(x), 3.0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_affinities_diagonal_zero(self, rng):
        x = rng.normal(size=(8, 3))
        p = _calibrated_affinities(pairwise_sq_distances(x), 2.0)
        np.testing.assert_allclose(np.diag(p), 0.0)


class TestContextSamplerDistribution:
    def test_label_guided_starts_class_uniform(self, rng):
        """With r=0, start classes should be ~uniform across classes even
        when class sizes are wildly imbalanced — this is the mechanism
        that protects the scarce group during training."""
        from repro.core import ContextSampler
        from repro.graph import planted_protected_graph

        graph, labels, _ = planted_protected_graph(
            90, 10, rng, p_in=0.3, p_out=0.02, num_classes=2,
            protected_as_class=True)
        sampler = ContextSampler(graph, 0.0, walk_length=4)
        # Label the whole graph so class pools mirror the imbalance.
        nodes = np.arange(graph.num_nodes)
        sampler.update_labels(nodes, labels)
        walks = sampler.sample(600, rng)
        start_classes = labels[walks[:, 0]]
        counts = np.bincount(start_classes, minlength=3)
        fractions = counts / counts.sum()
        # Class 2 (the 10-node protected class) must receive roughly its
        # uniform 1/3 share despite being 10% of the population.
        assert fractions[2] > 0.2


class TestGraphEdgeCases:
    def test_two_node_graph(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert g.num_edges == 1
        assert g.conductance([0]) == 1.0

    def test_subgraph_of_single_node(self, two_cliques_graph):
        sub = two_cliques_graph.subgraph([0])
        assert sub.num_nodes == 1
        assert sub.num_edges == 0

    def test_volume_of_empty_set(self, two_cliques_graph):
        assert two_cliques_graph.volume([]) == 0

    def test_cut_of_everything_is_zero(self, two_cliques_graph):
        assert two_cliques_graph.cut_size(list(range(8))) == 0

    def test_edges_empty_graph(self):
        g = Graph.from_edges(3, [])
        assert g.edges().shape == (0, 2)


class TestWalkLMTemperature:
    def test_low_temperature_concentrates(self, rng):
        """Near-zero temperature approaches greedy decoding: repeated
        sampling from the same state should agree more often than at
        temperature 1."""
        from repro.models import TransformerWalkModel

        model = TransformerWalkModel(12, 16, 2, 1, 6, rng)

        def agreement(temp: float) -> float:
            walks = model.sample(40, 6, np.random.default_rng(3),
                                 temperature=temp,
                                 starts=np.zeros(40, dtype=int))
            # Fraction of walks identical to the most common one.
            unique, counts = np.unique(walks, axis=0, return_counts=True)
            return counts.max() / 40.0

        assert agreement(0.05) >= agreement(1.0)


class TestDiscrepancyNaN:
    def test_nan_metric_propagates_not_crashes(self):
        """PLE is NaN on an empty subgraph; discrepancy must stay NaN."""
        from repro.eval import relative_discrepancy

        assert np.isnan(relative_discrepancy(float("nan"), float("nan")))

    def test_mean_discrepancy_skips_nan(self):
        from repro.eval import mean_discrepancy

        value = mean_discrepancy({"a": float("nan"), "b": 2.0})
        assert value == pytest.approx(2.0)


class TestSelfPacedCap:
    def test_cap_limits_admissions_per_class(self):
        from repro.core import SelfPacedState

        state = SelfPacedState(20, 2, np.array([0]), np.array([0]),
                               lambda_init=10.0, lambda_growth=1.5)
        logp = np.full((20, 2), -0.1)  # everything confidently admitted
        state.update(logp, max_per_class=3)
        # Class 1: exactly the cap; class 0: cap + the ground-truth pin.
        assert state.v[:, 1].sum() == 3
        assert state.v[:, 0].sum() <= 4

    def test_cap_keeps_most_confident(self):
        from repro.core import SelfPacedState

        state = SelfPacedState(5, 2, np.array([0]), np.array([0]),
                               lambda_init=10.0, lambda_growth=1.5)
        logp = np.full((5, 2), -5.0)
        logp[[1, 2, 3], 1] = [-0.1, -0.2, -0.3]
        state.update(logp, max_per_class=2)
        assert state.v[1, 1] == 1 and state.v[2, 1] == 1
        assert state.v[3, 1] == 0

    def test_negative_cap_rejected(self):
        from repro.core import SelfPacedState

        state = SelfPacedState(4, 2, np.array([0]), np.array([0]),
                               lambda_init=1.0, lambda_growth=1.5)
        with pytest.raises(ValueError):
            state.update(np.zeros((4, 2)), max_per_class=-1)
