"""Regenerate ``train_parity.json`` — pinned digests of seeded fits.

The fixture pins the exact fitted parameters and loss history every
trainable model produces for a fixed (graph, config, seed) triple.  It
was generated against the pre-``repro.train`` hand-rolled fit loops, so
``tests/test_train.py::TestSeededParity`` proves the Trainer-backed
loops reproduce the legacy numerics bit for bit.

Run from the repo root to regenerate (only needed when a model's
training numerics change *intentionally*)::

    PYTHONPATH=src python tests/fixtures/generate_train_parity.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

FIXTURE_PATH = Path(__file__).with_name("train_parity.json")

#: one fixed seed for every model's fit stream
FIT_SEED = 2024


def parity_graph():
    """The shared small labeled graph every parity fit runs on."""
    from repro.graph import planted_protected_graph

    rng = np.random.default_rng(7)
    return planted_protected_graph(48, 12, rng, p_in=0.3, p_out=0.03,
                                   num_classes=2, protected_as_class=True)


def parity_supervision(labels: np.ndarray):
    """Deterministic 3-per-class labeled set (no RNG involved)."""
    nodes = np.concatenate([np.flatnonzero(labels == cls)[:3]
                            for cls in range(int(labels.max()) + 1)])
    return nodes.astype(np.int64), labels[nodes].astype(np.int64)


def build_models():
    """The five trainable models under small-but-real budgets."""
    from repro.core import FairGenConfig
    from repro.core.fairgen import FairGen
    from repro.models import GAEModel, GraphRNN, NetGAN, TagGen

    return {
        "taggen": lambda: TagGen(epochs=3, walks_per_epoch=48, batch_size=16,
                                 dim=16, num_heads=2, num_layers=1,
                                 walk_length=8),
        "gae": lambda: GAEModel(epochs=12, hidden=16, latent=8),
        "graphrnn": lambda: GraphRNN(epochs=3, sequences_per_epoch=2,
                                     hidden_dim=16, max_bandwidth=32),
        "netgan": lambda: NetGAN(iterations=3, batch_size=12, walk_length=6,
                                 hidden_dim=16, node_dim=8, critic_steps=2),
        "fairgen": lambda: FairGen(FairGenConfig(
            walk_length=8, walks_per_cycle=32, self_paced_cycles=3,
            generator_steps_per_cycle=2, generator_batch=16, model_dim=16,
            num_layers=1, feature_dim=16, batch_iterations=2,
            batch_size=32, generation_walk_factor=6)),
    }


def state_digest(state: dict[str, np.ndarray]) -> str:
    """Order-independent SHA-256 over named arrays (names + exact bytes)."""
    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def history_digest(history) -> str:
    """SHA-256 of the loss history (float repr round-trips exactly)."""
    return hashlib.sha256(
        json.dumps(history, sort_keys=True).encode()).hexdigest()


def fit_model(name: str):
    graph, labels, protected = parity_graph()
    model = build_models()[name]()
    rng = np.random.default_rng(FIT_SEED)
    if name == "fairgen":
        nodes, classes = parity_supervision(labels)
        model.fit(graph, rng, labeled_nodes=nodes, labeled_classes=classes,
                  protected_mask=protected,
                  num_classes=int(labels.max()) + 1)
        history = model.history
    else:
        model.fit(graph, rng)
        history = (model.critic_history if name == "netgan"
                   else model.loss_history)
    return model, history


def compute_digests() -> dict[str, dict[str, str]]:
    out = {}
    for name in build_models():
        model, history = fit_model(name)
        out[name] = {"state": state_digest(model.state_dict()),
                     "history": history_digest(history)}
    return out


if __name__ == "__main__":
    digests = compute_digests()
    FIXTURE_PATH.write_text(json.dumps(digests, indent=2) + "\n")
    print(f"wrote {FIXTURE_PATH}")
    for name, entry in digests.items():
        print(f"  {name}: state={entry['state'][:12]}... "
              f"history={entry['history'][:12]}...")
