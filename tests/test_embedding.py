"""Tests for SGNS word2vec, node2vec, t-SNE and separability scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (Node2VecConfig, SkipGramModel,
                             centroid_separability, node2vec_embedding,
                             pairwise_sq_distances, silhouette_score, tsne,
                             unigram_table, walks_to_pairs)
from repro.graph import Graph, planted_protected_graph, sample_walks


class TestWalksToPairs:
    def test_window_one(self):
        walks = np.array([[0, 1, 2]])
        pairs = walks_to_pairs(walks, window=1)
        as_set = set(map(tuple, pairs.tolist()))
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_two_includes_distance_two(self):
        walks = np.array([[0, 1, 2]])
        pairs = set(map(tuple, walks_to_pairs(walks, window=2).tolist()))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_window_larger_than_walk(self):
        pairs = walks_to_pairs(np.array([[0, 1]]), window=10)
        assert len(pairs) == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            walks_to_pairs(np.array([[0, 1]]), window=0)

    def test_too_short_walks(self):
        with pytest.raises(ValueError):
            walks_to_pairs(np.array([[0]]), window=1)


class TestUnigramTable:
    def test_sums_to_one(self):
        walks = np.array([[0, 1, 1, 2]])
        p = unigram_table(walks, 4)
        assert p.sum() == pytest.approx(1.0)

    def test_smoothing_flattens(self):
        walks = np.array([[0] * 99 + [1]])
        p_flat = unigram_table(walks, 2, power=0.5)
        p_raw = unigram_table(walks, 2, power=1.0)
        assert p_flat[1] > p_raw[1]

    def test_unseen_nodes_tiny_mass(self):
        p = unigram_table(np.array([[0, 1]]), 5)
        assert (p[2:] < p[0]).all()


class TestSkipGram:
    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            SkipGramModel(0, 8, rng)

    def test_training_reduces_loss(self, two_cliques_graph, rng):
        walks = sample_walks(two_cliques_graph, 200, 8, rng)
        model = SkipGramModel(8, 16, rng)
        history = model.train(walks, window=2, epochs=5, lr=0.1)
        assert history[-1] < history[0]

    def test_clique_members_closer_than_strangers(self, two_cliques_graph,
                                                  rng):
        walks = sample_walks(two_cliques_graph, 400, 8, rng)
        model = SkipGramModel(8, 16, rng)
        model.train(walks, window=2, epochs=8, lr=0.1)
        v = model.vectors
        same = np.linalg.norm(v[0] - v[1])
        cross = np.linalg.norm(v[0] - v[6])
        assert same < cross


class TestNode2Vec:
    def test_embedding_shape(self, two_cliques_graph, rng):
        config = Node2VecConfig(dim=8, walks_per_node=3, epochs=1)
        emb = node2vec_embedding(two_cliques_graph, config, rng)
        assert emb.shape == (8, 8)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Node2VecConfig(dim=0)

    def test_all_nodes_covered(self, rng):
        """Even an isolated-ish node gets a non-zero embedding update."""
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        emb = node2vec_embedding(g, Node2VecConfig(dim=4, epochs=1), rng)
        assert np.abs(emb).sum(axis=1).min() > 0


class TestPairwiseDistances:
    def test_matches_manual(self, rng):
        x = rng.normal(size=(5, 3))
        d = pairwise_sq_distances(x)
        manual = ((x[:, None] - x[None, :]) ** 2).sum(-1)
        np.testing.assert_allclose(d, manual, atol=1e-10)

    def test_diagonal_zero(self, rng):
        d = pairwise_sq_distances(rng.normal(size=(4, 2)))
        np.testing.assert_allclose(np.diag(d), 0.0)


class TestTSNE:
    def test_output_shape(self, rng):
        x = rng.normal(size=(30, 10))
        y = tsne(x, dim=2, iterations=50, rng=rng)
        assert y.shape == (30, 2)

    def test_too_few_points(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(2, 4)))

    def test_separated_clusters_stay_separated(self, rng):
        """Two well-separated Gaussian blobs must stay separable in 2-D."""
        a = rng.normal(size=(20, 8))
        b = rng.normal(size=(20, 8)) + 30.0
        y = tsne(np.vstack([a, b]), iterations=150, rng=rng)
        labels = np.array([0] * 20 + [1] * 20)
        assert centroid_separability(y, labels == 1) > 0.9


class TestSilhouette:
    def test_perfectly_separated(self):
        points = np.array([[0.0, 0], [0.1, 0], [10, 0], [10.1, 0]])
        labels = np.array([0, 0, 1, 1])
        assert silhouette_score(points, labels) > 0.9

    def test_mixed_groups_near_zero(self, rng):
        points = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(3))

    def test_singleton_group_contributes_zero(self):
        points = np.array([[0.0, 0], [1, 0], [2, 0]])
        labels = np.array([0, 0, 1])
        score = silhouette_score(points, labels)
        assert np.isfinite(score)


class TestCentroidSeparability:
    def test_separated(self):
        pts = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 10])
        mask = np.array([False] * 5 + [True] * 5)
        assert centroid_separability(pts, mask) == 1.0

    def test_degenerate_groups_rejected(self):
        with pytest.raises(ValueError):
            centroid_separability(np.zeros((3, 2)),
                                  np.array([True, True, True]))

    def test_protected_cluster_detected_after_embedding(self, rng):
        """End-to-end: planted protected block is separable via node2vec."""
        graph, _, protected = planted_protected_graph(
            60, 15, rng, p_in=0.4, p_out=0.01, protected_as_class=True)
        emb = node2vec_embedding(
            graph, Node2VecConfig(dim=16, epochs=4, walks_per_node=8), rng)
        assert centroid_separability(emb, protected) > 0.75
