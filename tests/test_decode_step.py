"""Parity and hygiene tests for the whole-step ``decode_step`` kernel.

The compound primitive (``Backend.decode_step``) must reproduce the
per-op reference byte for byte under every backend held to the
bit-identity bar, in all three of its modes:

* uniform prefill/decode (the :class:`WalkDecoder` path),
* ragged single-token serving decode (the batcher steady state),
* ragged multi-token catch-up (admission at ``lookahead > 1``).

It must also never mutate its inputs — tokens, mask, model parameters —
even when the fused backend runs the step in caller-owned scratch
buffers, and the logits it returns must be freshly allocated (never a
scratch view a later call would clobber).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.walk_lm import TransformerWalkModel
from repro.nn import (WalkDecoder, active_backend, available_backends,
                      causal_mask, set_backend)
from repro.nn.attention import LayerKVCache
from repro.nn.backend import scratch_buffer
from repro.nn.inference import _WalkWeights
from repro.serve.engine import ContinuousBatcher

BIT_IDENTICAL = [name for name in available_backends()
                 if name in ("numpy", "fused")]


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = active_backend().name
    yield
    set_backend(previous)


@pytest.fixture(scope="module")
def model():
    m = TransformerWalkModel(num_nodes=40, dim=16, num_heads=2,
                             num_layers=2, max_length=24,
                             rng=np.random.default_rng(7))
    m.eval()
    return m


def _fresh_caches(weights, batch_capacity=None):
    return [LayerKVCache(capacity=weights.positions.shape[0])
            for _ in weights.blocks]


# ----------------------------------------------------------------------
# Uniform mode: decode_step vs the per-op loop
# ----------------------------------------------------------------------
class TestUniformParity:
    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_prefill_and_steps_match_per_op_reference(self, model, backend):
        set_backend(backend)
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, 40, size=(5, 4))

        ref = WalkDecoder(model, per_op=True)
        fused = WalkDecoder(model)
        ref_logits = ref.prefill(prompt)
        fused_logits = fused.prefill(prompt)
        np.testing.assert_array_equal(fused_logits, ref_logits)

        for _ in range(6):
            ids = rng.integers(0, 40, size=5)
            np.testing.assert_array_equal(fused.step(ids), ref.step(ids))

    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_sampled_walks_match_reference_oracle(self, model, backend):
        set_backend(backend)
        walks = model.sample(6, 10, np.random.default_rng(5))
        oracle = model.sample_reference(6, 10, np.random.default_rng(5))
        np.testing.assert_array_equal(walks, oracle)

    def test_backends_agree_with_each_other(self, model):
        rng = np.random.default_rng(9)
        prompt = rng.integers(0, 40, size=(3, 2))
        outs = {}
        for backend in BIT_IDENTICAL:
            set_backend(backend)
            dec = WalkDecoder(model)
            logits = dec.prefill(prompt)
            logits = dec.step(np.argmax(logits, axis=1))
            outs[backend] = logits
        baseline = outs.pop("numpy")
        for backend, logits in outs.items():
            np.testing.assert_array_equal(logits, baseline, err_msg=backend)


# ----------------------------------------------------------------------
# Ragged serving mode
# ----------------------------------------------------------------------
class TestRaggedParity:
    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_single_token_groups_match_uniform_per_request(self, model,
                                                           backend):
        """A coalesced ragged step equals each request decoded alone."""
        set_backend(backend)
        weights = _WalkWeights(model)
        rng = np.random.default_rng(21)

        # Two requests at different walk lengths, prefilled in isolation.
        prompts = [rng.integers(0, 40, size=(3, 2)),
                   rng.integers(0, 40, size=(2, 5))]
        decoders = []
        for p in prompts:
            d = WalkDecoder(model)
            d.prefill(p)
            decoders.append(d)

        caches = _fresh_caches(weights)
        for cache, d0, d1 in zip(caches, decoders[0].caches,
                                 decoders[1].caches):
            cache.append_cache(d0)
            cache.append_cache(d1)

        ids = rng.integers(0, 40, size=5)
        groups = [(0, 3, 3), (3, 5, 6)]
        ragged = active_backend().decode_step(
            weights, caches, ids[:, None], caches[0].row_lengths,
            groups=groups, scratch={})
        solo = np.concatenate([decoders[0].step(ids[:3]),
                               decoders[1].step(ids[3:])])
        np.testing.assert_array_equal(ragged, solo)

    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_multi_token_catch_up_matches_prefill(self, model, backend):
        """L>1 ragged decode over fresh rows == a uniform prefill."""
        set_backend(backend)
        weights = _WalkWeights(model)
        rng = np.random.default_rng(33)
        prompt = rng.integers(0, 40, size=(4, 3))

        ref = WalkDecoder(model, per_op=True)
        expected = ref.prefill(prompt)

        caches = _fresh_caches(weights)
        T = prompt.shape[1]
        got = active_backend().decode_step(
            weights, caches, prompt, np.zeros(4, dtype=np.int64),
            mask=causal_mask(T), groups=[(0, 4, T)], scratch={})
        np.testing.assert_array_equal(got, expected)
        for cache, ref_cache in zip(caches, ref.caches):
            np.testing.assert_array_equal(cache.row_lengths,
                                          np.full(4, T))
            k_got, v_got = cache.rows_view(0, 4, T)
            k_ref, v_ref = ref_cache.rows_view(0, 4, T)
            np.testing.assert_array_equal(k_got, k_ref)
            np.testing.assert_array_equal(v_got, v_ref)


# ----------------------------------------------------------------------
# Engine lookahead byte-identity
# ----------------------------------------------------------------------
class TestLookahead:
    def _model(self):
        m = TransformerWalkModel(num_nodes=12, dim=16, num_heads=2,
                                 num_layers=2, max_length=20,
                                 rng=np.random.default_rng(3))
        m.eval()
        return m

    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError, match="lookahead"):
            ContinuousBatcher(self._model(), lookahead=0)

    @pytest.mark.parametrize("lookahead", [2, 4])
    def test_served_walks_byte_identical_across_lookahead(self, lookahead):
        m = self._model()
        results = {}
        for k in (1, lookahead):
            engine = ContinuousBatcher(m, max_walks=16, lookahead=k)
            tickets = [engine.submit(3, 8, np.random.default_rng(100 + i))
                       for i in range(3)]
            engine.drain()
            results[k] = [t.result(timeout=0) for t in tickets]
        for a, b in zip(results[1], results[lookahead]):
            np.testing.assert_array_equal(a, b)

    def test_mid_stream_admission_at_lookahead_gt_1(self):
        """A request admitted mid-stream (different walk lengths resident)
        still decodes byte-identically to standalone ``sample``."""
        m = self._model()
        engine = ContinuousBatcher(m, max_walks=4, lookahead=3)
        # First request fills the batch; the second (submitted before any
        # stepping, but too big to co-reside) is admitted mid-stream once
        # the first finishes — at a different batch clock.
        t1 = engine.submit(3, 6, np.random.default_rng(1))
        t2 = engine.submit(3, 12, np.random.default_rng(2))
        t3 = engine.submit(1, 9, np.random.default_rng(3))
        engine.drain()
        np.testing.assert_array_equal(
            t1.result(timeout=0), m.sample(3, 6, np.random.default_rng(1)))
        np.testing.assert_array_equal(
            t2.result(timeout=0), m.sample(3, 12, np.random.default_rng(2)))
        np.testing.assert_array_equal(
            t3.result(timeout=0), m.sample(1, 9, np.random.default_rng(3)))

    def test_lookahead_decodes_multiple_tokens_per_tick(self):
        m = self._model()
        engine = ContinuousBatcher(m, max_walks=8, lookahead=4)
        ticket = engine.submit(2, 9, np.random.default_rng(4))
        rows = engine.step()
        # prefill consumed one token; the single tick advanced up to 4 of
        # the remaining 8, two rows each.
        assert rows == 8
        assert not ticket.done
        engine.drain()
        assert ticket.result(timeout=0).shape == (2, 9)

    def test_decode_rows_histogram_visible_in_metrics(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        m = self._model()
        engine = ContinuousBatcher(m, max_walks=8, lookahead=2,
                                   registry=registry, name="eng0")
        engine.submit(2, 6, np.random.default_rng(8))
        engine.drain()
        text = registry.render_prometheus()
        assert "serve_engine_decode_rows_per_call" in text


# ----------------------------------------------------------------------
# Input hygiene
# ----------------------------------------------------------------------
class TestNoInputMutation:
    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_decode_step_does_not_mutate_inputs(self, model, backend):
        set_backend(backend)
        weights = _WalkWeights(model)
        rng = np.random.default_rng(13)
        tokens = rng.integers(0, 40, size=(3, 4))
        tokens_copy = tokens.copy()
        mask = causal_mask(4)
        mask_copy = mask.copy()
        param_copies = [(blk.q[0].copy(), blk.ff_in[0].copy())
                        for blk in weights.blocks]
        embed_copy = weights.embed.copy()

        caches = _fresh_caches(weights)
        scratch = {}
        active_backend().decode_step(weights, caches, tokens, 0,
                                     mask=mask, scratch=scratch)

        np.testing.assert_array_equal(tokens, tokens_copy)
        np.testing.assert_array_equal(mask, mask_copy)
        np.testing.assert_array_equal(weights.embed, embed_copy)
        for blk, (q_w, ff_w) in zip(weights.blocks, param_copies):
            np.testing.assert_array_equal(blk.q[0], q_w)
            np.testing.assert_array_equal(blk.ff_in[0], ff_w)

    @pytest.mark.parametrize("backend", BIT_IDENTICAL)
    def test_returned_logits_survive_scratch_reuse(self, model, backend):
        """Logits must be fresh allocations, not views of scratch."""
        set_backend(backend)
        weights = _WalkWeights(model)
        rng = np.random.default_rng(17)
        caches = _fresh_caches(weights)
        scratch = {}
        backend_obj = active_backend()
        prompt = rng.integers(0, 40, size=(2, 3))
        first = backend_obj.decode_step(weights, caches, prompt, 0,
                                        mask=causal_mask(3),
                                        scratch=scratch)
        held = first.copy()
        backend_obj.decode_step(weights, caches,
                                rng.integers(0, 40, size=(2, 1)), 3,
                                scratch=scratch)
        np.testing.assert_array_equal(first, held)


class TestScratchBuffer:
    def test_none_scratch_allocates_fresh(self):
        a = scratch_buffer(None, "x", (2, 3))
        b = scratch_buffer(None, "x", (2, 3))
        assert a is not b

    def test_dict_scratch_reuses_matching_shape(self):
        scratch = {}
        a = scratch_buffer(scratch, "x", (2, 3))
        b = scratch_buffer(scratch, "x", (2, 3))
        assert a is b

    def test_dict_scratch_reallocates_on_shape_change(self):
        scratch = {}
        a = scratch_buffer(scratch, "x", (2, 3))
        b = scratch_buffer(scratch, "x", (4, 3))
        assert a is not b
        assert b.shape == (4, 3)
        assert scratch_buffer(scratch, "x", (4, 3)) is b
