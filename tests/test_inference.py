"""Tests for the KV-cached incremental decoding subsystem.

Covers the three layers of the inference path: the per-layer KV cache in
``MultiHeadSelfAttention``/``TransformerBlock``, the grad-free
``WalkDecoder``, and the rewritten ``TransformerWalkModel.sample`` —
whose seeded output must be byte-identical to ``sample_reference``, the
slow path that recomputes the full prefix every step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.walk_lm import TransformerWalkModel
from repro.nn import LayerKVCache, Tensor, WalkDecoder, causal_mask, no_grad
from repro.nn.attention import MultiHeadSelfAttention, TransformerBlock


@pytest.fixture
def model(rng) -> TransformerWalkModel:
    m = TransformerWalkModel(num_nodes=30, dim=16, num_heads=4,
                             num_layers=2, max_length=24, rng=rng)
    return m.eval()


class TestCausalMaskCache:
    def test_values_unchanged(self):
        mask = causal_mask(5)
        assert mask.shape == (5, 5)
        assert mask[0, 1] == -1e9 and mask[1, 0] == 0.0
        assert np.all(np.tril(mask) == 0.0)

    def test_memoised_and_read_only(self):
        assert causal_mask(7) is causal_mask(7)
        with pytest.raises(ValueError):
            causal_mask(7)[0, 0] = 1.0


class TestLayerKVCache:
    def test_append_grows_time_axis(self, rng):
        cache = LayerKVCache()
        assert cache.length == 0
        k1 = rng.normal(size=(2, 4, 3, 8))
        cache.append(k1, k1.copy())
        assert cache.length == 3
        cache.append(k1[:, :, :1], k1[:, :, :1].copy())
        assert cache.length == 4

    def test_preallocated_matches_concatenating_mode(self, rng):
        grow = LayerKVCache()
        fixed = LayerKVCache(capacity=5)
        chunks = [rng.normal(size=(2, 4, t, 8)) for t in (3, 1, 1)]
        for chunk in chunks:
            k_grow, v_grow = grow.append(chunk, chunk + 1.0)
            k_fix, v_fix = fixed.append(chunk, chunk + 1.0)
            np.testing.assert_array_equal(k_grow, k_fix)
            np.testing.assert_array_equal(v_grow, v_fix)
        assert fixed.length == 5

    def test_capacity_overflow_rejected(self, rng):
        cache = LayerKVCache(capacity=2)
        k = rng.normal(size=(1, 2, 2, 4))
        cache.append(k, k.copy())
        with pytest.raises(ValueError, match="capacity"):
            cache.append(k[:, :, :1], k[:, :, :1].copy())

    def test_attention_cached_decode_matches_full_forward(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng)
        x = Tensor(rng.normal(size=(3, 6, 16)))
        with no_grad():
            full = attn(x, causal_mask(6)).numpy()
            cache = LayerKVCache()
            prefix = attn(Tensor(x.numpy()[:, :4]), causal_mask(4),
                          cache=cache).numpy()
            np.testing.assert_allclose(prefix, full[:, :4], atol=1e-12)
            for t in range(4, 6):
                step = attn(Tensor(x.numpy()[:, t: t + 1]),
                            cache=cache).numpy()
                np.testing.assert_allclose(step[:, 0], full[:, t],
                                           atol=1e-12)
        assert cache.length == 6

    def test_block_cached_decode_matches_full_forward(self, rng):
        block = TransformerBlock(16, 4, rng)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        with no_grad():
            full = block(x, causal_mask(5)).numpy()
            cache = LayerKVCache()
            out = block(Tensor(x.numpy()[:, :3]), causal_mask(3),
                        cache=cache).numpy()
            np.testing.assert_allclose(out, full[:, :3], atol=1e-12)
            for t in range(3, 5):
                step = block(Tensor(x.numpy()[:, t: t + 1]),
                             cache=cache).numpy()
                np.testing.assert_allclose(step[:, 0], full[:, t],
                                           atol=1e-12)

    def test_cache_under_autograd_rejected(self, rng):
        """Misuse guard: the cache silently detaches k/v, so using it
        while gradients are enabled must fail fast, not corrupt grads."""
        attn = MultiHeadSelfAttention(16, 4, rng)
        x = Tensor(rng.normal(size=(1, 2, 16)))
        with pytest.raises(RuntimeError, match="inference-only"):
            attn(x, causal_mask(2), cache=LayerKVCache())


class TestWalkDecoder:
    def test_prefill_then_steps_match_forward_logits(self, model):
        tokens = np.array([[30, 3, 7, 1, 12], [30, 9, 9, 2, 0]])
        want = model.forward(tokens).numpy()[:, -1, :]

        decoder = WalkDecoder(model)
        got = decoder.prefill(tokens[:, :2])
        for t in range(2, tokens.shape[1]):
            got = decoder.step(tokens[:, t])
        np.testing.assert_allclose(got, want, atol=1e-12)
        assert decoder.length == tokens.shape[1]

    def test_step_before_prefill_rejected(self, model):
        with pytest.raises(RuntimeError, match="prefill"):
            WalkDecoder(model).step(np.array([1]))

    def test_double_prefill_rejected(self, model):
        decoder = WalkDecoder(model)
        decoder.prefill(np.array([[30]]))
        with pytest.raises(RuntimeError, match="first"):
            decoder.prefill(np.array([[30]]))

    def test_decoding_past_maximum_rejected(self, model):
        decoder = WalkDecoder(model)
        decoder.prefill(np.full((1, model.max_length + 1), model.start_token))
        with pytest.raises(ValueError, match="maximum"):
            decoder.step(np.array([0]))

    def test_no_autograd_state_allocated(self, model):
        """Decoding is raw ndarrays: no graph even with grad enabled."""
        decoder = WalkDecoder(model)
        out = decoder.prefill(np.array([[30, 2]]))
        assert isinstance(out, np.ndarray)
        assert all(p.grad is None for p in model.parameters())


class TestSampleParity:
    """Seeded KV-cached sampling must match the full-recompute oracle
    byte for byte: same walks, same RNG consumption."""

    def check(self, model, num_walks, length, **kwargs):
        fast = model.sample(num_walks, length,
                            np.random.default_rng(77), **kwargs)
        slow = model.sample_reference(num_walks, length,
                                      np.random.default_rng(77), **kwargs)
        np.testing.assert_array_equal(fast, slow)
        assert fast.shape == (num_walks, length)
        assert fast.min() >= 0 and fast.max() < model.num_nodes
        return fast

    def test_plain(self, model):
        self.check(model, 12, model.max_length)

    def test_shorter_than_max_length(self, model):
        self.check(model, 12, model.max_length // 2)

    def test_temperature(self, model):
        hot = self.check(model, 12, 10, temperature=1.7)
        cold = self.check(model, 12, 10, temperature=0.4)
        assert not np.array_equal(hot, cold)

    def test_pinned_starts(self, model, rng):
        starts = rng.integers(model.num_nodes, size=12)
        walks = self.check(model, 12, 10, starts=starts)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_pinned_starts_with_length_one(self, model, rng):
        starts = rng.integers(model.num_nodes, size=5)
        walks = self.check(model, 5, 1, starts=starts)
        np.testing.assert_array_equal(walks, starts[:, None])

    def test_rng_stream_position_identical_after_sampling(self, model):
        """Both paths must leave the generator at the same position."""
        rng_fast = np.random.default_rng(5)
        rng_slow = np.random.default_rng(5)
        model.sample(6, 9, rng_fast)
        model.sample_reference(6, 9, rng_slow)
        assert rng_fast.random() == rng_slow.random()

    def test_invalid_arguments_rejected(self, model):
        with pytest.raises(ValueError, match="temperature"):
            model.sample(2, 5, np.random.default_rng(0), temperature=0.0)
        with pytest.raises(ValueError, match="maximum"):
            model.sample(2, model.max_length + 1, np.random.default_rng(0))

    def test_sampling_leaves_no_gradients(self, model):
        model.sample(4, 8, np.random.default_rng(1))
        assert all(p.grad is None for p in model.parameters())


class TestSampleChunked:
    def test_concatenates_chunks(self, model):
        walks = model.sample_chunked(10, 8, np.random.default_rng(3),
                                     chunk=4)
        assert walks.shape == (10, 8)

    def test_matches_manual_chunk_loop(self, model):
        # A manual loop over one shared generator is the chunking
        # contract TagGen/FairGen relied on before sample_chunked.
        rng_manual = np.random.default_rng(3)
        want = np.concatenate([model.sample(4, 8, rng_manual)
                               for _ in range(3)], axis=0)
        got = model.sample_chunked(12, 8, np.random.default_rng(3), chunk=4)
        np.testing.assert_array_equal(got, want)

    def test_starts_fn_pins_each_chunk(self, model):
        calls = []

        def starts_fn(take, rng_):
            calls.append(take)
            return np.zeros(take, dtype=np.int64)

        walks = model.sample_chunked(10, 6, np.random.default_rng(4),
                                     chunk=4, starts_fn=starts_fn)
        assert calls == [4, 4, 2]
        np.testing.assert_array_equal(walks[:, 0], np.zeros(10))


class TestLayerKVCacheRowOps:
    """Row-level insert/evict/compact: the serving engine's cache mode."""

    def _filled(self, rng, rows, length, capacity=6):
        cache = LayerKVCache(capacity=capacity)
        k = rng.normal(size=(rows, 2, length, 4))
        cache.append(k, k + 1.0)
        return cache, k

    def test_append_cache_transplants_rows(self, rng):
        a, k_a = self._filled(rng, 2, 3)
        b, k_b = self._filled(rng, 3, 5)
        a.append_cache(b)
        assert a.num_rows == 5
        np.testing.assert_array_equal(a.row_lengths, [3, 3, 5, 5, 5])
        k_rows, _ = a.rows_view(0, 2, 3)
        np.testing.assert_array_equal(k_rows, k_a)
        k_rows, v_rows = a.rows_view(2, 5, 5)
        np.testing.assert_array_equal(k_rows, k_b)
        np.testing.assert_array_equal(v_rows, k_b + 1.0)

    def test_append_cache_requires_matching_capacity(self, rng):
        a, _ = self._filled(rng, 1, 2, capacity=6)
        b, _ = self._filled(rng, 1, 2, capacity=7)
        with pytest.raises(ValueError, match="capacity"):
            a.append_cache(b)

    def test_append_cache_rejects_growable_donor(self, rng):
        a, _ = self._filled(rng, 1, 2)
        donor = LayerKVCache()  # concatenating mode, no capacity
        k = rng.normal(size=(1, 2, 2, 4))
        donor.append(k, k.copy())
        with pytest.raises(ValueError, match="preallocated"):
            a.append_cache(donor)

    def test_gather_rows_evicts_and_compacts(self, rng):
        a, k_a = self._filled(rng, 2, 3)
        b, k_b = self._filled(rng, 3, 5)
        a.append_cache(b)
        a.gather_rows(np.array([0, 3, 4]))  # drop row 1 and b's first row
        assert a.num_rows == 3
        np.testing.assert_array_equal(a.row_lengths, [3, 5, 5])
        k_rows, _ = a.rows_view(0, 1, 3)
        np.testing.assert_array_equal(k_rows, k_a[:1])
        k_rows, _ = a.rows_view(1, 3, 5)
        np.testing.assert_array_equal(k_rows, k_b[1:])

    def test_gather_all_rows_resets_to_pristine(self, rng):
        cache, _ = self._filled(rng, 2, 3)
        cache.gather_rows(np.empty(0, dtype=np.int64))
        assert cache.num_rows == 0 and cache.length == 0
        # the cache is reusable afterwards, as if freshly constructed
        k = rng.normal(size=(1, 2, 2, 4))
        cache.append(k, k.copy())
        assert cache.length == 2

    def test_append_ragged_advances_per_row_lengths(self, rng):
        a, _ = self._filled(rng, 2, 3)
        b, _ = self._filled(rng, 1, 5)
        a.append_cache(b)
        k_new = rng.normal(size=(3, 2, 1, 4))
        a.append_ragged(k_new, k_new + 1.0)
        np.testing.assert_array_equal(a.row_lengths, [4, 4, 6])
        k_rows, v_rows = a.rows_view(0, 2, 4)
        np.testing.assert_array_equal(k_rows[:, :, 3:], k_new[:2])
        np.testing.assert_array_equal(v_rows[:, :, 3:], k_new[:2] + 1.0)
        k_rows, _ = a.rows_view(2, 3, 6)
        np.testing.assert_array_equal(k_rows[:, :, 5:], k_new[2:])

    def test_append_ragged_capacity_overflow_rejected(self, rng):
        a, _ = self._filled(rng, 1, 6, capacity=6)  # row already full
        k = rng.normal(size=(1, 2, 1, 4))
        with pytest.raises(ValueError, match="capacity"):
            a.append_ragged(k, k.copy())

    def test_rows_view_is_zero_copy(self, rng):
        cache, k = self._filled(rng, 3, 4)
        k_rows, v_rows = cache.rows_view(1, 3, 4)
        assert k_rows.base is not None and v_rows.base is not None
        np.testing.assert_array_equal(k_rows, k[1:3])


class TestWalkDecoderBatchGuards:
    """The decode batch is frozen at prefill (serving engines, not the
    decoder, handle growing/shrinking walk populations)."""

    def test_step_batch_mismatch_raises_clear_error(self, model):
        decoder = WalkDecoder(model)
        decoder.prefill(np.full((3, 1), model.start_token))
        assert decoder.batch_size == 3
        with pytest.raises(ValueError, match="frozen at prefill"):
            decoder.step(np.array([1, 2]))
        with pytest.raises(ValueError, match="frozen at prefill"):
            decoder.step(np.array([1, 2, 3, 4]))

    def test_empty_batch_prefill_rejected(self, model):
        with pytest.raises(ValueError, match="non-empty"):
            WalkDecoder(model).prefill(np.empty((0, 1), dtype=np.int64))

    def test_empty_prompt_prefill_rejected(self, model):
        with pytest.raises(ValueError, match="non-empty"):
            WalkDecoder(model).prefill(np.empty((2, 0), dtype=np.int64))

    def test_one_dimensional_prompt_rejected(self, model):
        with pytest.raises(ValueError, match=r"\(B, T\)"):
            WalkDecoder(model).prefill(np.array([model.start_token]))
