"""Determinism guarantees and failure-injection robustness tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairGen, FairGenConfig
from repro.data import load_dataset
from repro.graph import Graph, erdos_renyi, planted_protected_graph, \
    sample_walks
from repro.models import ERModel, TagGen
from repro.nn import MLP, Tensor


TINY = FairGenConfig(self_paced_cycles=2, walks_per_cycle=16,
                     generator_steps_per_cycle=2, generator_batch=8,
                     model_dim=16, num_layers=1, walk_length=5,
                     feature_dim=16, batch_iterations=2, batch_size=16,
                     generation_walk_factor=6)


def _fit_fairgen(seed):
    rng = np.random.default_rng(seed)
    graph, labels, protected = planted_protected_graph(
        30, 8, np.random.default_rng(1), p_in=0.3, p_out=0.05,
        num_classes=2, protected_as_class=True)
    few = np.concatenate([np.flatnonzero(labels == c)[:2]
                          for c in range(3)])
    model = FairGen(TINY)
    model.fit(graph, rng, labeled_nodes=few, labeled_classes=labels[few],
              protected_mask=protected, num_classes=3)
    return model.generate(np.random.default_rng(2))


class TestDeterminism:
    def test_dataset_loading_is_pure(self):
        """Loading twice (even interleaved) gives identical objects."""
        a = load_dataset("EMAIL")
        load_dataset("CA")
        b = load_dataset("EMAIL")
        assert a.graph == b.graph

    def test_walks_deterministic_given_seed(self, two_cliques_graph):
        a = sample_walks(two_cliques_graph, 10, 6,
                         np.random.default_rng(5))
        b = sample_walks(two_cliques_graph, 10, 6,
                         np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_fairgen_end_to_end_deterministic(self):
        assert _fit_fairgen(7) == _fit_fairgen(7)

    def test_fairgen_seed_changes_output(self):
        # Different training seed should (almost surely) change the graph.
        assert _fit_fairgen(7) != _fit_fairgen(8)

    def test_er_model_deterministic(self, rng):
        graph = erdos_renyi(40, 0.1, rng)
        a = ERModel().fit(graph, np.random.default_rng(3)).generate(
            np.random.default_rng(4))
        b = ERModel().fit(graph, np.random.default_rng(3)).generate(
            np.random.default_rng(4))
        assert a == b


class TestRobustness:
    def test_taggen_on_graph_with_isolated_nodes(self, rng):
        g = Graph.from_edges(12, [(0, 1), (1, 2), (2, 3), (3, 0),
                                  (4, 5), (5, 6)])  # nodes 7-11 isolated
        model = TagGen(epochs=1, walks_per_epoch=16, dim=16, num_layers=1,
                       walk_length=4, generation_walk_factor=4)
        out = model.fit(g, rng).generate(rng)
        assert out.num_nodes == 12

    def test_metrics_on_star_and_empty(self):
        from repro.graph.metrics import all_metrics

        star = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        vals = all_metrics(star)
        assert all(np.isfinite(v) or np.isinf(v) for v in vals.values())
        empty = Graph.from_edges(3, [])
        vals = all_metrics(empty)
        assert vals["AD"] == 0.0

    def test_fairgen_single_labeled_node_per_class(self, rng):
        """Minimum viable supervision: one label per class still runs."""
        graph, labels, protected = planted_protected_graph(
            30, 8, rng, p_in=0.3, p_out=0.05, num_classes=2,
            protected_as_class=True)
        few = np.array([np.flatnonzero(labels == c)[0] for c in range(3)])
        model = FairGen(TINY)
        model.fit(graph, rng, labeled_nodes=few,
                  labeled_classes=np.arange(3), protected_mask=protected,
                  num_classes=3)
        out = model.generate(rng)
        assert out.num_edges == graph.num_edges

    def test_mlp_handles_extreme_inputs(self, rng):
        mlp = MLP([4, 8, 2], rng)
        x = Tensor(np.full((2, 4), 1e6))
        out = mlp(x).log_softmax(axis=-1)
        assert np.isfinite(out.numpy()).all()

    def test_dense_graph_generation(self, rng):
        """Near-complete graphs should not break assembly."""
        g = erdos_renyi(15, 0.9, rng)
        model = TagGen(epochs=1, walks_per_epoch=16, dim=16, num_layers=1,
                       walk_length=4, generation_walk_factor=4)
        out = model.fit(g, rng).generate(rng)
        assert out.num_edges <= g.num_edges

    def test_augmentation_with_full_budget(self, rng):
        from repro.eval import augment_graph

        a = erdos_renyi(20, 0.2, rng)
        b = erdos_renyi(20, 0.5, np.random.default_rng(9))
        out = augment_graph(a, b, fraction=1.0)
        assert out.num_edges >= a.num_edges

    def test_discrepancy_between_different_sizes_raises_or_handles(self):
        """Comparing graphs of different node counts: ego-network path
        must fail loudly, not silently mis-index."""
        from repro.eval import protected_discrepancy

        big = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
        small = Graph.from_edges(3, [(0, 1)])
        mask = np.zeros(6, dtype=bool)
        mask[5] = True
        with pytest.raises(Exception):
            protected_discrepancy(big, small, mask)
