"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import Graph, connected_components
from repro.graph import metrics as gm
from repro.nn import Tensor


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_nodes: int = 12):
    """Random small undirected graphs."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible),
                          unique=True))
    return Graph.from_edges(n, edges)


@st.composite
def arrays(draw, max_side: int = 5):
    shape = draw(st.tuples(st.integers(1, max_side), st.integers(1, max_side)))
    values = draw(st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=shape[0] * shape[1], max_size=shape[0] * shape[1]))
    return np.array(values).reshape(shape)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
@given(graphs())
@settings(max_examples=60, deadline=None)
def test_degree_sum_is_twice_edges(g):
    assert g.degrees.sum() == 2 * g.num_edges


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_transition_matrix_column_stochastic(g):
    m = g.transition_matrix()
    np.testing.assert_allclose(np.asarray(m.sum(axis=0)).ravel(), 1.0,
                               atol=1e-12)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_component_sizes_sum_to_n(g):
    labels = connected_components(g)
    assert np.bincount(labels).sum() == g.num_nodes


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_lcc_at_most_n_and_consistent_with_ncc(g):
    lcc = gm.largest_connected_component(g)
    ncc = gm.number_of_connected_components(g)
    assert 1 <= lcc <= g.num_nodes
    # If there is a single component the LCC covers everything.
    if ncc == 1:
        assert lcc == g.num_nodes


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_gini_bounded(g):
    gini = gm.gini_coefficient(g)
    assert 0.0 - 1e-9 <= gini <= 1.0


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_clustering_coefficient_bounded(g):
    cc = gm.clustering_coefficient(g)
    assert 0.0 <= cc <= 1.0


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_ede_bounded(g):
    assert 0.0 <= gm.edge_distribution_entropy(g) <= 1.0 + 1e-9


@given(graphs(), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_conductance_in_unit_interval(g, seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, g.num_nodes))
    nodes = rng.choice(g.num_nodes, size=size, replace=False)
    assert 0.0 <= g.conductance(nodes) <= 1.0


@given(graphs(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_subgraph_edges_never_exceed_original(g, seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, g.num_nodes + 1))
    nodes = rng.choice(g.num_nodes, size=size, replace=False)
    sub = g.subgraph(nodes)
    assert sub.num_edges <= g.num_edges
    assert sub.num_nodes == size


@given(graphs(), st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_random_walks_follow_edges(g, seed):
    from repro.graph import uniform_random_walk

    rng = np.random.default_rng(seed)
    engine = g.walk_engine()
    # A batch of engine walks, validated in one vectorized adjacency
    # query (equal consecutive nodes are lazy stalls at isolated nodes).
    walks = engine.uniform_walks(
        rng.integers(g.num_nodes, size=16), 8, rng)
    a, b = walks[:, :-1].ravel(), walks[:, 1:].ravel()
    moved = a != b
    assert engine.has_edges(a[moved], b[moved]).all()
    # The scalar reference walker obeys the same invariant.
    walk = uniform_random_walk(g, int(rng.integers(g.num_nodes)), 8, rng)
    moved = walk[:-1] != walk[1:]
    assert engine.has_edges(walk[:-1][moved], walk[1:][moved]).all()


@given(graphs(), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_escape_probability_in_unit_interval(g, seed):
    from repro.graph import escape_probability

    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, g.num_nodes))
    nodes = rng.choice(g.num_nodes, size=size, replace=False)
    start = int(nodes[0])
    p = escape_probability(g, nodes, start, 4)
    assert -1e-9 <= p <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Autograd invariants
# ----------------------------------------------------------------------
@given(arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_rows_are_distributions(a):
    s = Tensor(a).softmax(axis=-1).numpy()
    assert (s >= 0).all()
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-9)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_addition_commutes(a):
    x, y = Tensor(a), Tensor(a * 0.5 + 1.0)
    np.testing.assert_allclose((x + y).numpy(), (y + x).numpy())


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_sum_gradient_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@given(arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_scalar_mul_gradient(a, c):
    x = Tensor(a, requires_grad=True)
    (x * c).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, c))


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_relu_output_nonnegative(a):
    assert (Tensor(a).relu().numpy() >= 0).all()


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_log_softmax_le_zero(a):
    out = Tensor(a).log_softmax(axis=-1).numpy()
    assert (out <= 1e-12).all()


# ----------------------------------------------------------------------
# Fairness / self-paced invariants
# ----------------------------------------------------------------------
@given(st.integers(2, 6), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_self_paced_update_is_thresholding(num_classes, seed):
    from repro.core import SelfPacedState

    rng = np.random.default_rng(seed)
    n = 10
    state = SelfPacedState(n, num_classes, np.array([0]), np.array([0]),
                           lambda_init=1.0, lambda_growth=1.5)
    logp = -rng.random((n, num_classes)) * 3.0
    state.update(logp)
    for i in range(1, n):  # node 0 is ground truth, skip
        for c in range(num_classes):
            assert state.v[i, c] == (1 if -logp[i, c] < 1.0 else 0)


@given(st.integers(1, 20), st.integers(21, 60), st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_cost_sensitive_weights_sum_balanced(n_prot, n_unprot, seed):
    """Total weight of the protected group equals the unprotected one."""
    from repro.core import cost_sensitive_weights

    total = n_prot + n_unprot
    mask = np.zeros(total, dtype=bool)
    mask[:n_prot] = True
    w = cost_sensitive_weights(np.arange(total), mask)
    np.testing.assert_allclose(w[mask].sum(), 1.0)
    np.testing.assert_allclose(w[~mask].sum(), 1.0)


@given(st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_statistical_parity_gap_bounds(seed):
    from repro.core import statistical_parity_gap

    rng = np.random.default_rng(seed)
    probs = rng.dirichlet(np.ones(3), size=12)
    mask = np.zeros(12, dtype=bool)
    mask[: int(rng.integers(1, 11))] = True
    gap = statistical_parity_gap(probs, mask)
    assert 0.0 <= gap <= 2.0 + 1e-9
