"""Data augmentation for rare-category detection (the Figure 6 use case).

Node classification on a graph with scarce labels benefits from inserting
a small number of high-quality synthetic edges before learning features:
the paper reports up to 17% accuracy gains on BLOG when the edges come
from FairGen, versus marginal gains from unsupervised generators.

This example runs the full pipeline on the BLOG benchmark: node2vec
features + logistic regression, 10-fold cross-validation, with and
without 5% augmentation from FairGen and from an unsupervised baseline.

Run with:  python examples/rare_category_augmentation.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.embedding import Node2VecConfig, node2vec_embedding
from repro.eval import augmentation_study, cross_validated_accuracy
from repro.experiments import ExperimentSpec, Runner


def main() -> None:
    data = load_dataset("BLOG")
    rng = np.random.default_rng(3)
    # Two SGNS epochs leave accuracy headroom so augmentation effects show.
    embed = Node2VecConfig(dim=32, walks_per_node=6, epochs=2)

    # Baseline: no augmentation.
    features = node2vec_embedding(data.graph, embed, rng)
    base_acc, base_std = cross_validated_accuracy(
        features, data.labels, data.num_classes, rng, k=10)
    print(f"no augmentation:     accuracy {base_acc:.4f} (+/- {base_std:.4f})")

    # Both augmentation models run through the experiment API; the
    # study needs fitted models, so the runs ask for need_model=True.
    runner = Runner()
    specs = {
        "FairGen": ExperimentSpec(
            model="fairgen", dataset="BLOG", profile="bench", seed=3,
            overrides=dict(self_paced_cycles=3, walks_per_cycle=64,
                           generator_steps_per_cycle=40)),
        "GAE": ExperimentSpec(model="gae", dataset="BLOG",
                              profile="bench", seed=5),
    }
    for name, spec in specs.items():
        run = runner.run(spec, need_model=True)
        result = augmentation_study(data.graph, data.labels,
                                    data.num_classes, run.model,
                                    np.random.default_rng(4),
                                    embed_config=embed)
        gain = (result.augmented_accuracy - base_acc) / base_acc
        print(f"{name + ' augmented:':<20} "
              f"accuracy {result.augmented_accuracy:.4f} "
              f"(+/- {result.augmented_std:.4f}) — gain {gain:+.2%}")


if __name__ == "__main__":
    main()
