"""Quickstart: train FairGen on a labeled benchmark graph and inspect the
generated graph's quality and fairness.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FairGen, FairGenConfig
from repro.data import load_dataset
from repro.eval import (mean_discrepancy, overall_discrepancy,
                        protected_discrepancy)
from repro.graph.metrics import all_metrics


def main() -> None:
    # 1. Load a benchmark dataset with labels and a protected group.
    data = load_dataset("BLOG")
    print(f"dataset: {data.name} — {data.graph.num_nodes} nodes, "
          f"{data.graph.num_edges} edges, {data.num_classes} classes, "
          f"{int(data.protected_mask.sum())} protected nodes")

    # 2. Draw the few-shot labeled set L (3 labeled nodes per class).
    rng = np.random.default_rng(0)
    labeled_nodes, labeled_classes = data.labeled_few_shot(3, rng)
    print(f"few-shot labels: {labeled_nodes.size} nodes across "
          f"{data.num_classes} classes")

    # 3. Configure and train FairGen (Algorithm 1).  The config below is
    #    a laptop-scale budget; raise the cycle/step counts for quality.
    config = FairGenConfig(self_paced_cycles=3, walks_per_cycle=64,
                           generator_steps_per_cycle=40,
                           batch_iterations=4, discriminator_lr=0.05)
    model = FairGen(config)
    model.fit(data.graph, rng, labeled_nodes=labeled_nodes,
              labeled_classes=labeled_classes,
              protected_mask=data.protected_mask)
    for record in model.history:
        print(f"  cycle {int(record['cycle'])}: "
              f"generator loss {record['generator_loss']:.2f}, "
              f"lambda {record['lambda']:.2f}, "
              f"pseudo labels {int(record['num_pseudo_labels'])}")

    # 4. Generate a synthetic graph with the fair assembling strategy.
    generated = model.generate(rng)
    print(f"generated: {generated}")

    # 5. Compare the nine Table II statistics.
    print("\nmetric      original   generated")
    orig = all_metrics(data.graph, aspl_sample=120)
    gen = all_metrics(generated, aspl_sample=120)
    for name in orig:
        print(f"{name:<10} {orig[name]:>9.3f}  {gen[name]:>9.3f}")

    # 6. Overall and protected-group discrepancy (Eqs. 15-16).
    r_all = overall_discrepancy(data.graph, generated, aspl_sample=120)
    r_prot = protected_discrepancy(data.graph, generated,
                                   data.protected_mask, aspl_sample=120)
    print(f"\nmean overall discrepancy R:    {mean_discrepancy(r_all):.4f}")
    print(f"mean protected discrepancy R+: {mean_discrepancy(r_prot):.4f}")


if __name__ == "__main__":
    main()
