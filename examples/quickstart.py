"""Quickstart: run FairGen through the experiment API and inspect the
generated graph's quality and fairness.

Models are built from the registry (``repro.registry``) under a named
hyperparameter profile and executed by the spec-driven Runner, which
caches artifacts on disk — re-running this script replays the generated
graph from ``.repro_cache`` without refitting.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import load_dataset
from repro.experiments import ExperimentSpec, Runner
from repro.graph.metrics import all_metrics

CACHE_DIR = ".repro_cache"


def main() -> None:
    # 1. Load a benchmark dataset with labels and a protected group.
    data = load_dataset("BLOG")
    print(f"dataset: {data.name} — {data.graph.num_nodes} nodes, "
          f"{data.graph.num_edges} edges, {data.num_classes} classes, "
          f"{int(data.protected_mask.sum())} protected nodes")

    # 2. Describe the experiment: model (by registry name), dataset,
    #    hyperparameter profile and seed.  "smoke" is a laptop-scale
    #    budget; use "bench" or "paper" for quality.
    spec = ExperimentSpec(model="fairgen", dataset="BLOG",
                          profile="smoke", seed=0)

    # 3. Execute through the Runner.  The first run fits and generates;
    #    re-running this script finds the artifact in CACHE_DIR and
    #    performs zero model fitting.
    runner = Runner(cache_dir=CACHE_DIR)
    result = runner.run(spec, with_metrics=True)
    print(f"fit: {result.fit_seconds:.2f}s  "
          f"generate: {result.generate_seconds:.2f}s"
          f"{'  (replayed from cache)' if result.from_cache else ''}")
    if result.model is not None:  # None when served from the disk cache
        for record in result.model.history:
            print(f"  cycle {int(record['cycle'])}: "
                  f"generator loss {record['generator_loss']:.2f}, "
                  f"lambda {record['lambda']:.2f}, "
                  f"pseudo labels {int(record['num_pseudo_labels'])}")

    # 4. The generated graph with the fair assembling strategy.
    generated = result.generated
    print(f"generated: {generated}")

    # 5. Compare the nine Table II statistics.
    print("\nmetric      original   generated")
    orig = all_metrics(data.graph, aspl_sample=120)
    gen = all_metrics(generated, aspl_sample=120)
    for name in orig:
        print(f"{name:<10} {orig[name]:>9.3f}  {gen[name]:>9.3f}")

    # 6. Overall and protected-group discrepancy (Eqs. 15-16) come with
    #    the run when with_metrics=True.
    print(f"\nmean overall discrepancy R:    "
          f"{result.metrics['overall_mean']:.4f}")
    print(f"mean protected discrepancy R+: "
          f"{result.metrics['protected_mean']:.4f}")
    print(f"\nartifact cache: {CACHE_DIR}/{spec.cache_key()}.npz")


if __name__ == "__main__":
    main()
