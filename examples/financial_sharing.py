"""Privacy-preserving data sharing for a financial transaction network.

The paper's motivating scenario (Section I): a financial institute wants
to share its transaction network with partners, but releasing the real
graph leaks user identities.  A graph generative model provides synthetic
data instead — and because fraudulent accounts are a tiny minority, a
fairness-unaware generator would wash them out, making the shared data
useless for fraud analytics.

This example builds a synthetic transaction network with a small
red-flagged community, shares a FairGen graph, and verifies that

1. the released graph leaks only a bounded fraction of real edges,
2. the flagged community's structure survives in the released graph,
   while a frequency-driven baseline (TagGen) degrades it more.

Run with:  python examples/financial_sharing.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import mean_discrepancy, protected_discrepancy
from repro.experiments import Supervision, create_model
from repro.graph import planted_protected_graph


def edge_overlap(original, released) -> float:
    """Fraction of released edges that exist in the original graph."""
    inter = released.adjacency.multiply(original.adjacency)
    return inter.nnz / max(released.adjacency.nnz, 1)


def main() -> None:
    rng = np.random.default_rng(7)

    # A transaction network: 5 normal account communities plus a small,
    # tightly-knit ring of flagged (fraudulent) accounts.
    graph, labels, flagged = planted_protected_graph(
        350, 25, rng, p_in=0.08, p_out=0.003, num_classes=5,
        protected_as_class=True)
    print(f"transaction network: {graph.num_nodes} accounts, "
          f"{graph.num_edges} transactions, {int(flagged.sum())} flagged")

    # Domain experts red-flag a handful of accounts per class: the
    # few-shot labeled set inside the supervision contract.
    supervision = Supervision.from_labels(labels, flagged,
                                          rng=np.random.default_rng(10))

    # Train FairGen and the unsupervised baseline, both built from the
    # model registry under the benchmark profile.
    fairgen = create_model("fairgen", "bench", overrides=dict(
        num_layers=2, generation_walk_factor=20))
    fairgen.fit(graph, rng, supervision=supervision)
    baseline = create_model("taggen", "bench", overrides=dict(
        epochs=25, walk_length=10, generation_walk_factor=20))
    baseline.fit(graph, np.random.default_rng(8))

    print("\nreleased graph              edge-overlap   flagged R+ (mean)")
    for name, model in (("FairGen", fairgen), ("TagGen baseline", baseline)):
        released = model.generate(np.random.default_rng(9))
        overlap = edge_overlap(graph, released)
        r_plus = mean_discrepancy(protected_discrepancy(
            graph, released, flagged, aspl_sample=120))
        print(f"{name:<26}  {overlap:>10.2%}   {r_plus:>8.4f}")

    print("\nLower flagged-community discrepancy means the shared data "
          "remains useful\nfor fraud analytics; partial edge overlap means "
          "individual transactions\ncannot be read off the released graph.")


if __name__ == "__main__":
    main()
