"""Privacy-preserving data sharing for a financial transaction network.

The paper's motivating scenario (Section I): a financial institute wants
to share its transaction network with partners, but releasing the real
graph leaks user identities.  A graph generative model provides synthetic
data instead — and because fraudulent accounts are a tiny minority, a
fairness-unaware generator would wash them out, making the shared data
useless for fraud analytics.

This example builds a synthetic transaction network with a small
red-flagged community, shares a FairGen graph, and verifies that

1. the released graph leaks only a bounded fraction of real edges,
2. the flagged community's structure survives in the released graph,
   while a frequency-driven baseline (TagGen) degrades it more.

Run with:  python examples/financial_sharing.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FairGen, FairGenConfig
from repro.eval import mean_discrepancy, protected_discrepancy
from repro.graph import planted_protected_graph
from repro.models import TagGen


def edge_overlap(original, released) -> float:
    """Fraction of released edges that exist in the original graph."""
    inter = released.adjacency.multiply(original.adjacency)
    return inter.nnz / max(released.adjacency.nnz, 1)


def main() -> None:
    rng = np.random.default_rng(7)

    # A transaction network: 5 normal account communities plus a small,
    # tightly-knit ring of flagged (fraudulent) accounts.
    graph, labels, flagged = planted_protected_graph(
        350, 25, rng, p_in=0.08, p_out=0.003, num_classes=5,
        protected_as_class=True)
    print(f"transaction network: {graph.num_nodes} accounts, "
          f"{graph.num_edges} transactions, {int(flagged.sum())} flagged")

    # Domain experts red-flag a handful of accounts per class.
    few_nodes, few_classes = [], []
    for cls in range(int(labels.max()) + 1):
        members = np.flatnonzero(labels == cls)[:3]
        few_nodes.extend(members.tolist())
        few_classes.extend([cls] * members.size)
    few_nodes = np.array(few_nodes)
    few_classes = np.array(few_classes)

    # Train FairGen and the unsupervised baseline.
    config = FairGenConfig(self_paced_cycles=4, walks_per_cycle=96,
                           generator_steps_per_cycle=80,
                           batch_iterations=4, discriminator_lr=0.05)
    fairgen = FairGen(config)
    fairgen.fit(graph, rng, labeled_nodes=few_nodes,
                labeled_classes=few_classes, protected_mask=flagged)
    baseline = TagGen(epochs=25, walks_per_epoch=128, num_layers=1)
    baseline.fit(graph, np.random.default_rng(8))

    print("\nreleased graph              edge-overlap   flagged R+ (mean)")
    for name, model in (("FairGen", fairgen), ("TagGen baseline", baseline)):
        released = model.generate(np.random.default_rng(9))
        overlap = edge_overlap(graph, released)
        r_plus = mean_discrepancy(protected_discrepancy(
            graph, released, flagged, aspl_sample=120))
        print(f"{name:<26}  {overlap:>10.2%}   {r_plus:>8.4f}")

    print("\nLower flagged-community discrepancy means the shared data "
          "remains useful\nfor fraud analytics; partial edge overlap means "
          "individual transactions\ncannot be read off the released graph.")


if __name__ == "__main__":
    main()
