"""Representation disparity in graph generative models (Figure 1 demo).

Trains the NetGAN baseline on a two-group graph for increasing numbers of
iterations and tracks the health of the protected group in the generated
graphs — walk coverage and embedding separability.  Then trains FairGen
once and shows the same statistics for comparison.

Run with:  python examples/disparity_study.py
"""

from __future__ import annotations

import numpy as np

from repro.embedding import (Node2VecConfig, centroid_separability,
                             node2vec_embedding)
from repro.experiments import Supervision, create_model
from repro.graph import planted_protected_graph

EMBED = Node2VecConfig(dim=16, walks_per_node=6, epochs=3, walk_length=8)


def protected_stats(graph, generated_walks, protected, label) -> None:
    anchors = np.flatnonzero(protected)
    coverage = float(np.isin(generated_walks, anchors).mean())
    fair_share = graph.volume(anchors) / (2.0 * graph.num_edges)
    print(f"{label:<24} S+ walk coverage {coverage:.3f} "
          f"(fair share {fair_share:.3f})")


def main() -> None:
    rng = np.random.default_rng(13)
    graph, labels, protected = planted_protected_graph(
        120, 25, rng, p_in=0.15, p_out=0.01, num_classes=2,
        protected_as_class=True)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{int(protected.sum())} protected")

    # --- NetGAN at increasing training checkpoints -------------------
    model = create_model("netgan", "bench", overrides=dict(
        iterations=5, walk_length=8, generation_walk_factor=20))
    model.fit(graph, np.random.default_rng(14))
    trained = 5
    for checkpoint in (5, 15, 30):
        if checkpoint > trained:
            model.continue_training(np.random.default_rng(14 + checkpoint),
                                    checkpoint - trained)
            trained = checkpoint
        walks = model.generate_walks(400, np.random.default_rng(15))
        generated = model.generate(np.random.default_rng(15))
        emb = node2vec_embedding(generated, EMBED, np.random.default_rng(16))
        sep = centroid_separability(emb, protected)
        protected_stats(graph, walks, protected,
                        f"NetGAN @ {checkpoint} iters")
        print(f"{'':<24} S+ separability  {sep:.3f}")

    # --- FairGen ------------------------------------------------------
    fairgen = create_model("fairgen", "bench", overrides=dict(
        walk_length=8, self_paced_cycles=3, walks_per_cycle=64,
        generator_steps_per_cycle=40))
    supervision = Supervision.from_labels(labels, protected,
                                          rng=np.random.default_rng(17))
    fairgen.fit(graph, np.random.default_rng(14), supervision=supervision)
    walks = fairgen.generate_walks(400, np.random.default_rng(15))
    generated = fairgen.generate(np.random.default_rng(15))
    emb = node2vec_embedding(generated, EMBED, np.random.default_rng(16))
    protected_stats(graph, walks, protected, "FairGen")
    print(f"{'':<24} S+ separability  "
          f"{centroid_separability(emb, protected):.3f}")


if __name__ == "__main__":
    main()
