"""Figure 8: scalability — FairGen runtime vs graph size and density.

The paper times FairGen on ER graphs, growing (a) the node count at fixed
density 0.005 and (b) the edge density at 5000 nodes, observing
near-linear growth in both.  We reproduce the sweep at CPU scale
(120-480 nodes, density 0.01-0.04) and assert sub-quadratic growth.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import format_table
from repro.experiments import Supervision, create_model
from repro.graph import erdos_renyi, node2vec_walk, sample_walks

NODE_SWEEP = [120, 240, 480]
DENSITY_SWEEP = [0.01, 0.02, 0.04]
FIXED_DENSITY = 0.02
FIXED_NODES = 240


def _time_fairgen(num_nodes: int, density: float) -> float:
    rng = np.random.default_rng(31)
    graph = erdos_renyi(num_nodes, density, rng)
    supervision = Supervision.surrogate_for(graph,
                                            rng=np.random.default_rng(32))
    model = create_model("fairgen", profile="bench", overrides=dict(
        self_paced_cycles=2, walks_per_cycle=32,
        generator_steps_per_cycle=2, generation_walk_factor=6))
    start = time.perf_counter()
    model.fit(graph, rng, supervision=supervision)
    model.generate(rng)
    return time.perf_counter() - start


def _sweep_nodes():
    return {n: _time_fairgen(n, FIXED_DENSITY) for n in NODE_SWEEP}


def _sweep_density():
    return {d: _time_fairgen(FIXED_NODES, d) for d in DENSITY_SWEEP}


def test_fig8a_runtime_vs_nodes(benchmark):
    times = benchmark.pedantic(_sweep_nodes, rounds=1, iterations=1)
    rows = [[f"n={n} (density {FIXED_DENSITY})", f"{t:.2f}s"]
            for n, t in times.items()]
    print("\n\nFigure 8(a) — FairGen runtime vs number of nodes")
    print(format_table(["setting", "runtime"], rows))
    # Near-linear shape: quadrupling n must cost far less than 16x.
    ratio = times[NODE_SWEEP[-1]] / times[NODE_SWEEP[0]]
    size_ratio = NODE_SWEEP[-1] / NODE_SWEEP[0]
    assert ratio < size_ratio ** 2


@pytest.mark.smoke
def test_fig8_smoke_walk_stage():
    """Seconds-scale smoke for the walk-sampling stage of Figure 8.

    Runs tiny sizes only, so it can gate every CI run:
    ``pytest benchmarks/bench_fig8_scalability.py -m smoke``.  Guards
    against performance regressions in the batched walk engine by
    requiring it to beat the scalar reference walker by a comfortable
    margin (the real margin is an order of magnitude; 2x keeps the
    assertion robust to CI noise).
    """
    rng = np.random.default_rng(31)
    graph = erdos_renyi(NODE_SWEEP[-1], FIXED_DENSITY, rng)
    num_walks, length = 512, 10

    start = time.perf_counter()
    walks = sample_walks(graph, num_walks, length, rng, p=0.5, q=2.0)
    batched_seconds = time.perf_counter() - start
    assert walks.shape == (num_walks, length)

    start = time.perf_counter()
    for s in walks[:, 0]:
        node2vec_walk(graph, int(s), length, rng, p=0.5, q=2.0)
    scalar_seconds = time.perf_counter() - start

    print(f"\n\nFigure 8 smoke — walk stage on n={NODE_SWEEP[-1]}: "
          f"batched {batched_seconds:.3f}s vs scalar {scalar_seconds:.3f}s "
          f"({scalar_seconds / max(batched_seconds, 1e-9):.1f}x)")
    assert batched_seconds * 2 < scalar_seconds


def test_fig8b_runtime_vs_density(benchmark):
    times = benchmark.pedantic(_sweep_density, rounds=1, iterations=1)
    rows = [[f"density={d} (n {FIXED_NODES})", f"{t:.2f}s"]
            for d, t in times.items()]
    print("\n\nFigure 8(b) — FairGen runtime vs edge density")
    print(format_table(["setting", "runtime"], rows))
    ratio = times[DENSITY_SWEEP[-1]] / times[DENSITY_SWEEP[0]]
    density_ratio = DENSITY_SWEEP[-1] / DENSITY_SWEEP[0]
    assert ratio < density_ratio ** 2
