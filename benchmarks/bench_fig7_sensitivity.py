"""Figure 7: parameter sensitivity of the overall loss.

The paper sweeps walk length T, sampling ratio r and the self-paced
threshold lambda, reporting (a) overall loss J, (b) generator loss J_G
and (c) discriminator loss J_P + J_L + J_F + J_S.

Shapes to reproduce: the loss surface is smooth in (T, r); the generator
term dominates the total (its output space is O(n^2) vs O(n) for the
discriminator); and the overall loss falls as -lambda approaches 1 (only
confident nodes propagate) but rises when -lambda is near 0.
"""

from __future__ import annotations

import numpy as np

from common import format_table
from repro.data import load_dataset
from repro.experiments import Supervision, create_model

DATASET = "BLOG"
WALK_LENGTHS = [6, 10, 14]
RATIOS = [0.0, 0.5, 1.0]
LAMBDAS = [0.2, 0.5, 1.0, 2.0]


def _fit_once(walk_length: int, ratio: float, lambda_init: float):
    data = load_dataset(DATASET)
    rng = np.random.default_rng(21)
    model = create_model("fairgen", profile="bench", overrides=dict(
        walk_length=walk_length, sampling_ratio=ratio,
        lambda_init=lambda_init, self_paced_cycles=2,
        walks_per_cycle=32, generator_steps_per_cycle=2))
    supervision = Supervision.from_dataset(data, rng=rng)
    model.fit(data.graph, rng, supervision=supervision)
    last = model.history[-1]
    gen = last["generator_loss"]
    disc = last["disc_total"]
    return {"generator": gen, "discriminator": disc, "total": gen + disc}


def _sweep_t_r():
    grid = {}
    for t in WALK_LENGTHS:
        for r in RATIOS:
            grid[(t, r)] = _fit_once(t, r, 0.5)
    return grid


def _sweep_lambda():
    return {lam: _fit_once(10, 0.5, lam) for lam in LAMBDAS}


def test_fig7a_loss_vs_walklength_and_ratio(benchmark):
    grid = benchmark.pedantic(_sweep_t_r, rounds=1, iterations=1)
    rows = [[f"T={t}, r={r}", f"{v['total']:.2f}", f"{v['generator']:.2f}",
             f"{v['discriminator']:.2f}"]
            for (t, r), v in sorted(grid.items())]
    print("\n\nFigure 7(a-c) — losses vs walk length T and sampling ratio r")
    print(format_table(["setting", "J (total)", "J_G", "J_disc"], rows))

    # Shape 1: the generator term dominates the overall loss everywhere.
    assert all(v["generator"] > v["discriminator"] for v in grid.values())
    # Shape 2: generator loss grows with walk length (longer sequences
    # accumulate more per-step NLL).
    for r in RATIOS:
        assert grid[(WALK_LENGTHS[-1], r)]["generator"] > \
            grid[(WALK_LENGTHS[0], r)]["generator"]
    # Shape 3: smoothness in r — no setting explodes vs its row mean.
    for t in WALK_LENGTHS:
        totals = [grid[(t, r)]["total"] for r in RATIOS]
        assert max(totals) < 2.0 * (sum(totals) / len(totals))


def test_fig7d_loss_vs_lambda(benchmark):
    sweep = benchmark.pedantic(_sweep_lambda, rounds=1, iterations=1)
    rows = [[f"lambda={lam}", f"{v['total']:.2f}", f"{v['discriminator']:.2f}"]
            for lam, v in sorted(sweep.items())]
    print("\n\nFigure 7(d) — overall loss vs self-paced threshold lambda")
    print(format_table(["setting", "J (total)", "J_disc"], rows))
    assert all(np.isfinite(v["total"]) for v in sweep.values())
