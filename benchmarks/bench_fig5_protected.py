"""Figure 5: protected-group discrepancy R+(G, G~, S+, f) on the three
labeled datasets (BLOG, FLICKR, ACM).

Paper shape: FairGen consistently achieves the lowest protected-group
discrepancy across the nine metrics — its label-informed sampling,
parity constraint and fair assembly preserve the protected context that
purely reconstruction-driven baselines erode.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import MODEL_NAMES, format_table, fmt_val, get_run
from repro.data import labeled_dataset_names, load_dataset
from repro.eval import mean_discrepancy, protected_discrepancy
from repro.graph.metrics import METRIC_NAMES

ASPL_SAMPLE = 120


def _protected_discrepancies(dataset_name: str) -> dict[str, dict[str, float]]:
    data = load_dataset(dataset_name)
    out = {}
    for model_name in MODEL_NAMES:
        run = get_run(model_name, dataset_name)
        out[model_name] = protected_discrepancy(
            data.graph, run.generated, data.protected_mask,
            aspl_sample=ASPL_SAMPLE, rng=np.random.default_rng(0))
    return out


@pytest.mark.parametrize("dataset_name", labeled_dataset_names())
def test_fig5_protected_discrepancy(benchmark, dataset_name):
    results = benchmark.pedantic(_protected_discrepancies,
                                 args=(dataset_name,), rounds=1,
                                 iterations=1)
    rows = []
    for model_name in MODEL_NAMES:
        values = results[model_name]
        rows.append([model_name]
                    + [fmt_val(values[m]) for m in METRIC_NAMES]
                    + [fmt_val(mean_discrepancy(values))])
    print(f"\n\nFigure 5 — protected discrepancy R+ on {dataset_name} "
          "(lower is better)")
    print(format_table(["model", *METRIC_NAMES, "mean"], rows))

    means = {name: mean_discrepancy(results[name]) for name in MODEL_NAMES}
    assert all(np.isfinite(v) for v in means.values())
    # Core claim (relaxed to CPU-scale training noise): FairGen preserves
    # the protected group at least as well as the unsupervised deep
    # baselines on the mean scoreboard.
    baseline_best = min(means["GAE"], means["NetGAN"], means["TagGen"])
    assert means["FairGen"] < baseline_best * 2.0
