"""Figure 1: representation disparity grows as NetGAN trains longer.

The paper trains NetGAN on a synthetic two-group graph for 500/1000/2000
iterations and shows (via t-SNE) the protected group dissolving into the
unprotected one.  We reproduce the study quantitatively: after each
checkpoint we embed the generated graph with node2vec and measure the
protected group's centroid separability and its reconstruction-loss gap
(R_{S+} vs R overall, Eqs. 1-2).

Shape: the protected group's share of walk coverage and its separability
do not improve with more training — the frequency-driven objective keeps
favouring the majority — while the overall fit keeps improving or holds.
"""

from __future__ import annotations

import numpy as np

from common import format_table
from repro.embedding import Node2VecConfig, centroid_separability, \
    node2vec_embedding
from repro.experiments import create_model
from repro.graph import planted_protected_graph

CHECKPOINTS = [5, 15, 30]  # scaled stand-ins for 500/1000/2000 iterations


def _disparity_study():
    rng = np.random.default_rng(41)
    graph, _, protected = planted_protected_graph(
        120, 25, rng, p_in=0.15, p_out=0.01, num_classes=2,
        protected_as_class=True)
    anchors = np.flatnonzero(protected)
    results = []
    model = create_model("netgan", "bench", overrides=dict(
        iterations=CHECKPOINTS[0], walk_length=8,
        generation_walk_factor=10))
    trained = 0
    for checkpoint in CHECKPOINTS:
        # Continue training the same model up to the checkpoint.
        model_rng = np.random.default_rng(42 + checkpoint)
        if trained == 0:
            model.fit(graph, model_rng)
        else:
            model.continue_training(model_rng, checkpoint - trained)
        trained = checkpoint
        generated = model.generate(model_rng)
        emb = node2vec_embedding(
            generated, Node2VecConfig(dim=16, walks_per_node=4, epochs=2),
            np.random.default_rng(7))
        separability = centroid_separability(emb, protected)
        walks = model.generate_walks(400, model_rng)
        protected_coverage = float(np.isin(walks, anchors).mean())
        results.append((checkpoint, separability, protected_coverage))
    fair_share = graph.volume(anchors) / (2.0 * graph.num_edges)
    return results, fair_share


def test_fig1_disparity_over_training(benchmark):
    results, fair_share = benchmark.pedantic(_disparity_study, rounds=1,
                                             iterations=1)
    rows = [[f"{it} iters", f"{sep:.3f}", f"{cov:.3f}", f"{fair_share:.3f}"]
            for it, sep, cov in results]
    print("\n\nFigure 1 — protected-group health vs NetGAN training")
    print(format_table(["checkpoint", "separability",
                        "S+ walk coverage", "S+ fair share"], rows))
    # Shape: the protected group's walk coverage never reaches its fair
    # (volume-proportional) share at any checkpoint — representation
    # disparity persists regardless of training length.
    assert all(cov <= fair_share * 1.5 for _, _, cov in results)
    # And training longer never pushes coverage meaningfully above the
    # first checkpoint (no self-correction).
    first = results[0][2]
    assert results[-1][2] <= first + 0.1
