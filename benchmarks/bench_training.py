"""Training-path benchmark: grad-free scoring, checkpoints, stacked fits.

FairGen's self-paced cycle scores the discriminator over *all* nodes
every cycle (the Eq. 14 vector update and the pseudo-label harvest
share one ``predict_log_proba`` pass).  Since PR 5 that pass runs under
``no_grad()`` — identical floats, but no autograd graph construction —
which makes cycle-loop training measurably faster now that generation
is cache-bound.  The seed-stacked (vmap-style) fit path adds a second
free lunch: a sweep cell's K same-config seeds train as ONE batched
tensor program (see :mod:`repro.nn.vmap`) with byte-identical per-seed
results.  The smoke subset gates CI on both speedups and merge-updates
the trajectory into ``BENCH_train.json`` at the repo root:

    pytest benchmarks/bench_training.py -m smoke
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.discriminator import FairDiscriminator
from repro.train import TrainState, Trainer

#: bench-profile-like scoring shape (nodes x features, 3-layer MLP)
NUM_NODES = 2000
FEATURE_DIM = 32
HIDDEN_DIM = 32
NUM_CLASSES = 3
REPS = 100

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_train.json"


def _smoke_discriminator() -> FairDiscriminator:
    rng = np.random.default_rng(17)
    features = rng.standard_normal((NUM_NODES, FEATURE_DIM))
    return FairDiscriminator(features, NUM_CLASSES,
                             rng.random(NUM_NODES) < 0.15, rng,
                             hidden_dim=HIDDEN_DIM)


def _best_of(fn, trials: int = 5) -> float:
    """Best wall-clock of ``trials`` timed runs (robust to CI noise)."""
    times = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _record(name: str, payload: dict) -> None:
    """Merge-update one benchmark's entry in ``BENCH_train.json``.

    The file maps benchmark name -> latest result, so each smoke test
    refreshes its own row without clobbering the others.  (A legacy
    single-benchmark flat file is rewrapped under its ``benchmark``
    key on first contact.)
    """
    existing: dict = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
        if "benchmark" in existing:  # legacy flat layout
            legacy = dict(existing)
            existing = {legacy.pop("benchmark"): legacy}
    existing[name] = payload
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")


@pytest.mark.smoke
def test_training_smoke_grad_free_scoring_beats_grad_path():
    """Seconds-scale CI gate on the per-cycle scoring hot path.

    The graph-building path pays closure + parent-tuple bookkeeping on
    every tensor op of the full-batch forward — and, because each
    backward closure references its output tensor, it creates reference
    cycles the garbage collector must chase; the ``no_grad`` path skips
    all of it.  The real margin is ~1.3-1.5x at this shape; the gate
    asserts a conservative 1.05x so CI noise cannot flip it.  Both
    paths must agree bit-for-bit — the speedup is free, not
    approximate.
    """
    disc = _smoke_discriminator()

    def grad_path():
        for _ in range(REPS):
            disc.log_probs().numpy().copy()

    def grad_free_path():
        for _ in range(REPS):
            disc.predict_log_proba()

    grad_free_path()  # warm BLAS and allocators outside the timings
    grad_path()
    with_graph = _best_of(grad_path)
    grad_free = _best_of(grad_free_path)

    np.testing.assert_array_equal(disc.predict_log_proba(),
                                  disc.log_probs().numpy())

    speedup = with_graph / max(grad_free, 1e-9)
    print(f"\n\nTraining smoke — {REPS} full-batch scoring passes "
          f"(n={NUM_NODES}, d={FEATURE_DIM}): grad path {with_graph:.3f}s "
          f"vs grad-free {grad_free:.3f}s ({speedup:.2f}x)")

    _record("training_grad_free_scoring_smoke", {
        "num_nodes": NUM_NODES,
        "feature_dim": FEATURE_DIM,
        "hidden_dim": HIDDEN_DIM,
        "scoring_reps": REPS,
        "grad_path_seconds": round(with_graph, 4),
        "grad_free_seconds": round(grad_free, 4),
        "speedup": round(speedup, 2),
    })

    assert speedup > 1.05, (
        f"grad-free scoring ({grad_free:.3f}s) must beat the "
        f"graph-building path ({with_graph:.3f}s) by > 1.05x")


@pytest.mark.smoke
def test_training_smoke_checkpoint_round_trip_is_cheap_and_exact():
    """Checkpoint I/O must stay negligible next to a training cycle.

    Saves and restores a real Trainer task (TagGen on a small graph)
    and asserts (a) the restored parameters are byte-identical and
    (b) one save+load round trip costs well under a second — the
    budget that lets the scheduler's Worker checkpoint on every
    heartbeat without denting fit throughput.
    """
    from repro.graph import planted_protected_graph
    from repro.models.taggen import TagGen, _TagGenTask

    rng = np.random.default_rng(5)
    graph, _, _ = planted_protected_graph(60, 12, rng, p_in=0.2,
                                          p_out=0.02)
    model = TagGen(epochs=2, walks_per_epoch=32, dim=16, num_layers=1,
                   walk_length=8)
    fit_rng = np.random.default_rng(9)
    model.fit(graph, fit_rng)
    task = _TagGenTask(model, graph)
    state = TrainState(epoch=2, history=list(model.loss_history))

    before = {name: value.copy()
              for name, value in model.model.state_dict().items()}
    path = BENCH_JSON.parent / ".bench_train_ckpt.npz"
    try:
        start = time.perf_counter()
        state.save(path, task, fit_rng)
        loaded = TrainState.load(path)
        for p in model.model.parameters():
            p.data += 1.0  # clobber, so restore must actually rewrite
        loaded.restore(task, fit_rng)
        round_trip = time.perf_counter() - start

        assert loaded.history == model.loss_history
        for name, value in model.model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])
        print(f"\n\ncheckpoint save+load+restore: {round_trip:.3f}s")
        assert round_trip < 1.0
    finally:
        path.unlink(missing_ok=True)


@pytest.mark.smoke
def test_training_smoke_stacked_fit_beats_per_seed_fits():
    """CI gate on the seed-stacked (vmap-style) fit path.

    A sweep cell's K=5 same-config GAE fits run as one batched tensor
    program: the autograd tape records one op per epoch step instead of
    K, so in the overhead-bound regime of the paper's small graphs the
    stack runs well over 2x faster than the per-seed loop.  The gate
    asserts >= 1.5x — and, crucially, that every seed's fitted
    parameters, loss history and post-fit RNG state are byte-identical
    to its sequential fit: the speedup is an execution strategy, not an
    approximation.
    """
    from repro.graph import planted_protected_graph
    from repro.models import GAEModel

    seeds = [11, 23, 35, 47, 59]
    num_nodes, epochs = 32, 30
    rng = np.random.default_rng(7)
    graph, _, _ = planted_protected_graph(num_nodes, 8, rng, p_in=0.25,
                                          p_out=0.03, num_classes=2,
                                          protected_as_class=True)

    def build():
        return GAEModel(epochs=epochs, hidden=16, latent=8)

    def per_seed():
        out = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            out.append((build().fit(graph, rng), rng))
        return out

    def stacked():
        models = [build() for _ in seeds]
        rngs = [np.random.default_rng(seed) for seed in seeds]
        GAEModel.fit_stacked(models, graph, rngs)
        return list(zip(models, rngs))

    stacked()  # warm BLAS and allocators outside the timings
    per_seed()
    sequential_s = _best_of(per_seed, trials=3)
    stacked_s = _best_of(stacked, trials=3)

    # Byte-identity across the whole per-seed surface.
    for (seq, seq_rng), (stk, stk_rng) in zip(per_seed(), stacked()):
        assert seq.loss_history == stk.loss_history
        seq_state, stk_state = seq.state_dict(), stk.state_dict()
        assert seq_state.keys() == stk_state.keys()
        for name in seq_state:
            np.testing.assert_array_equal(seq_state[name], stk_state[name])
        assert seq_rng.bit_generator.state == stk_rng.bit_generator.state

    speedup = sequential_s / max(stacked_s, 1e-9)
    print(f"\n\nTraining smoke — K={len(seeds)} GAE fits "
          f"(n={num_nodes}, epochs={epochs}): per-seed {sequential_s:.3f}s "
          f"vs stacked {stacked_s:.3f}s ({speedup:.2f}x)")

    _record("training_stacked_fit_smoke", {
        "num_nodes": num_nodes,
        "epochs": epochs,
        "num_seeds": len(seeds),
        "per_seed_seconds": round(sequential_s, 4),
        "stacked_seconds": round(stacked_s, 4),
        "speedup": round(speedup, 2),
    })

    assert speedup > 1.5, (
        f"stacked fit ({stacked_s:.3f}s) must beat {len(seeds)} per-seed "
        f"fits ({sequential_s:.3f}s) by > 1.5x")


def test_scoring_cost_scales_linearly_with_nodes(benchmark):
    """Full-batch scoring is O(n): 4x the nodes ~ 4x the time, far from
    the superlinear blowup a retained graph per node would cause."""
    def sweep():
        times = {}
        for n in (500, 2000):
            rng = np.random.default_rng(1)
            disc = FairDiscriminator(
                rng.standard_normal((n, FEATURE_DIM)), NUM_CLASSES,
                rng.random(n) < 0.15, rng, hidden_dim=HIDDEN_DIM)
            disc.predict_log_proba()  # warm
            times[n] = _best_of(
                lambda d=disc: [d.predict_log_proba() for _ in range(20)])
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n\nGrad-free scoring — node-count sweep")
    for n, seconds in times.items():
        print(f"  n={n:5d}  {seconds:.3f}s")
    assert times[2000] < times[500] * 16
