"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Model runs
(fit + generate) all route through the experiment API
(:class:`repro.experiments.Runner`): models come from the registry under
the ``"bench"`` profile, unlabeled datasets receive surrogate supervision
(protected group = bottom-quartile-degree nodes; the paper evaluates
FairGen on all seven datasets although four ship no labels), and runs
are cached per spec and shared across benchmark files within one
pytest session — Figure 5 reuses the graphs produced for Figure 4,
Table IV reuses their timings, and Figure 6 reuses the fitted models.

Set ``REPRO_BENCH_CACHE=/path`` to back the run cache with a disk
directory that survives across pytest sessions: warm entries replay the
generated graphs and timings without refitting anything.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments import (ExperimentSpec, Runner, RunResult,
                               benchmark_model_names, get_entry)
from repro.utils import format_table  # single shared implementation

__all__ = ["BENCH_SEED", "MODEL_NAMES", "get_run", "bench_runner",
           "bench_spec", "format_table", "fmt_val"]

BENCH_SEED = 20240

#: the paper's nine-method scoreboard, in Table/Figure row order
MODEL_NAMES = benchmark_model_names()

_RUNNER = Runner(cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None)


def bench_runner() -> Runner:
    """The session-wide Runner every benchmark shares."""
    return _RUNNER


def bench_spec(model_name: str, dataset_name: str,
               **overrides) -> ExperimentSpec:
    """Bench-profile spec for a (model, dataset) pair."""
    return ExperimentSpec(model=get_entry(model_name).name,
                          dataset=dataset_name, profile="bench",
                          seed=BENCH_SEED, overrides=overrides)


def get_run(model_name: str, dataset_name: str,
            need_model: bool = False) -> RunResult:
    """Fit + generate once per (model, dataset); cached for the session.

    ``need_model=True`` guarantees ``run.model`` is a fitted model (the
    Figure 6 augmentation study and the assembler ablation need one);
    plain artifact consumers leave it False so a warm disk cache can
    serve them without any fitting.
    """
    return _RUNNER.run(bench_spec(model_name, dataset_name),
                       need_model=need_model)


def fmt_val(value: float) -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "nan"
    if isinstance(value, float) and np.isinf(value):
        return "inf"
    return f"{value:.4f}"
