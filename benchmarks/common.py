"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Model runs
(fit + generate) are expensive, so they are cached per (model, dataset)
pair and shared across benchmark files within one pytest session: Figure 5
reuses the graphs produced for Figure 4, Table IV reuses their timings,
and Figure 6 reuses the fitted models.

FairGen needs labels and a protected group.  Four of the paper's seven
datasets (EMAIL, FB, GNU, CA) ship none, yet the paper evaluates FairGen
on all seven; we therefore derive *surrogate* supervision for unlabeled
graphs — protected group = bottom-quartile-degree nodes (the nodes a
frequency-driven generator under-serves) and a two-class labeling split
on that same axis.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import FairGenConfig, make_fairgen_variant
from repro.data import Dataset, load_dataset
from repro.graph import Graph
from repro.models import (BAModel, ERModel, GAEModel, GraphGenerativeModel,
                          NetGAN, TagGen)

BENCH_SEED = 20240
FEW_SHOT_PER_CLASS = 3

MODEL_NAMES = ["FairGen", "FairGen-R", "FairGen-w/o-SPL",
               "FairGen-w/o-Parity", "ER", "BA", "GAE", "NetGAN", "TagGen"]
FAIRGEN_VARIANTS = {"FairGen": "full", "FairGen-R": "no-sampling",
                    "FairGen-w/o-SPL": "no-spl",
                    "FairGen-w/o-Parity": "no-parity"}


def bench_fairgen_config() -> FairGenConfig:
    """CPU-scale FairGen budget used across all benchmarks."""
    return FairGenConfig(
        walk_length=10, walks_per_cycle=96, self_paced_cycles=4,
        generator_steps_per_cycle=80, generator_batch=32, model_dim=32,
        num_layers=1, feature_dim=32, batch_iterations=4, batch_size=128,
        discriminator_lr=0.05, generation_walk_factor=12)


def make_model(name: str) -> GraphGenerativeModel:
    """Fresh benchmark-budget model instance by display name."""
    if name in FAIRGEN_VARIANTS:
        return make_fairgen_variant(FAIRGEN_VARIANTS[name],
                                    bench_fairgen_config())
    simple = {
        "ER": lambda: ERModel(),
        "BA": lambda: BAModel(),
        "GAE": lambda: GAEModel(epochs=40, hidden=32, latent=16),
        "NetGAN": lambda: NetGAN(iterations=20, batch_size=24,
                                 walk_length=10, hidden_dim=32,
                                 generation_walk_factor=12),
        "TagGen": lambda: TagGen(epochs=10, walks_per_epoch=128, dim=32,
                                 num_layers=1, walk_length=10,
                                 generation_walk_factor=12),
    }
    if name not in simple:
        raise KeyError(f"unknown model {name!r}")
    return simple[name]()


def surrogate_supervision(graph: Graph) -> tuple[np.ndarray, np.ndarray, int]:
    """Degree-based labels/protected mask for unlabeled datasets.

    Protected group: bottom-quartile-degree nodes — the structurally
    under-represented population that walk-frequency objectives neglect.
    Classes: the same split, giving a 2-class task.
    """
    threshold = np.quantile(graph.degrees, 0.25)
    protected = graph.degrees <= threshold
    if protected.all() or (~protected).all():
        # Degenerate degree distribution: split by node id instead.
        protected = np.arange(graph.num_nodes) < graph.num_nodes // 4
    labels = protected.astype(np.int64)
    return labels, protected, 2


def dataset_supervision(data: Dataset) -> tuple[np.ndarray, np.ndarray, int]:
    """(labels, protected_mask, num_classes) with surrogate fallback."""
    if data.has_labels:
        return data.labels, data.protected_mask, data.num_classes
    return surrogate_supervision(data.graph)


@dataclass
class Run:
    """One cached fit+generate execution."""

    model_name: str
    dataset_name: str
    model: GraphGenerativeModel
    generated: Graph
    fit_seconds: float
    generate_seconds: float


_RUN_CACHE: dict[tuple[str, str], Run] = {}


def _run_seed(model_name: str, dataset_name: str) -> int:
    # zlib.crc32 is stable across processes (unlike str hash, which is
    # salted per interpreter) — benchmark runs must be reproducible.
    import zlib

    digest = zlib.crc32(f"{model_name}/{dataset_name}".encode())
    return (BENCH_SEED + digest) % (2 ** 31)


def get_run(model_name: str, dataset_name: str) -> Run:
    """Fit + generate once per (model, dataset); cached for the session."""
    key = (model_name, dataset_name)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    data = load_dataset(dataset_name)
    rng = np.random.default_rng(_run_seed(model_name, dataset_name))
    model = make_model(model_name)

    start = time.perf_counter()
    if model_name in FAIRGEN_VARIANTS:
        labels, protected, num_classes = dataset_supervision(data)
        label_rng = np.random.default_rng(BENCH_SEED)
        nodes, classes = _few_shot(labels, num_classes, label_rng)
        model.fit(data.graph, rng, labeled_nodes=nodes,
                  labeled_classes=classes, protected_mask=protected,
                  num_classes=num_classes)
    else:
        model.fit(data.graph, rng)
    fit_seconds = time.perf_counter() - start

    start = time.perf_counter()
    generated = model.generate(rng)
    generate_seconds = time.perf_counter() - start

    run = Run(model_name, dataset_name, model, generated, fit_seconds,
              generate_seconds)
    _RUN_CACHE[key] = run
    return run


def _few_shot(labels: np.ndarray, num_classes: int,
              rng: np.random.Generator,
              per_class: int = FEW_SHOT_PER_CLASS) -> tuple[np.ndarray, np.ndarray]:
    nodes, classes = [], []
    for cls in range(num_classes):
        members = np.flatnonzero(labels == cls)
        take = min(per_class, members.size)
        chosen = rng.choice(members, size=take, replace=False)
        nodes.append(chosen)
        classes.append(np.full(take, cls, dtype=np.int64))
    return np.concatenate(nodes), np.concatenate(classes)


def protected_mask_for(dataset_name: str) -> np.ndarray:
    data = load_dataset(dataset_name)
    _, protected, _ = dataset_supervision(data)
    return protected


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table used by every benchmark's printed report."""
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def fmt_val(value: float) -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "nan"
    if isinstance(value, float) and np.isinf(value):
        return "inf"
    return f"{value:.4f}"
