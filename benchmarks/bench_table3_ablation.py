"""Table III: ablation of the context-sampling strategy f_S.

"Negative Sampling" replaces f_S with node2vec's degree-biased sampling
(no label guidance), i.e. the FairGen-R variant.  Paper shape: full
FairGen attains a smaller protected-group discrepancy R+ than the
negative-sampling variant on (most of) the nine metrics for BLOG, ACM
and FLICKR.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import format_table, fmt_val, get_run
from repro.data import labeled_dataset_names, load_dataset
from repro.eval import mean_discrepancy, protected_discrepancy
from repro.graph.metrics import METRIC_NAMES

ASPL_SAMPLE = 120

PAPER_TABLE3_MEANS = {
    # mean over the paper's nine reported R+ values per row
    "BLOG": {"Negative Sampling": 0.1801, "FairGen": 0.0934},
    "ACM": {"Negative Sampling": 0.1715, "FairGen": 0.1010},
    "FLICKR": {"Negative Sampling": 0.1519, "FairGen": 0.0683},
}


def _rows(dataset_name: str):
    data = load_dataset(dataset_name)
    out = {}
    for label, model_name in (("Negative Sampling", "FairGen-R"),
                              ("FairGen", "FairGen")):
        run = get_run(model_name, dataset_name)
        out[label] = protected_discrepancy(
            data.graph, run.generated, data.protected_mask,
            aspl_sample=ASPL_SAMPLE, rng=np.random.default_rng(0))
    return out


@pytest.mark.parametrize("dataset_name", labeled_dataset_names())
def test_table3_sampling_ablation(benchmark, dataset_name):
    results = benchmark.pedantic(_rows, args=(dataset_name,), rounds=1,
                                 iterations=1)
    rows = []
    for label in ("Negative Sampling", "FairGen"):
        values = results[label]
        rows.append([f"{label} ({dataset_name})"]
                    + [fmt_val(values[m]) for m in METRIC_NAMES]
                    + [fmt_val(mean_discrepancy(values)),
                       fmt_val(PAPER_TABLE3_MEANS[dataset_name][label])])
    print(f"\n\nTable III — sampling-strategy ablation, R+ on "
          f"{dataset_name} (lower is better)")
    print(format_table(["method", *METRIC_NAMES, "mean(ours)",
                        "mean(paper)"], rows))

    ours = {k: mean_discrepancy(v) for k, v in results.items()}
    assert all(np.isfinite(v) for v in ours.values())
    # Shape: label-informed f_S should not lose badly to plain negative
    # sampling on protected-group preservation.
    assert ours["FairGen"] < ours["Negative Sampling"] * 1.75
