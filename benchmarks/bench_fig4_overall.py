"""Figure 4: overall discrepancy R(G, G~, f) — nine metrics, seven
datasets, nine methods.

Paper shape to reproduce: (1) ER/BA nail the properties they model and
fail elsewhere (e.g. triangle count); (2) deep models generalise across
metrics better than random models; (3) FairGen is comparable to the best
baselines overall, occasionally slightly worse than NetGAN on labeled
datasets — it optimises more than reconstruction alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import MODEL_NAMES, format_table, fmt_val, get_run
from repro.data import dataset_names, load_dataset
from repro.eval import mean_discrepancy, overall_discrepancy
from repro.graph.metrics import METRIC_NAMES

ASPL_SAMPLE = 120


def _discrepancies(dataset_name: str) -> dict[str, dict[str, float]]:
    data = load_dataset(dataset_name)
    out = {}
    for model_name in MODEL_NAMES:
        run = get_run(model_name, dataset_name)
        out[model_name] = overall_discrepancy(
            data.graph, run.generated, aspl_sample=ASPL_SAMPLE,
            rng=np.random.default_rng(0))
    return out


@pytest.mark.parametrize("dataset_name", dataset_names())
def test_fig4_overall_discrepancy(benchmark, dataset_name):
    results = benchmark.pedantic(_discrepancies, args=(dataset_name,),
                                 rounds=1, iterations=1)
    rows = []
    for model_name in MODEL_NAMES:
        values = results[model_name]
        rows.append([model_name]
                    + [fmt_val(values[m]) for m in METRIC_NAMES]
                    + [fmt_val(mean_discrepancy(values))])
    print(f"\n\nFigure 4 — overall discrepancy R on {dataset_name} "
          "(lower is better)")
    print(format_table(["model", *METRIC_NAMES, "mean"], rows))

    # Shape assertions.
    means = {name: mean_discrepancy(results[name]) for name in MODEL_NAMES}
    # Every model produced a finite scoreboard.
    assert all(np.isfinite(v) for v in means.values())
    # Walk-based deep models must match average degree almost exactly
    # (assembly fixes the edge count).
    for deep in ("FairGen", "TagGen", "NetGAN"):
        assert results[deep]["AD"] < 0.05
    # ER cannot reproduce triangle counts of clustered graphs; deep models
    # that copy walk context should do no worse on the mean scoreboard
    # than the worst random model on most datasets.
    worst_random = max(means["ER"], means["BA"])
    assert min(means["FairGen"], means["TagGen"]) < worst_random * 3.0
