"""Table I: statistics of the seven benchmark datasets.

Paper values (full scale) vs our synthetic stand-ins (~1/10-1/20 scale).
The *shape* to verify: three datasets carry labels and a small protected
group; protected groups are 3-8% of the population; class counts are
6/9/9 for BLOG/FLICKR/ACM.
"""

from __future__ import annotations

from common import format_table
from repro.data import dataset_names, dataset_statistics, load_dataset

PAPER_TABLE1 = {
    "EMAIL": (1005, 25571, None, None),
    "FB": (4039, 88234, None, None),
    "BLOG": (5196, 360166, 6, 300),
    "FLICKR": (7575, 501983, 9, 450),
    "GNU": (6301, 20777, None, None),
    "CA": (5242, 14496, None, None),
    "ACM": (16484, 197560, 9, 597),
}


def _build_rows():
    rows = []
    for name in dataset_names():
        stats = dataset_statistics(load_dataset(name))
        paper = PAPER_TABLE1[name]
        rows.append([name, paper[0], stats["nodes"], paper[1],
                     stats["edges"], paper[2] or "-", stats["classes"] or "-",
                     paper[3] or "-", stats["protected"] or "-"])
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    print("\n\nTable I — dataset statistics (paper vs ours, scaled)")
    print(format_table(
        ["dataset", "nodes(paper)", "nodes(ours)", "edges(paper)",
         "edges(ours)", "C(paper)", "C(ours)", "S+(paper)", "S+(ours)"],
        rows))
    # Shape assertions: class counts match Table I exactly; protected
    # groups exist and are small minorities.
    by_name = {r[0]: r for r in rows}
    for name, classes in (("BLOG", 6), ("FLICKR", 9), ("ACM", 9)):
        assert by_name[name][6] == classes
        data = load_dataset(name)
        assert 0 < data.protected_mask.mean() < 0.15
