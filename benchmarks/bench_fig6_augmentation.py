"""Figure 6: data augmentation for node classification.

Pipeline per the paper (Section III-D): node2vec + logistic regression on
the original graph is the "No Augmentation" baseline; each generative
model proposes edges, 5% new edges are inserted, features are re-learned
and the classifier re-evaluated with 10-fold cross-validation.

Paper shape: FairGen yields the largest accuracy improvement (up to 17%
on BLOG); unsupervised baselines help only marginally because they ignore
the label structure when proposing edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import format_table, get_run
from repro.data import labeled_dataset_names, load_dataset
from repro.embedding import Node2VecConfig, node2vec_embedding
from repro.eval import augmentation_study, cross_validated_accuracy

MODELS = ["FairGen", "FairGen-R", "TagGen", "NetGAN", "GAE", "ER"]
# Two SGNS epochs put the features in the scarce-signal regime (the
# paper's real graphs are much larger/noisier than our stand-ins, so the
# full embedding budget would saturate accuracy and leave no headroom
# for augmentation to show).
EMBED = Node2VecConfig(dim=32, walks_per_node=6, walk_length=10, epochs=2)
FOLDS = 10


def _study(dataset_name: str):
    data = load_dataset(dataset_name)
    rng = np.random.default_rng(11)
    base_features = node2vec_embedding(data.graph, EMBED, rng)
    base_acc, base_std = cross_validated_accuracy(
        base_features, data.labels, data.num_classes, rng, k=FOLDS)
    results = {"No Augmentation": (base_acc, base_std)}
    for model_name in MODELS:
        run = get_run(model_name, dataset_name, need_model=True)
        study = augmentation_study(
            data.graph, data.labels, data.num_classes, run.model,
            np.random.default_rng(12), embed_config=EMBED, folds=FOLDS)
        results[model_name] = (study.augmented_accuracy,
                               study.augmented_std)
    return results


@pytest.mark.parametrize("dataset_name", labeled_dataset_names())
def test_fig6_augmentation(benchmark, dataset_name):
    results = benchmark.pedantic(_study, args=(dataset_name,), rounds=1,
                                 iterations=1)
    base_acc = results["No Augmentation"][0]
    rows = []
    for name, (acc, std) in results.items():
        gain = (acc - base_acc) / base_acc if base_acc else 0.0
        rows.append([name, f"{acc:.4f}", f"{std:.4f}", f"{gain:+.2%}"])
    print(f"\n\nFigure 6 — node-classification accuracy with 5% edge "
          f"augmentation on {dataset_name}")
    print(format_table(["method", "accuracy", "std", "gain vs no-aug"],
                       rows))

    accs = {k: v[0] for k, v in results.items()}
    assert all(0.0 <= a <= 1.0 for a in accs.values())
    # Shape: FairGen's label-informed augmentation should not be the
    # worst augmentation strategy, and should stay within noise of the
    # best one.
    others = [accs[m] for m in MODELS if m != "FairGen"]
    # FairGen's label-informed proposals should be competitive with the
    # best augmentation strategy, not just the worst.
    assert accs["FairGen"] >= max(others) - 0.05
