"""NN-generation decode benchmarks: KV-cached decode and fused kernels.

Two seconds-scale smoke gates cover the hot NN-generation path:

* ``test_decode_smoke_incremental_beats_full_recompute`` — the KV-cached
  incremental decoder (one O(T) step per token) against the old
  full-prefix recompute (O(T^2) per token);
* ``test_decode_smoke_fused_whole_step_vs_per_op`` — the whole-step
  ``Backend.decode_step`` compound kernel (one backend call per token,
  preallocated scratch) against the per-op reference loop (~10 backend
  calls per layer per token), with byte-identical logits and walks as a
  hard invariant.

Results merge-update per-benchmark entries in ``BENCH_decode.json`` at
the repo root (same map format as ``BENCH_train.json`` /
``BENCH_serve.json``), so the decode-performance trajectory is tracked
commit over commit without one benchmark clobbering another:

    pytest benchmarks/bench_walklm_decode.py -m smoke
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.walk_lm import TransformerWalkModel
from repro.nn import WalkDecoder, active_backend, set_backend

#: the smoke gates require the win to show at this length (>= 32)
LENGTH = 48
NUM_WALKS = 64
NUM_NODES = 300
#: batch for the fused whole-step gate — small decode batches are the
#: dispatch-bound regime the compound kernel targets
FUSED_WALKS = 8
#: interleaved timing rounds for the fused gate (min-of-N per side)
FUSED_ROUNDS = 10

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_decode.json"


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = active_backend().name
    yield
    set_backend(previous)


def _smoke_model() -> TransformerWalkModel:
    model = TransformerWalkModel(NUM_NODES, dim=32, num_heads=4,
                                 num_layers=2, max_length=LENGTH,
                                 rng=np.random.default_rng(11))
    model.eval()
    return model


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _record(name: str, payload: dict) -> None:
    """Merge-update one benchmark's entry in ``BENCH_decode.json``."""
    existing: dict = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
        if "benchmark" in existing:  # legacy flat layout
            legacy = dict(existing)
            existing = {legacy.pop("benchmark"): legacy}
    existing[name] = payload
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")


@pytest.mark.smoke
def test_decode_smoke_incremental_beats_full_recompute():
    """Seconds-scale CI gate on the hot NN-generation path.

    The real margin is an order of magnitude (~20x at this shape); the
    2x assertion keeps the gate robust to CI noise.  Both paths consume
    the RNG identically, so the walks double as a parity check.
    """
    model = _smoke_model()
    # Warm caches (BLAS init, causal-mask memo) outside the timings.
    model.sample(8, 8, np.random.default_rng(0))
    model.sample_reference(8, 8, np.random.default_rng(0))

    incremental = _time(lambda: model.sample(
        NUM_WALKS, LENGTH, np.random.default_rng(1)))
    full = _time(lambda: model.sample_reference(
        NUM_WALKS, LENGTH, np.random.default_rng(1)))

    walks_fast = model.sample(NUM_WALKS, LENGTH, np.random.default_rng(2))
    walks_slow = model.sample_reference(NUM_WALKS, LENGTH,
                                        np.random.default_rng(2))
    assert np.array_equal(walks_fast, walks_slow)

    speedup = full / max(incremental, 1e-9)
    print(f"\n\nDecode smoke — {NUM_WALKS} walks x length {LENGTH} "
          f"(n={NUM_NODES}): incremental {incremental:.3f}s vs "
          f"full recompute {full:.3f}s ({speedup:.1f}x)")

    _record("walklm_decode_smoke", {
        "num_walks": NUM_WALKS,
        "length": LENGTH,
        "num_nodes": NUM_NODES,
        "incremental_seconds": round(incremental, 4),
        "full_recompute_seconds": round(full, 4),
        "speedup": round(speedup, 2),
    })

    assert incremental * 2 < full, (
        f"incremental decode ({incremental:.3f}s) must beat full-prefix "
        f"recompute ({full:.3f}s) at length >= 32")


def _decode_fixed_stream(model: TransformerWalkModel, per_op: bool,
                         ids: np.ndarray) -> np.ndarray:
    """Decode a predetermined token stream, returning all step logits.

    Fixing the stream (rather than sampling) keeps both paths on the
    exact same inputs, so the stacked logits are directly comparable
    bit for bit — and the timing measures decode alone, not the
    cumsum/RNG sampling overhead both paths share.
    """
    n = ids.shape[1]
    decoder = WalkDecoder(model, per_op=per_op)
    outs = [decoder.prefill(np.full((n, 1), model.start_token))]
    for step_ids in ids:
        outs.append(decoder.step(step_ids))
    return np.stack(outs)


def _sample_per_op(model: TransformerWalkModel, num_walks: int,
                   length: int, rng: np.random.Generator) -> np.ndarray:
    """``model.sample`` with the per-op reference decoder.

    Mirrors :meth:`TransformerWalkModel.sample` exactly (same RNG
    contract) but routes every forward through the per-op loop instead
    of the whole-step kernel, giving the walk-level parity oracle for
    the fused gate.
    """
    tokens = np.full((num_walks, 1), model.start_token, dtype=np.int64)
    decoder = WalkDecoder(model, per_op=True)
    logits = decoder.prefill(tokens)
    while True:
        next_ids = model._sample_step(logits, 1.0, model.num_nodes, rng)
        tokens = np.concatenate([tokens, next_ids[:, None]], axis=1)
        if tokens.shape[1] >= length + 1:
            return tokens[:, 1:]
        logits = decoder.step(next_ids)


@pytest.mark.smoke
def test_decode_smoke_fused_whole_step_vs_per_op():
    """Whole-step ``decode_step`` vs the per-op backend loop, length 48.

    Byte-identity is the hard invariant: the fused kernel must emit the
    exact logits of the per-op reference at every step, and sampled
    walks must match token for token.

    On the timing side the gate is deliberately conservative.  Trials
    interleave the two paths so host noise lands on both alike, and the
    recorded speedup is min-over-min.  Measured margin at this shape is
    ~1.15-1.2x: a straight-line dispatch-floor experiment (every buffer
    preallocated, zero Python overhead) tops out at ~1.19x over the
    per-op path, because the same PR that landed the fused kernel also
    made the per-op baseline ~40% faster (the reference gelu cube now
    avoids libm ``pow``), and what remains is C-level work both paths
    share.  The hard assert sits at 1.05x so the gate stays green under
    CI load while still catching a regression that loses the fusion win.
    """
    model = _smoke_model()
    rng = np.random.default_rng(5)
    ids = rng.integers(0, NUM_NODES, size=(LENGTH - 1, FUSED_WALKS))

    set_backend("numpy")
    per_op_logits = _decode_fixed_stream(model, True, ids)
    set_backend("fused")
    fused_logits = _decode_fixed_stream(model, False, ids)
    np.testing.assert_array_equal(fused_logits, per_op_logits)

    # Walk-level parity: fused whole-step sampling vs per-op sampling.
    fused_walks = model.sample(FUSED_WALKS, LENGTH, np.random.default_rng(6))
    set_backend("numpy")
    per_op_walks = _sample_per_op(model, FUSED_WALKS, LENGTH,
                                  np.random.default_rng(6))
    assert np.array_equal(fused_walks, per_op_walks)

    per_op_s = fused_s = float("inf")
    for _ in range(FUSED_ROUNDS):
        set_backend("numpy")
        per_op_s = min(per_op_s,
                       _time(lambda: _decode_fixed_stream(model, True, ids)))
        set_backend("fused")
        fused_s = min(fused_s,
                      _time(lambda: _decode_fixed_stream(model, False, ids)))

    speedup = per_op_s / max(fused_s, 1e-9)
    print(f"\n\nFused decode smoke — {FUSED_WALKS} walks x length {LENGTH}: "
          f"per-op {per_op_s*1e3:.1f}ms vs whole-step {fused_s*1e3:.1f}ms "
          f"({speedup:.2f}x), logits and walks byte-identical")

    _record("walklm_fused_decode_step_smoke", {
        "num_walks": FUSED_WALKS,
        "length": LENGTH,
        "num_nodes": NUM_NODES,
        "per_op_seconds": round(per_op_s, 4),
        "whole_step_seconds": round(fused_s, 4),
        "speedup": round(speedup, 2),
        "byte_identical": True,
    })

    assert speedup >= 1.05, (
        f"whole-step decode_step ({fused_s*1e3:.1f}ms) must beat the "
        f"per-op backend path ({per_op_s*1e3:.1f}ms) at length {LENGTH}")


def test_decode_scaling_with_length(benchmark):
    """Incremental decode cost grows near-linearly in walk length."""
    model = _smoke_model()

    def sweep():
        return {length: _time(lambda: model.sample(
                    32, length, np.random.default_rng(3)))
                for length in (12, 24, 48)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n\nIncremental decode — walk-length sweep")
    for length, seconds in times.items():
        print(f"  length={length:3d}  {seconds:.3f}s")
    # Quadrupling the length must cost far less than the O(T^3) of the
    # old path (64x); allow generous slack above linear for overheads.
    assert times[48] < times[12] * 16
