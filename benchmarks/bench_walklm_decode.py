"""NN-generation decode benchmark: KV-cached incremental vs full recompute.

``TransformerWalkModel.sample`` decodes incrementally against per-layer
KV caches (one O(T) step per token); ``sample_reference`` is the old
path that re-runs the transformer over the whole prefix every step
(O(T^2) per token).  The smoke subset gates CI — it asserts the
incremental decoder beats the full-prefix recompute at ``length >= 32``
and records its timings in ``BENCH_decode.json`` at the repo root so
the decode-performance trajectory is tracked commit over commit:

    pytest benchmarks/bench_walklm_decode.py -m smoke
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.walk_lm import TransformerWalkModel

#: the smoke gate requires the win to show at this length (>= 32)
LENGTH = 48
NUM_WALKS = 64
NUM_NODES = 300

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_decode.json"


def _smoke_model() -> TransformerWalkModel:
    model = TransformerWalkModel(NUM_NODES, dim=32, num_heads=4,
                                 num_layers=2, max_length=LENGTH,
                                 rng=np.random.default_rng(11))
    model.eval()
    return model


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.smoke
def test_decode_smoke_incremental_beats_full_recompute():
    """Seconds-scale CI gate on the hot NN-generation path.

    The real margin is an order of magnitude (~20x at this shape); the
    2x assertion keeps the gate robust to CI noise.  Both paths consume
    the RNG identically, so the walks double as a parity check.
    """
    model = _smoke_model()
    # Warm caches (BLAS init, causal-mask memo) outside the timings.
    model.sample(8, 8, np.random.default_rng(0))
    model.sample_reference(8, 8, np.random.default_rng(0))

    incremental = _time(lambda: model.sample(
        NUM_WALKS, LENGTH, np.random.default_rng(1)))
    full = _time(lambda: model.sample_reference(
        NUM_WALKS, LENGTH, np.random.default_rng(1)))

    walks_fast = model.sample(NUM_WALKS, LENGTH, np.random.default_rng(2))
    walks_slow = model.sample_reference(NUM_WALKS, LENGTH,
                                        np.random.default_rng(2))
    assert np.array_equal(walks_fast, walks_slow)

    speedup = full / max(incremental, 1e-9)
    print(f"\n\nDecode smoke — {NUM_WALKS} walks x length {LENGTH} "
          f"(n={NUM_NODES}): incremental {incremental:.3f}s vs "
          f"full recompute {full:.3f}s ({speedup:.1f}x)")

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "walklm_decode_smoke",
        "num_walks": NUM_WALKS,
        "length": LENGTH,
        "num_nodes": NUM_NODES,
        "incremental_seconds": round(incremental, 4),
        "full_recompute_seconds": round(full, 4),
        "speedup": round(speedup, 2),
    }, indent=2) + "\n")

    assert incremental * 2 < full, (
        f"incremental decode ({incremental:.3f}s) must beat full-prefix "
        f"recompute ({full:.3f}s) at length >= 32")


def test_decode_scaling_with_length(benchmark):
    """Incremental decode cost grows near-linearly in walk length."""
    model = _smoke_model()

    def sweep():
        return {length: _time(lambda: model.sample(
                    32, length, np.random.default_rng(3)))
                for length in (12, 24, 48)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n\nIncremental decode — walk-length sweep")
    for length, seconds in times.items():
        print(f"  length={length:3d}  {seconds:.3f}s")
    # Quadrupling the length must cost far less than the O(T^3) of the
    # old path (64x); allow generous slack above linear for overheads.
    assert times[48] < times[12] * 16
