"""Extension ablation: the fair assembling criteria of Section II-D.

The paper motivates two assembling criteria — (1) preserve the protected
group's volume and (2) give every node at least one edge — but does not
report an ablation for them.  This benchmark fills that gap: it assembles
the *same* FairGen walk counts under four assembler settings and measures
the protected-group discrepancy R+ and the isolated-node count.

Expected shape: dropping the protected-volume criterion lowers the
protected group's generated volume; dropping min-degree leaves more
isolated nodes; the full assembler is the best or tied on R+.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_run
from repro.data import load_dataset
from repro.eval import mean_discrepancy, protected_discrepancy
from repro.graph import walks_to_edge_counts
from repro.models import assemble_from_scores

DATASET = "ACM"


def _ablate():
    data = load_dataset(DATASET)
    run = get_run("FairGen", DATASET, need_model=True)
    model = run.model
    rng = np.random.default_rng(61)
    walks = model.generate_walks(
        12 * data.graph.num_edges // model.config.walk_length, rng)
    counts = walks_to_edge_counts(walks, data.graph.num_nodes)
    anchors = np.flatnonzero(data.protected_mask)
    volume = data.graph.volume(anchors)

    settings = {
        "full (volume + min-degree)": dict(
            min_degree=1, protected=data.protected_mask,
            protected_volume=volume),
        "no protected-volume": dict(min_degree=1),
        "no min-degree": dict(min_degree=0,
                              protected=data.protected_mask,
                              protected_volume=volume),
        "plain top-m": dict(min_degree=0),
    }
    results = {}
    for label, kwargs in settings.items():
        generated = assemble_from_scores(counts, data.graph.num_edges,
                                         **kwargs)
        r_plus = protected_discrepancy(data.graph, generated,
                                       data.protected_mask,
                                       aspl_sample=120,
                                       rng=np.random.default_rng(0))
        results[label] = {
            "r_plus_mean": mean_discrepancy(r_plus),
            "protected_volume": generated.volume(anchors),
            "isolated": int((generated.degrees == 0).sum()),
        }
    return results, volume


def test_assembler_ablation(benchmark):
    results, original_volume = benchmark.pedantic(_ablate, rounds=1,
                                                  iterations=1)
    rows = [[label, f"{v['r_plus_mean']:.4f}", v["protected_volume"],
             original_volume, v["isolated"]]
            for label, v in results.items()]
    print(f"\n\nAssembler ablation on {DATASET} (same walk counts)")
    print(format_table(["assembler", "R+ mean", "S+ volume (gen)",
                        "S+ volume (orig)", "isolated nodes"], rows))

    full = results["full (volume + min-degree)"]
    # Volume criterion: with it, the generated protected volume is at
    # least as close to the original as without it.
    gap_with = abs(full["protected_volume"] - original_volume)
    gap_without = abs(results["no protected-volume"]["protected_volume"]
                      - original_volume)
    assert gap_with <= gap_without
    # Min-degree criterion: the full assembler leaves no more isolated
    # nodes than the plain top-m threshold.
    assert full["isolated"] <= results["plain top-m"]["isolated"]
