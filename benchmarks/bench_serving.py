"""Serving-path benchmark: continuous batching vs sequential decode.

The ``repro serve`` engine coalesces concurrent walk requests of
different lengths into ONE KV-cached decode batch: per-step layernorms,
projections and MLPs run batched across every resident request, while
attention and the head GEMM stay per-request-group so each served walk
is byte-identical to standalone generation (see
:mod:`repro.serve.engine`).  A fleet of clients therefore shares the
fixed per-step cost that a sequential per-request loop pays over and
over — the win is largest exactly where a serving daemon lives: many
small requests in flight at once.

The smoke subset gates CI on that speedup — at least 1.5x walks/sec for
8+ concurrent mixed-length requests over draining the same requests one
at a time — and merge-updates request-latency percentiles and
throughput into ``BENCH_serve.json`` at the repo root:

    pytest benchmarks/bench_serving.py -m smoke
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.walk_lm import TransformerWalkModel
from repro.serve import ContinuousBatcher, serve_walks

#: serving-shaped workload: many small concurrent requests, mixed lengths
NUM_NODES = 150
DIM = 32
NUM_HEADS = 4
NUM_LAYERS = 2
MAX_LENGTH = 48
TRIALS = 5

#: (n_walks, length, seed, temperature) per concurrent client.  16 thin
#: requests (1-2 walks each, lengths 44-48) — the regime where the
#: sequential loop is purely per-step-overhead-bound while the engine
#: runs one coalesced decode of ~max(length) steps.
REQUESTS = [(1 + (i % 2), 44 + (i % 5), 100 + i, [1.0, 0.9, 1.1][i % 3])
            for i in range(16)]

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _serving_model() -> TransformerWalkModel:
    return TransformerWalkModel(num_nodes=NUM_NODES, dim=DIM,
                                num_heads=NUM_HEADS, num_layers=NUM_LAYERS,
                                max_length=MAX_LENGTH,
                                rng=np.random.default_rng(17))


def _sequential(model: TransformerWalkModel):
    """Drain the request list one standalone decode at a time."""
    return [model.sample(n, length, np.random.default_rng(seed),
                         temperature=temp)
            for n, length, seed, temp in REQUESTS]


def _concurrent(model: TransformerWalkModel):
    """All requests in flight at once through one batching engine.

    Returns (elapsed seconds, walks per request, per-request latency
    seconds).  One dedicated thread steps the engine — the daemon's
    decode-loop shape — while a thread per client blocks on
    :func:`serve_walks`.
    """
    engine = ContinuousBatcher(model, max_walks=256)
    stop = threading.Event()
    decoder = threading.Thread(target=engine.run, args=(stop,), daemon=True)
    decoder.start()

    results: list = [None] * len(REQUESTS)
    latencies = [0.0] * len(REQUESTS)

    def client(i: int, n: int, length: int, seed: int, temp: float) -> None:
        start = time.perf_counter()
        results[i] = serve_walks(engine, n, length,
                                 np.random.default_rng(seed),
                                 temperature=temp)
        latencies[i] = time.perf_counter() - start

    threads = [threading.Thread(target=client, args=(i, *req))
               for i, req in enumerate(REQUESTS)]
    try:
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    finally:
        stop.set()
        decoder.join()
    return elapsed, results, latencies


def _record(name: str, payload: dict) -> None:
    """Merge-update one benchmark's entry in ``BENCH_serve.json``."""
    existing: dict = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
        if "benchmark" in existing:  # legacy flat layout
            legacy = dict(existing)
            existing = {legacy.pop("benchmark"): legacy}
    existing[name] = payload
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")


@pytest.mark.smoke
def test_serving_smoke_continuous_batching_beats_sequential_decode():
    """Seconds-scale CI gate on the serving engine's reason to exist.

    16 concurrent mixed-length clients must clear >= 1.5x walks/sec over
    the same requests decoded sequentially, and every served walk must
    be byte-identical to its standalone twin — the engine is an
    execution strategy, not an approximation.  Trials are interleaved
    (sequential, then served, repeated) so host noise lands on both
    sides alike; the real margin at this shape is ~2x, so the 1.5x gate
    has headroom against CI noise.
    """
    model = _serving_model()
    total_walks = sum(n for n, _, _, _ in REQUESTS)

    _concurrent(model)  # warm BLAS, allocators, thread machinery
    _sequential(model)
    sequential_s = concurrent_s = float("inf")
    served, latencies = None, None
    for _ in range(TRIALS):
        start = time.perf_counter()
        expected = _sequential(model)
        sequential_s = min(sequential_s, time.perf_counter() - start)
        elapsed, walks, lat = _concurrent(model)
        if elapsed < concurrent_s:
            concurrent_s, served, latencies = elapsed, walks, lat

    for want, got in zip(expected, served):
        np.testing.assert_array_equal(got, want)

    seq_rate = total_walks / max(sequential_s, 1e-9)
    srv_rate = total_walks / max(concurrent_s, 1e-9)
    speedup = srv_rate / max(seq_rate, 1e-9)
    p50, p99 = np.percentile(latencies, [50, 99])
    print(f"\n\nServing smoke — {len(REQUESTS)} concurrent requests, "
          f"{total_walks} walks, lengths "
          f"{min(r[1] for r in REQUESTS)}-{max(r[1] for r in REQUESTS)}: "
          f"sequential {sequential_s:.3f}s ({seq_rate:.0f} walks/s) vs "
          f"served {concurrent_s:.3f}s ({srv_rate:.0f} walks/s, "
          f"{speedup:.2f}x); latency p50 {p50 * 1e3:.0f}ms "
          f"p99 {p99 * 1e3:.0f}ms")

    _record("serving_continuous_batching_smoke", {
        "num_nodes": NUM_NODES,
        "dim": DIM,
        "num_layers": NUM_LAYERS,
        "concurrent_requests": len(REQUESTS),
        "total_walks": total_walks,
        "sequential_seconds": round(sequential_s, 4),
        "served_seconds": round(concurrent_s, 4),
        "sequential_walks_per_s": round(seq_rate, 1),
        "served_walks_per_s": round(srv_rate, 1),
        "speedup": round(speedup, 2),
        "latency_p50_ms": round(p50 * 1e3, 1),
        "latency_p99_ms": round(p99 * 1e3, 1),
    })

    assert speedup >= 1.5, (
        f"continuous batching ({srv_rate:.0f} walks/s) must beat "
        f"sequential decode ({seq_rate:.0f} walks/s) by >= 1.5x, "
        f"got {speedup:.2f}x")


@pytest.mark.smoke
def test_serving_smoke_lookahead_walks_byte_identical():
    """Multi-token lookahead must not change a single served token.

    The same 16-client workload runs through an engine ticking one token
    per step and one decoding ``LOOKAHEAD`` tokens per tick; every walk
    must be byte-identical across the two engines (and therefore to the
    standalone ``sample`` twins the 1.5x gate already pins).  Timings
    for both modes are recorded so the lookahead dispatch saving is
    tracked, but byte-identity is the gate — lookahead is an engine-tick
    batching knob, not an approximation.
    """
    LOOKAHEAD = 4
    model = _serving_model()
    runs: dict[int, tuple[float, list]] = {}
    for lookahead in (1, LOOKAHEAD):
        engine = ContinuousBatcher(model, max_walks=256,
                                   lookahead=lookahead)
        stop = threading.Event()
        decoder = threading.Thread(target=engine.run, args=(stop,),
                                   daemon=True)
        decoder.start()
        results: list = [None] * len(REQUESTS)

        def client(i: int, n: int, length: int, seed: int,
                   temp: float) -> None:
            results[i] = serve_walks(engine, n, length,
                                     np.random.default_rng(seed),
                                     temperature=temp)

        threads = [threading.Thread(target=client, args=(i, *req))
                   for i, req in enumerate(REQUESTS)]
        try:
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
        finally:
            stop.set()
            decoder.join()
        runs[lookahead] = (elapsed, results)

    base_s, base_walks = runs[1]
    look_s, look_walks = runs[LOOKAHEAD]
    for want, got in zip(base_walks, look_walks):
        np.testing.assert_array_equal(got, want)

    print(f"\n\nLookahead smoke — {len(REQUESTS)} concurrent requests: "
          f"lookahead=1 {base_s:.3f}s vs lookahead={LOOKAHEAD} "
          f"{look_s:.3f}s, all walks byte-identical")

    _record("serving_lookahead_smoke", {
        "num_nodes": NUM_NODES,
        "dim": DIM,
        "num_layers": NUM_LAYERS,
        "concurrent_requests": len(REQUESTS),
        "lookahead": LOOKAHEAD,
        "lookahead_1_seconds": round(base_s, 4),
        "lookahead_k_seconds": round(look_s, 4),
        "byte_identical": True,
    })
