"""Sharded-walk benchmark: out-of-core walks with bounded resident memory.

PR 1's :class:`~repro.graph.WalkEngine` keeps the whole CSR resident —
O(edges) memory — which caps honest Figure 8 scaling at ~10^5 nodes.
The sharded store streams a million-edge synthetic graph to disk with
bounded ingest memory, then drives the same lock-step walk kernels
shard-by-shard with an LRU of resident shard mmaps.  The smoke subset
gates CI on the memory model actually holding:

* **RSS gate (hard):** the walk phase's incremental peak RSS
  (``ru_maxrss`` delta across the sharded walks) stays *below the
  in-memory CSR footprint* of the same graph — i.e. walking out-of-core
  must cost less residency than just loading the graph would;
* **throughput gate:** sharded walks finish within 3x of the in-memory
  engine on the identical workload;
* **byte-identity gate:** a single-shard layout reproduces the
  in-memory engine's walks exactly (same generator state, same bytes).

Results merge-update ``BENCH_walks.json`` at the repo root:

    pytest benchmarks/bench_sharded_walks.py -m smoke
"""

from __future__ import annotations

import json
import resource
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graph import (WalkEngine, ingest_edge_stream, ingest_graph,
                         ring_of_chords, synthetic_edge_stream)
from repro.graph.walk_engine import ShardedWalkEngine

#: ~1M undirected edges: a 150k-node ring plus 900k random chords
NUM_NODES = 150_000
NUM_CHORDS = 900_000
STREAM_SEED = 23

NUM_SHARDS = 12
MAX_RESIDENT = 3

NUM_WALKS = 20_000
WALK_LENGTH = 16

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_walks.json"


def _record(name: str, payload: dict) -> None:
    """Merge-update one benchmark's entry in ``BENCH_walks.json``."""
    existing: dict = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
        if "benchmark" in existing:  # legacy flat layout
            legacy = dict(existing)
            existing = {legacy.pop("benchmark"): legacy}
    existing[name] = payload
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")


def _maxrss_bytes() -> int:
    """Process high-water RSS in bytes (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


@pytest.mark.smoke
def test_sharded_walks_smoke_memory_and_throughput(tmp_path):
    """Million-edge walks out-of-core: bounded RSS, competitive speed."""
    # Streaming ingest: bounded peak memory, never the full edge set.
    sharded = ingest_edge_stream(
        synthetic_edge_stream(NUM_NODES, NUM_CHORDS, STREAM_SEED),
        NUM_NODES, tmp_path / "shards", num_shards=NUM_SHARDS)
    sharded.max_resident = MAX_RESIDENT
    assert sharded.num_edges >= 1_000_000
    # In-memory CSR footprint of this graph (indptr + indices + degrees,
    # the arrays WalkEngine keeps resident) — the RSS gate's yardstick.
    csr_bytes = (2 * sharded.num_edges + 2 * (sharded.num_nodes + 1)) * 8

    engine = ShardedWalkEngine(sharded)
    rng = np.random.default_rng(7)
    starts = engine.sample_starts(NUM_WALKS, rng)

    # --- sharded walk phase, RSS-metered --------------------------------
    rss_before = _maxrss_bytes()
    t0 = time.perf_counter()
    sharded_walks = engine.walks(NUM_WALKS, WALK_LENGTH,
                                 np.random.default_rng(7))
    sharded_seconds = time.perf_counter() - t0
    rss_delta = _maxrss_bytes() - rss_before

    # HARD GATE: walking out-of-core must stay below the cost of simply
    # holding the CSR in memory, or the sharded path has no point.
    assert rss_delta < csr_bytes, (
        f"sharded walk phase grew RSS by {rss_delta / 1e6:.1f} MB, not "
        f"below the {csr_bytes / 1e6:.1f} MB in-memory CSR footprint")
    assert len(sharded.resident_shards()) <= MAX_RESIDENT

    # --- in-memory comparison engine (built only AFTER metering) -------
    graph = sharded.to_graph()
    inmem = WalkEngine(graph)
    t0 = time.perf_counter()
    inmem_walks = inmem.walks(NUM_WALKS, WALK_LENGTH,
                              np.random.default_rng(7))
    inmem_seconds = time.perf_counter() - t0
    # First-order draws never depend on the bucketing, so the entire
    # walk matrix is byte-identical under any shard count.
    assert np.array_equal(sharded_walks, inmem_walks)

    ratio = sharded_seconds / max(inmem_seconds, 1e-9)
    assert ratio <= 3.0, (
        f"sharded walks {sharded_seconds:.2f}s vs in-memory "
        f"{inmem_seconds:.2f}s ({ratio:.2f}x > 3x budget)")

    walks_per_sec = NUM_WALKS / max(sharded_seconds, 1e-9)
    _record("sharded_walks_smoke", {
        "num_nodes": NUM_NODES,
        "num_edges": int(sharded.num_edges),
        "num_shards": NUM_SHARDS,
        "max_resident": MAX_RESIDENT,
        "num_walks": NUM_WALKS,
        "walk_length": WALK_LENGTH,
        "sharded_seconds": round(sharded_seconds, 4),
        "inmem_seconds": round(inmem_seconds, 4),
        "slowdown_x": round(ratio, 3),
        "sharded_walks_per_sec": round(walks_per_sec, 1),
        "walk_rss_delta_mb": round(rss_delta / 1e6, 2),
        "csr_footprint_mb": round(csr_bytes / 1e6, 2),
        "shard_loads": int(sharded.shard_loads),
    })


@pytest.mark.smoke
def test_sharded_walks_smoke_single_shard_byte_identity(tmp_path):
    """One shard ⇒ the documented RNG contract collapses to WalkEngine."""
    graph = ring_of_chords(3_000, 6_000, seed=11)
    sharded = ingest_graph(graph, tmp_path / "one", num_shards=1)
    inmem, out_of_core = WalkEngine(graph), ShardedWalkEngine(sharded)
    for p, q in [(1.0, 1.0), (0.25, 4.0)]:
        expected = inmem.walks(512, 12, np.random.default_rng(3), p=p, q=q)
        actual = out_of_core.walks(512, 12, np.random.default_rng(3),
                                   p=p, q=q)
        assert np.array_equal(expected, actual), (
            f"single-shard walks diverged from WalkEngine at p={p} q={q}")
