"""Observability overhead smoke: instrumentation must be ~free when off.

Every hot path in the repo now carries ``trace.span(...)`` call sites
and registry-backed counters.  Both are built to cost nothing when
telemetry is off — ``span`` returns a shared no-op singleton after one
module-global read, and no metric object is touched on the walk path.
This benchmark holds that to a hard gate, and checks the other side of
the bargain: when tracing *is* enabled, the output is a well-formed
Chrome trace_event file and the numeric results are byte-identical.

Gates (run on every CI pass):

* disabled-instrumentation walk throughput within 3% of a baseline
  whose span call sites are monkeypatched to a bare no-op callable
  (interleaved best-of-N so machine noise hits both sides equally);
* a disabled ``span()`` call stays under 5 microseconds;
* with tracing enabled the trace file parses, contains balanced B/E
  span events, and the walk matrix equals the untraced run exactly.

Results merge-update ``BENCH_obs.json`` at the repo root:

    pytest benchmarks/bench_observability.py -m smoke
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.graph import ring_of_chords
from repro.graph.walk_engine import WalkEngine
from repro.graph import walk_engine as walk_engine_mod
from repro.obs import trace
from repro.obs.trace import NULL_SPAN

NUM_NODES = 20_000
NUM_CHORDS = 60_000
NUM_CALLS = 150         # walk batches per timing pass
WALKS_PER_CALL = 512
WALK_LENGTH = 12
ROUNDS = 5              # interleaved best-of-N

OVERHEAD_BUDGET = 1.03  # disabled path within 3% of the no-op baseline
SPAN_NS_BUDGET = 5_000  # one disabled span() call, nanoseconds

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


def _record(name: str, payload: dict) -> None:
    """Merge-update one benchmark's entry in ``BENCH_obs.json``."""
    existing: dict = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
    existing[name] = payload
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True)
                          + "\n")


def _engine() -> WalkEngine:
    return WalkEngine(ring_of_chords(NUM_NODES, NUM_CHORDS, seed=5))


def _walk_pass(engine: WalkEngine) -> float:
    """Seconds for NUM_CALLS traced walk batches (spans hit per call)."""
    rng = np.random.default_rng(11)
    t0 = time.perf_counter()
    for _ in range(NUM_CALLS):
        starts = engine.sample_starts(WALKS_PER_CALL, rng)
        engine.uniform_walks(starts, WALK_LENGTH, rng)
    return time.perf_counter() - t0


@pytest.mark.smoke
def test_observability_smoke_disabled_overhead(monkeypatch):
    """Spans compiled in but disabled must not tax the walk path."""
    assert not trace.enabled()
    engine = _engine()
    _walk_pass(engine)  # warm caches/allocators before timing

    # Baseline: the very same code path with every span call site
    # resolved to a bare no-op callable — as close to "uninstrumented"
    # as exists without maintaining a stripped copy of the engine.
    noop_trace = SimpleNamespace(span=lambda *a, **kw: NULL_SPAN,
                                 instant=lambda *a, **kw: None)

    instrumented, baseline = [], []
    for _ in range(ROUNDS):
        monkeypatch.setattr(walk_engine_mod, "trace", noop_trace)
        baseline.append(_walk_pass(engine))
        monkeypatch.setattr(walk_engine_mod, "trace", trace)
        instrumented.append(_walk_pass(engine))
    best_instrumented = min(instrumented)
    best_baseline = min(baseline)

    # Two noise-robust views of the same question: the ratio of the
    # global best passes, and the best same-round pairing (immune to
    # load drift across the run).  A genuinely expensive disabled path
    # fails both; scheduler noise on a busy box fails at most one.
    ratio = min(best_instrumented / max(best_baseline, 1e-9),
                min(i / max(b, 1e-9)
                    for i, b in zip(instrumented, baseline)))
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled instrumentation costs {(ratio - 1) * 100:.2f}% "
        f"({best_instrumented:.4f}s vs {best_baseline:.4f}s baseline), "
        f"over the {(OVERHEAD_BUDGET - 1) * 100:.0f}% budget")

    # Micro: one disabled span() call, amortised over a tight loop.
    n = 200_000
    t0 = time.perf_counter_ns()
    for _ in range(n):
        trace.span("micro.noop", a=1)
    span_ns = (time.perf_counter_ns() - t0) / n
    assert span_ns < SPAN_NS_BUDGET, (
        f"disabled span() costs {span_ns:.0f}ns > {SPAN_NS_BUDGET}ns")

    _record("disabled_overhead_smoke", {
        "num_nodes": NUM_NODES,
        "walk_calls": NUM_CALLS,
        "walks_per_call": WALKS_PER_CALL,
        "walk_length": WALK_LENGTH,
        "rounds": ROUNDS,
        "instrumented_seconds": round(best_instrumented, 4),
        "baseline_seconds": round(best_baseline, 4),
        "overhead_pct": round((ratio - 1) * 100, 3),
        "disabled_span_ns": round(span_ns, 1),
    })


@pytest.mark.smoke
def test_observability_smoke_enabled_trace_is_valid(tmp_path):
    """Tracing on: parseable Perfetto file, byte-identical results."""
    engine = _engine()
    rng_args = dict(length=WALK_LENGTH, p=0.5, q=2.0)
    starts = engine.sample_starts(512, np.random.default_rng(3))

    untraced = engine.node2vec_walks(starts, rng=np.random.default_rng(9),
                                     **rng_args)

    path = tmp_path / "walks.trace.json"
    trace.enable(path)
    try:
        traced = engine.node2vec_walks(starts,
                                       rng=np.random.default_rng(9),
                                       **rng_args)
        with trace.span("bench.marker", check=True):
            pass
    finally:
        trace.disable()

    # Instrumentation must never touch the RNG stream.
    assert np.array_equal(untraced, traced)

    events = trace.load_trace(path)
    assert events, "enabled tracing produced an empty file"
    begins = [e for e in events if e.get("ph") == "B"]
    ends = [e for e in events if e.get("ph") == "E"]
    assert begins and len(begins) == len(ends)
    names = {e["name"] for e in begins}
    assert "walks.biased" in names
    assert "bench.marker" in names
    for event in begins + ends:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    # The whole file is strict JSON too (close() seals the array).
    assert isinstance(json.loads(path.read_text()), list)

    summary = {row["name"]: row for row in trace.summarize_trace([path])}
    _record("enabled_trace_smoke", {
        "events": len(events),
        "span_names": sorted(names),
        "biased_walk_ms": round(
            summary["walks.biased"]["total_us"] / 1000.0, 3),
        "byte_identical": True,
    })
