"""Distributed-sweep smoke benchmark: a two-worker fleet over a grid.

Gates the scheduler subsystem on every CI pass at seconds scale: a
smoke-profile grid of >= 4 specs is drained by two real worker
processes through the filesystem job queue, and the run must finish
with **zero duplicate fits** (the queue's ``fits.log`` audit trail is
the counter) while producing artifacts identical to a sequential
``run_many`` over the same specs:

    pytest benchmarks/bench_sweep_scheduler.py -m smoke
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments import Runner
from repro.experiments.sweep import grid, run_sweep

#: >= 4 specs on the smallest dataset under the seconds-scale profile
MODELS = ("er", "ba", "gae", "taggen")
DATASET = "EMAIL"


@pytest.mark.smoke
def test_sweep_smoke_two_workers_zero_duplicate_fits(tmp_path):
    specs = grid(MODELS, DATASET, profiles="smoke")
    assert len(specs) >= 4

    start = time.perf_counter()
    report = run_sweep(specs, tmp_path / "queue", tmp_path / "cache",
                       workers=2, with_metrics=True, lease_timeout=60.0,
                       timeout=600)
    elapsed = time.perf_counter() - start

    assert not report.failures
    assert report.completed == len(specs)
    # Exactly one fit per spec across the whole fleet: the atomic-rename
    # claim makes double execution impossible on the healthy path.
    assert len(report.fits) == len(specs)
    assert report.duplicate_fits == 0

    # The distributed artifacts match a sequential baseline bit-for-bit.
    sequential = Runner(cache_dir=tmp_path / "seq").run_many(
        specs, with_metrics=True)
    for got, want in zip(report.results, sequential):
        assert (got.generated.adjacency != want.generated.adjacency).nnz == 0
        assert json.dumps(got.metrics, sort_keys=True) == \
            json.dumps(want.metrics, sort_keys=True)

    print(f"\n[sweep smoke] {len(specs)} specs, 2 workers: "
          f"{report.seconds:.2f}s sweep / {elapsed:.2f}s total, "
          f"{len(report.fits)} fits, {report.duplicate_fits} duplicates")
