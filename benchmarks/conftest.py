"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Make `common` importable when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: seconds-scale benchmark subset safe to run on every CI "
        "pass (e.g. pytest benchmarks/bench_fig8_scalability.py -m smoke)")
