"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Make `common` importable when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
