"""Table IV: running time of every method on every dataset.

Reuses the cached (fit + generate) timings collected for Figures 4/5.
Paper shapes: ER/BA have no training phase and run orders of magnitude
faster than deep models; FairGen is substantially cheaper than NetGAN
while outperforming it on the fairness metrics.
"""

from __future__ import annotations

import numpy as np

from common import MODEL_NAMES, format_table, get_run
from repro.data import dataset_names

PAPER_TABLE4 = {
    # seconds on the authors' hardware, for shape comparison only
    "ER": {"EMAIL": 0.093, "GNU": 0.109, "CA": 0.078, "FB": 0.469,
           "BLOG": 0.938, "ACM": 1.860, "FLICKR": 1.423},
    "NetGAN": {"EMAIL": 1397.36, "GNU": 8323.7, "CA": 5643.21,
               "FB": 3218.64, "BLOG": 6036.42, "ACM": 29688.28,
               "FLICKR": 7834.12},
    "FairGen": {"EMAIL": 394.65, "GNU": 2254.37, "CA": 1768.25,
                "FB": 1013.66, "BLOG": 3248.86, "ACM": 11429.91,
                "FLICKR": 4969.56},
}


def _collect():
    table = {}
    for model_name in MODEL_NAMES:
        table[model_name] = {}
        for dataset_name in dataset_names():
            run = get_run(model_name, dataset_name)
            table[model_name][dataset_name] = (run.fit_seconds
                                               + run.generate_seconds)
    return table


def test_table4_running_time(benchmark):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for model_name in MODEL_NAMES:
        rows.append([model_name] + [f"{table[model_name][d]:.2f}"
                                    for d in dataset_names()])
    print("\n\nTable IV — running time in seconds (fit + generate)")
    print(format_table(["model", *dataset_names()], rows))

    totals = {m: sum(table[m].values()) for m in MODEL_NAMES}
    # Shape 1: random models are far cheaper than every deep model.
    deep_min = min(totals[m] for m in ("GAE", "NetGAN", "TagGen",
                                       "FairGen"))
    assert max(totals["ER"], totals["BA"]) < deep_min
    # Shape 2: all timings are positive and finite.
    assert all(np.isfinite(t) and t > 0 for t in totals.values())
