"""Persistence for graphs and fitted generative models.

Two artifact families live here:

* :func:`save_graph` / :func:`load_graph` — any :class:`~repro.graph.Graph`
  as a compressed ``.npz`` (CSR structure only; edge weights are binary).
  This is the storage format of the experiment Runner's disk cache
  (:mod:`repro.experiments`).
* :func:`save_model` / :func:`load_model` — any fitted registry model
  (FairGen and its ablations, ER, BA, GAE, NetGAN, TagGen, GraphRNN)
  without the training pipeline: the archive stores the model class, its
  constructor configuration and its flat ``state_dict`` arrays.  Loading
  against the original graph restores a model that can ``generate`` and
  ``propose_edges`` (optimizer and curriculum state are not preserved —
  reloading is for inference, not for resuming training).  This is how
  the Runner's artifact cache satisfies ``need_model=True`` with zero
  refits and ships fitted models across worker processes.

:func:`save_fairgen` / :func:`load_fairgen` survive as FairGen-typed
wrappers over the generic pair.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..graph import Graph
from ..models import (BAModel, ERModel, GAEModel,
                      GraphGenerativeModel, GraphRNN, NetGAN, TagGen)
from .fairgen import FairGen

__all__ = ["save_graph", "load_graph", "save_model", "load_model",
           "can_serialize", "save_fairgen", "load_fairgen"]


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Serialise a graph to a compressed ``.npz`` archive.

    Only the CSR structure is stored (indptr + indices); adjacency
    weights are binary by construction, so the archive is roughly the
    size of the edge list.
    """
    adj = graph.adjacency
    np.savez_compressed(
        path,
        format=np.frombuffer(b"graph-csr-v1", dtype=np.uint8),
        num_nodes=np.array([graph.num_nodes], dtype=np.int64),
        indptr=adj.indptr.astype(np.int64),
        indices=adj.indices.astype(np.int64))


def load_graph(path: str | os.PathLike) -> Graph:
    """Restore a graph saved by :func:`save_graph`."""
    import scipy.sparse as sp

    with np.load(path) as archive:
        if "format" not in archive:
            raise ValueError(f"{path} is not a graph archive")
        fmt = archive["format"].tobytes().decode()
        if fmt != "graph-csr-v1":
            raise ValueError(f"{path}: unsupported graph archive "
                             f"format {fmt!r}")
        n = int(archive["num_nodes"][0])
        indptr = archive["indptr"]
        indices = archive["indices"]
    data = np.ones(indices.size, dtype=np.float64)
    return Graph(sp.csr_matrix((data, indices, indptr), shape=(n, n)))


#: bump when the model archive layout changes incompatibly
MODEL_FORMAT = "model-npz-v1"

#: every serialisable model class, keyed by ``type(model).__name__``
_MODEL_CLASSES: dict[str, type[GraphGenerativeModel]] = {
    cls.__name__: cls
    for cls in (FairGen, ERModel, BAModel, GAEModel, NetGAN, TagGen,
                GraphRNN)}


def can_serialize(model: GraphGenerativeModel) -> bool:
    """Whether :func:`save_model` / :func:`load_model` cover ``model``.

    The loader has to rebuild the exact class from the archive, so only
    the known model classes round-trip; subclasses and third-party
    registry models don't (the Runner degrades them to graph-only
    caching instead of failing the run).
    """
    return _MODEL_CLASSES.get(type(model).__name__) is type(model)


def save_model(model: GraphGenerativeModel, path: str | os.PathLike) -> None:
    """Serialise any fitted registry model to a compressed ``.npz``.

    The archive records the model class, its display ``name`` (FairGen
    ablation variants share one class), the ``config_dict`` constructor
    parameters and the flat ``state_dict`` arrays.
    """
    if not model.is_fitted:
        raise ValueError("only fitted models can be saved")
    if not can_serialize(model):
        raise ValueError(f"{type(model).__name__} is not a registered "
                         "serialisable model class")
    header = {"class": type(model).__name__, "name": model.name,
              "num_nodes": model._fitted_graph.num_nodes,
              "config": model.config_dict()}
    payload: dict[str, np.ndarray] = {
        "format": np.frombuffer(MODEL_FORMAT.encode(), dtype=np.uint8),
        "header_json": np.frombuffer(json.dumps(header).encode(),
                                     dtype=np.uint8),
    }
    for name, value in model.state_dict().items():
        payload[f"state/{name}"] = np.asarray(value)
    np.savez_compressed(path, **payload)


def load_model(path: str | os.PathLike,
               graph: Graph) -> GraphGenerativeModel:
    """Restore a model saved by :func:`save_model` for inference.

    ``graph`` must be the graph the model was fitted on (generation
    needs its size, edge count and — for FairGen — protected volume).
    """
    with np.load(path) as archive:
        if "format" not in archive or "header_json" not in archive:
            raise ValueError(f"{path} is not a model archive")
        fmt = archive["format"].tobytes().decode()
        if fmt != MODEL_FORMAT:
            raise ValueError(f"{path}: unsupported model archive "
                             f"format {fmt!r}")
        header = json.loads(archive["header_json"].tobytes().decode())
        state = {name.removeprefix("state/"): archive[name]
                 for name in archive.files if name.startswith("state/")}

    cls = _MODEL_CLASSES.get(header["class"])
    if cls is None:
        raise ValueError(f"{path}: unknown model class "
                         f"{header['class']!r}")
    if header["num_nodes"] != graph.num_nodes:
        raise ValueError("graph does not match the saved model "
                         f"({header['num_nodes']} vs {graph.num_nodes} "
                         "nodes)")
    model = cls.from_config_dict(header["config"])
    model.name = header["name"]
    model._fitted_graph = graph
    model.load_state_dict(state)
    return model


def save_fairgen(model: FairGen, path: str | os.PathLike) -> None:
    """Serialise a fitted FairGen (wrapper over :func:`save_model`)."""
    if model.generator is None or model.discriminator is None:
        raise ValueError("only fitted models can be saved")
    save_model(model, path)


def load_fairgen(path: str | os.PathLike, graph: Graph) -> FairGen:
    """Restore a FairGen saved by :func:`save_fairgen` for inference."""
    model = load_model(path, graph)
    if not isinstance(model, FairGen):
        raise ValueError(f"{path} holds a {type(model).__name__}, "
                         "not a FairGen")
    return model
