"""Persistence for graphs and trained FairGen models.

Two artifact families live here:

* :func:`save_graph` / :func:`load_graph` — any :class:`~repro.graph.Graph`
  as a compressed ``.npz`` (CSR structure only; edge weights are binary).
  This is the storage format of the experiment Runner's disk cache
  (:mod:`repro.experiments`).
* :func:`save_fairgen` / :func:`load_fairgen` — a fitted FairGen without
  the training pipeline: the archive stores the configuration, the
  generator and discriminator parameters, the node features and the
  protected mask.  Loading against the original graph restores a model
  that can ``generate`` and ``propose_edges`` (the self-paced training
  state is not preserved — reloading is for inference, not for resuming
  Algorithm 1).
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np

from ..graph import Graph
from .config import FairGenConfig
from .discriminator import FairDiscriminator
from .fairgen import FairGen
from ..models.walk_lm import TransformerWalkModel

__all__ = ["save_graph", "load_graph", "save_fairgen", "load_fairgen"]


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Serialise a graph to a compressed ``.npz`` archive.

    Only the CSR structure is stored (indptr + indices); adjacency
    weights are binary by construction, so the archive is roughly the
    size of the edge list.
    """
    adj = graph.adjacency
    np.savez_compressed(
        path,
        format=np.frombuffer(b"graph-csr-v1", dtype=np.uint8),
        num_nodes=np.array([graph.num_nodes], dtype=np.int64),
        indptr=adj.indptr.astype(np.int64),
        indices=adj.indices.astype(np.int64))


def load_graph(path: str | os.PathLike) -> Graph:
    """Restore a graph saved by :func:`save_graph`."""
    import scipy.sparse as sp

    with np.load(path) as archive:
        if "format" not in archive:
            raise ValueError(f"{path} is not a graph archive")
        fmt = archive["format"].tobytes().decode()
        if fmt != "graph-csr-v1":
            raise ValueError(f"{path}: unsupported graph archive "
                             f"format {fmt!r}")
        n = int(archive["num_nodes"][0])
        indptr = archive["indptr"]
        indices = archive["indices"]
    data = np.ones(indices.size, dtype=np.float64)
    return Graph(sp.csr_matrix((data, indices, indptr), shape=(n, n)))


def save_fairgen(model: FairGen, path: str | os.PathLike) -> None:
    """Serialise a fitted FairGen to a compressed ``.npz`` archive."""
    if model.generator is None or model.discriminator is None:
        raise ValueError("only fitted models can be saved")
    payload: dict[str, np.ndarray] = {
        "config_json": np.frombuffer(
            json.dumps(dataclasses.asdict(model.config)).encode(),
            dtype=np.uint8),
        "protected_mask": model.protected_mask.astype(np.int8),
        "features": model.features,
        "num_classes": np.array([model.discriminator.num_classes]),
    }
    for name, value in model.generator.state_dict().items():
        payload[f"generator/{name}"] = value
    for name, value in model.discriminator.mlp.state_dict().items():
        payload[f"discriminator/{name}"] = value
    np.savez_compressed(path, **payload)


def load_fairgen(path: str | os.PathLike, graph: Graph) -> FairGen:
    """Restore a FairGen saved by :func:`save_fairgen` for inference.

    ``graph`` must be the graph the model was fitted on (generation needs
    its size, edge count and protected volume).
    """
    with np.load(path) as archive:
        config = FairGenConfig(**json.loads(
            archive["config_json"].tobytes().decode()))
        protected = archive["protected_mask"].astype(bool)
        features = archive["features"]
        num_classes = int(archive["num_classes"][0])
        generator_state = {
            name.removeprefix("generator/"): archive[name]
            for name in archive.files if name.startswith("generator/")}
        discriminator_state = {
            name.removeprefix("discriminator/"): archive[name]
            for name in archive.files if name.startswith("discriminator/")}

    if protected.shape != (graph.num_nodes,):
        raise ValueError("graph does not match the saved model "
                         f"({protected.size} vs {graph.num_nodes} nodes)")

    model = FairGen(config)
    model._fitted_graph = graph
    model.protected_mask = protected
    model.features = features

    init_rng = np.random.default_rng(0)
    model.generator = TransformerWalkModel(
        graph.num_nodes, config.model_dim, config.num_heads,
        config.num_layers, config.walk_length, init_rng)
    model.generator.load_state_dict(generator_state)

    model.discriminator = FairDiscriminator(
        features, num_classes, protected, init_rng,
        hidden_dim=config.hidden_dim, lr=config.discriminator_lr,
        alpha=config.alpha, beta=config.beta,
        gamma=config.gamma if config.use_parity else 0.0)
    model.discriminator.mlp.load_state_dict(discriminator_state)
    return model
