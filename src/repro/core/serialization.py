"""Persistence for graphs and fitted generative models.

Two artifact families live here:

* :func:`save_graph` / :func:`load_graph` — any :class:`~repro.graph.Graph`
  as a compressed ``.npz`` (CSR structure only; edge weights are binary).
  This is the storage format of the experiment Runner's disk cache
  (:mod:`repro.experiments`).
* :func:`save_model` / :func:`load_model` — any fitted registry model
  (FairGen and its ablations, ER, BA, GAE, NetGAN, TagGen, GraphRNN)
  without the training pipeline: the archive stores the model class, its
  constructor configuration and its flat ``state_dict`` arrays.  Loading
  against the original graph restores a model that can ``generate`` and
  ``propose_edges`` (optimizer and curriculum state are not preserved —
  reloading is for inference, not for resuming training).  This is how
  the Runner's artifact cache satisfies ``need_model=True`` with zero
  refits and ships fitted models across worker processes.

:func:`save_fairgen` / :func:`load_fairgen` survive as FairGen-typed
wrappers over the generic pair.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..graph import Graph
from ..models import (BAModel, ERModel, GAEModel,
                      GraphGenerativeModel, GraphRNN, NetGAN, TagGen)
from .fairgen import FairGen

__all__ = ["save_graph", "load_graph", "save_model", "load_model",
           "can_serialize", "save_fairgen", "load_fairgen"]


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Serialise a graph to a compressed ``.npz`` archive.

    Only the CSR structure is stored (indptr + indices); adjacency
    weights are binary by construction, so the archive is roughly the
    size of the edge list.
    """
    adj = graph.adjacency
    np.savez_compressed(
        path,
        format=np.frombuffer(b"graph-csr-v1", dtype=np.uint8),
        num_nodes=np.array([graph.num_nodes], dtype=np.int64),
        indptr=adj.indptr.astype(np.int64),
        indices=adj.indices.astype(np.int64))


def load_graph(path: str | os.PathLike) -> Graph:
    """Restore a graph saved by :func:`save_graph`."""
    import scipy.sparse as sp

    with np.load(path) as archive:
        if "format" not in archive:
            raise ValueError(f"{path} is not a graph archive")
        fmt = archive["format"].tobytes().decode()
        if fmt != "graph-csr-v1":
            raise ValueError(f"{path}: unsupported graph archive "
                             f"format {fmt!r}")
        n = int(archive["num_nodes"][0])
        indptr = archive["indptr"]
        indices = archive["indices"]
    data = np.ones(indices.size, dtype=np.float64)
    return Graph(sp.csr_matrix((data, indices, indptr), shape=(n, n)))


#: bump when the model archive layout changes incompatibly
MODEL_FORMAT = "model-npz-v1"

#: every serialisable model class, keyed by ``type(model).__name__``
_MODEL_CLASSES: dict[str, type[GraphGenerativeModel]] = {
    cls.__name__: cls
    for cls in (FairGen, ERModel, BAModel, GAEModel, NetGAN, TagGen,
                GraphRNN)}


def can_serialize(model: GraphGenerativeModel) -> bool:
    """Whether :func:`save_model` / :func:`load_model` cover ``model``.

    The loader has to rebuild the exact class from the archive, so only
    the known model classes round-trip; subclasses and third-party
    registry models don't (the Runner degrades them to graph-only
    caching instead of failing the run).
    """
    return _MODEL_CLASSES.get(type(model).__name__) is type(model)


def save_model(model: GraphGenerativeModel, path: str | os.PathLike, *,
               compress: bool = True) -> None:
    """Serialise any fitted registry model to an ``.npz`` archive.

    The archive records the model class, its display ``name`` (FairGen
    ablation variants share one class), the ``config_dict`` constructor
    parameters and the flat ``state_dict`` arrays.

    ``compress=False`` stores the arrays uncompressed (``ZIP_STORED``),
    which is what lets ``load_model(..., mmap=True)`` map the weight
    arrays straight off disk — the layout the serving daemon's model
    LRU wants.  Compressed archives stay the default for the experiment
    cache, where disk footprint wins.
    """
    if not model.is_fitted:
        raise ValueError("only fitted models can be saved")
    if not can_serialize(model):
        raise ValueError(f"{type(model).__name__} is not a registered "
                         "serialisable model class")
    header = {"class": type(model).__name__, "name": model.name,
              "num_nodes": model._fitted_graph.num_nodes,
              "config": model.config_dict()}
    payload: dict[str, np.ndarray] = {
        "format": np.frombuffer(MODEL_FORMAT.encode(), dtype=np.uint8),
        "header_json": np.frombuffer(json.dumps(header).encode(),
                                     dtype=np.uint8),
    }
    for name, value in model.state_dict().items():
        payload[f"state/{name}"] = np.asarray(value)
    if compress:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)


def _npz_member_layout(
        path: str | os.PathLike
) -> dict[str, tuple[int, np.dtype, tuple]] | None:
    """``{name: (data_offset, dtype, shape)}`` of an uncompressed npz.

    The layout is all a reader needs to map (or re-map) the archive's
    members without re-parsing the zip — the sharded graph store caches
    it per shard so LRU re-entry of an evicted shard costs one ``mmap``
    instead of a zip walk.  Returns ``None`` when the archive cannot be
    mapped (compressed members, object or Fortran-order arrays).
    """
    import zipfile

    from numpy.lib import format as npy_format

    layout: dict[str, tuple[int, np.dtype, tuple]] = {}
    with zipfile.ZipFile(path) as zf:
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            # Resolve the payload offset from the member's *local* file
            # header (its name/extra lengths may differ from the central
            # directory's copy).
            with open(path, "rb") as raw:
                raw.seek(info.header_offset)
                local = raw.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            data_start = info.header_offset + 30 + name_len + extra_len
            with zf.open(info.filename) as member:
                version = npy_format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        npy_format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = \
                        npy_format.read_array_header_2_0(member)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                offset = data_start + member.tell()
            key = info.filename.removesuffix(".npy")
            layout[key] = (offset, dtype, tuple(shape))
    return layout


def _mmap_npz(path: str | os.PathLike) -> dict[str, np.ndarray] | None:
    """Map every array of an uncompressed ``.npz`` straight off disk.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request
    for zip archives, so this maps the members by hand via
    :func:`_npz_member_layout` and wraps each data region in a
    read-only :class:`numpy.memmap`.  Returns ``None`` when the archive
    cannot be mapped so the caller can fall back to a normal in-memory
    load.
    """
    layout = _npz_member_layout(path)
    if layout is None:
        return None
    return {name: np.memmap(path, dtype=dtype, mode="r",
                            offset=offset, shape=shape)
            for name, (offset, dtype, shape) in layout.items()}


def load_model(path: str | os.PathLike, graph: Graph, *,
               mmap: bool = False) -> GraphGenerativeModel:
    """Restore a model saved by :func:`save_model` for inference.

    ``graph`` must be the graph the model was fitted on (generation
    needs its size, edge count and — for FairGen — protected volume).

    With ``mmap=True`` the weight arrays of an uncompressed archive
    (``save_model(..., compress=False)``) are memory-mapped read-only
    instead of copied into the heap, so a serving process can keep many
    models resident for the cost of the page cache.  The restored
    parameters alias the mapping and are therefore immutable — the
    model can generate and score but any attempt to train it raises.
    Compressed archives fall back to a normal in-memory load.
    """
    mapped = _mmap_npz(path) if mmap else None
    if mapped is not None:
        if "format" not in mapped or "header_json" not in mapped:
            raise ValueError(f"{path} is not a model archive")
        fmt = np.asarray(mapped["format"]).tobytes().decode()
        if fmt != MODEL_FORMAT:
            raise ValueError(f"{path}: unsupported model archive "
                             f"format {fmt!r}")
        header = json.loads(
            np.asarray(mapped["header_json"]).tobytes().decode())
        state = {name.removeprefix("state/"): value
                 for name, value in mapped.items()
                 if name.startswith("state/")}
    else:
        with np.load(path) as archive:
            if "format" not in archive or "header_json" not in archive:
                raise ValueError(f"{path} is not a model archive")
            fmt = archive["format"].tobytes().decode()
            if fmt != MODEL_FORMAT:
                raise ValueError(f"{path}: unsupported model archive "
                                 f"format {fmt!r}")
            header = json.loads(archive["header_json"].tobytes().decode())
            state = {name.removeprefix("state/"): archive[name]
                     for name in archive.files if name.startswith("state/")}

    cls = _MODEL_CLASSES.get(header["class"])
    if cls is None:
        raise ValueError(f"{path}: unknown model class "
                         f"{header['class']!r}")
    if header["num_nodes"] != graph.num_nodes:
        raise ValueError("graph does not match the saved model "
                         f"({header['num_nodes']} vs {graph.num_nodes} "
                         "nodes)")
    model = cls.from_config_dict(header["config"])
    model.name = header["name"]
    model._fitted_graph = graph
    model.load_state_dict(state)
    return model


def save_fairgen(model: FairGen, path: str | os.PathLike) -> None:
    """Serialise a fitted FairGen (wrapper over :func:`save_model`)."""
    if model.generator is None or model.discriminator is None:
        raise ValueError("only fitted models can be saved")
    save_model(model, path)


def load_fairgen(path: str | os.PathLike, graph: Graph) -> FairGen:
    """Restore a FairGen saved by :func:`save_fairgen` for inference."""
    model = load_model(path, graph)
    if not isinstance(model, FairGen):
        raise ValueError(f"{path} holds a {type(model).__name__}, "
                         "not a FairGen")
    return model
