"""FairGen core: the paper's primary contribution."""

from .config import FairGenConfig
from .context_sampling import ContextSampler
from .discriminator import FairDiscriminator
from .fairness import (cost_sensitive_weights, group_class_means,
                       parity_loss, statistical_parity_gap)
from .self_paced import SelfPacedState
from .fairgen import FairGen, make_fairgen_variant
from .serialization import (load_fairgen, load_graph, save_fairgen,
                            save_graph)

__all__ = [
    "FairGenConfig",
    "ContextSampler",
    "FairDiscriminator",
    "cost_sensitive_weights", "group_class_means", "parity_loss",
    "statistical_parity_gap",
    "SelfPacedState",
    "FairGen", "make_fairgen_variant",
    "save_fairgen", "load_fairgen", "save_graph", "load_graph",
]
