"""FairGen core: the paper's primary contribution."""

from .config import FairGenConfig
from .context_sampling import ContextSampler
from .discriminator import FairDiscriminator
from .fairness import (cost_sensitive_weights, group_class_means,
                       parity_loss, statistical_parity_gap)
from .self_paced import SelfPacedState
from .fairgen import FairGen, make_fairgen_variant
from .serialization import (can_serialize, load_fairgen, load_graph,
                            load_model, save_fairgen, save_graph,
                            save_model)

__all__ = [
    "FairGenConfig",
    "ContextSampler",
    "FairDiscriminator",
    "cost_sensitive_weights", "group_class_means", "parity_loss",
    "statistical_parity_gap",
    "SelfPacedState",
    "FairGen", "make_fairgen_variant",
    "save_fairgen", "load_fairgen", "save_graph", "load_graph",
    "save_model", "load_model", "can_serialize",
]
