"""Self-paced learning state (Section II-B, M3).

The self-paced vectors ``v^(c) in {0,1}^n`` select which nodes participate
in the label-propagation loss.  Their closed-form update (Eq. 14) admits a
node into class ``c`` when its prediction loss ``-log P(y=c|x)`` falls
below the threshold ``lambda``; raising ``lambda`` each cycle admits
progressively *harder* examples — the easy-to-hard curriculum.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SelfPacedState"]


class SelfPacedState:
    """Tracks ``v^(1..C)``, the threshold ``lambda`` and pseudo labels."""

    def __init__(self, num_nodes: int, num_classes: int,
                 labeled_nodes: np.ndarray, labeled_classes: np.ndarray,
                 lambda_init: float, lambda_growth: float):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if lambda_init <= 0:
            raise ValueError("lambda must be positive")
        self.num_nodes = num_nodes
        self.num_classes = num_classes
        self.lambda_value = float(lambda_init)
        self.lambda_growth = float(lambda_growth)

        labeled_nodes = np.asarray(labeled_nodes, dtype=np.int64)
        labeled_classes = np.asarray(labeled_classes, dtype=np.int64)
        if labeled_nodes.size == 0:
            raise ValueError("at least one labeled node is required")
        if labeled_classes.min() < 0 or labeled_classes.max() >= num_classes:
            raise ValueError("class label out of range")
        self._ground_truth_nodes = labeled_nodes
        self._ground_truth_classes = labeled_classes

        # Algorithm 1, step 1: v_i^(c) = 1 for nodes labeled c, else 0.
        self.v = np.zeros((num_nodes, num_classes), dtype=np.int8)
        self.v[labeled_nodes, labeled_classes] = 1

    # ------------------------------------------------------------------
    @property
    def ground_truth_nodes(self) -> np.ndarray:
        return self._ground_truth_nodes

    @property
    def ground_truth_classes(self) -> np.ndarray:
        return self._ground_truth_classes

    def is_ground_truth(self, node: int) -> bool:
        return node in set(self._ground_truth_nodes.tolist())

    # ------------------------------------------------------------------
    def augment_lambda(self) -> float:
        """Algorithm 1, step 7: grow the threshold, returning the new value."""
        self.lambda_value *= self.lambda_growth
        return self.lambda_value

    def update(self, log_probs: np.ndarray,
               max_per_class: int | None = None) -> np.ndarray:
        """Eq. 14: ``v_i^(c) = 1  iff  -log P(y=c|x_i) < lambda``.

        Ground-truth assignments are pinned to 1 regardless of the model's
        current confidence.  ``max_per_class`` optionally keeps only the
        most confident admissions per class — the standard self-paced
        safeguard against one class flooding the curriculum when the
        threshold first crosses the model's typical confidence level.
        Returns the updated matrix.
        """
        log_probs = np.asarray(log_probs, dtype=np.float64)
        if log_probs.shape != (self.num_nodes, self.num_classes):
            raise ValueError("log_probs must be (num_nodes, num_classes)")
        self.v = (-log_probs < self.lambda_value).astype(np.int8)
        self.v[self._ground_truth_nodes] = 0
        if max_per_class is not None:
            if max_per_class < 0:
                raise ValueError("max_per_class must be non-negative")
            for cls in range(self.num_classes):
                admitted = np.flatnonzero(self.v[:, cls])
                if admitted.size > max_per_class:
                    confident = admitted[np.argsort(
                        -log_probs[admitted, cls])[:max_per_class]]
                    self.v[:, cls] = 0
                    self.v[confident, cls] = 1
        self.v[self._ground_truth_nodes, self._ground_truth_classes] = 1
        return self.v

    # ------------------------------------------------------------------
    def selected_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All (node, class) pairs with ``v = 1`` (for the J_L term)."""
        nodes, classes = np.nonzero(self.v)
        return nodes.astype(np.int64), classes.astype(np.int64)

    def pseudo_labels(self, log_probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Augmented training set: ground truth plus confident pseudo labels.

        A node becomes pseudo-labeled with its most likely class when its
        self-paced vector admits that class.  Ground-truth labels always
        win over pseudo labels (Algorithm 1, step 8).
        """
        log_probs = np.asarray(log_probs, dtype=np.float64)
        best = log_probs.argmax(axis=1)
        admitted = self.v[np.arange(self.num_nodes), best] == 1
        admitted[self._ground_truth_nodes] = False
        pseudo_nodes = np.flatnonzero(admitted)
        nodes = np.concatenate([self._ground_truth_nodes, pseudo_nodes])
        classes = np.concatenate([self._ground_truth_classes,
                                  best[pseudo_nodes]])
        return nodes, classes

    def num_selected(self) -> int:
        """Total count of active (node, class) selections."""
        return int(self.v.sum())
