"""The fair predictive model ``d_omega`` (Section II-B, M2).

A three-layer MLP over node features trained on three coupled objectives:

* ``J_P`` — cost-sensitive cross-entropy on the ground-truth labels, with
  the Eq. 9 weights that up-weight the protected group;
* ``J_L`` — self-paced label-propagation likelihood over the (node, class)
  pairs admitted by the self-paced vectors;
* ``J_F`` — the statistical-parity regularizer of Eqs. 10-11.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Adam, Tensor, no_grad
from ..nn import functional as F
from .fairness import cost_sensitive_weights, parity_loss

__all__ = ["FairDiscriminator"]


class FairDiscriminator:
    """Cost-sensitive, parity-regularized node classifier."""

    def __init__(self, features: np.ndarray, num_classes: int,
                 protected_mask: np.ndarray, rng: np.random.Generator,
                 hidden_dim: int = 32, lr: float = 0.01,
                 alpha: float = 1.0, beta: float = 1.0, gamma: float = 1.0):
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be (num_nodes, feature_dim)")
        self.features = features
        self.num_nodes, self.feature_dim = features.shape
        self.num_classes = num_classes
        self.protected_mask = np.asarray(protected_mask, dtype=bool)
        if self.protected_mask.shape != (self.num_nodes,):
            raise ValueError("protected_mask must have one flag per node")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        # "The architecture of the discriminator is a three-layer MLP."
        self.mlp = MLP([self.feature_dim, hidden_dim, hidden_dim, num_classes],
                       rng)
        self.optimizer = Adam(self.mlp.parameters(), lr=lr)
        self.loss_history: list[dict[str, float]] = []

    # ------------------------------------------------------------------
    def log_probs(self, nodes: np.ndarray | None = None) -> Tensor:
        """Differentiable log P(y|x) for the given nodes (default: all)."""
        if nodes is None:
            x = Tensor(self.features)
        else:
            x = Tensor(self.features[np.asarray(nodes, dtype=np.int64)])
        return self.mlp(x).log_softmax(axis=-1)

    def predict_log_proba(self) -> np.ndarray:
        """Log-probabilities for every node, computed grad-free.

        This is pure scoring — the self-paced curriculum and the
        pseudo-label selection consume the values, never the gradient —
        so the forward runs under :class:`~repro.nn.no_grad`: the same
        float operations in the same order (bit-identical output), but
        no autograd graph is built or retained over the ``n × C``
        full-batch pass each training cycle pays.
        """
        with no_grad():
            return self.log_probs().numpy().copy()

    def predict_proba(self) -> np.ndarray:
        return np.exp(self.predict_log_proba())

    def predict(self) -> np.ndarray:
        return self.predict_log_proba().argmax(axis=1)

    # ------------------------------------------------------------------
    def train_step(self, batch_nodes: np.ndarray, batch_classes: np.ndarray,
                   sp_nodes: np.ndarray, sp_classes: np.ndarray) -> dict[str, float]:
        """One SGD step on ``J_P + J_L + J_F`` (Algorithm 1, step 10).

        ``batch_nodes/classes`` come from the (augmented) labeled set L;
        ``sp_nodes/sp_classes`` are the (node, class) pairs currently
        admitted by the self-paced vectors (the J_L selection).
        """
        self.optimizer.zero_grad()
        zero = Tensor(np.zeros(()))

        # J_P: cost-sensitive prediction loss on the labeled batch.
        if self.alpha > 0 and batch_nodes.size:
            weights = cost_sensitive_weights(batch_nodes, self.protected_mask)
            j_p = F.nll_loss(self.log_probs(batch_nodes), batch_classes,
                             weights=weights, reduction="sum") * self.alpha
        else:
            j_p = zero

        # J_L: self-paced label propagation over admitted pairs.
        if self.beta > 0 and sp_nodes.size:
            j_l = F.nll_loss(self.log_probs(sp_nodes), sp_classes,
                             reduction="mean") * self.beta
        else:
            j_l = zero

        # J_F: statistical parity over ALL nodes (group-level constraint).
        if self.gamma > 0:
            j_f = parity_loss(self.log_probs(), self.protected_mask) * self.gamma
        else:
            j_f = zero

        loss = j_p + j_l + j_f
        loss.backward()
        self.optimizer.step()
        record = {"J_P": j_p.item(), "J_L": j_l.item(), "J_F": j_f.item(),
                  "total": loss.item()}
        self.loss_history.append(record)
        return record
