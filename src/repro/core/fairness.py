"""Fairness machinery: cost-sensitive weights (Eq. 9) and statistical
parity (Eqs. 10-11).

``J_F = gamma * sum_c || m_c^+ - m_c^- ||`` where ``m_c^+`` is the mean
log-probability of class ``c`` over the protected group and ``m_c^-`` the
same over the unprotected group.  Driving the two toward each other makes
label propagation treat both groups alike.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor

__all__ = ["cost_sensitive_weights", "group_class_means", "parity_loss",
           "statistical_parity_gap"]


def cost_sensitive_weights(nodes: np.ndarray,
                           protected_mask: np.ndarray) -> np.ndarray:
    """Eq. 9: ``xi(x) = 1/|S+|`` for protected nodes, ``1/|S-|`` otherwise.

    Because the protected group is small, its members receive much larger
    weights, forcing ``d_omega`` to attend to them.
    """
    protected_mask = np.asarray(protected_mask, dtype=bool)
    size_pos = int(protected_mask.sum())
    size_neg = int((~protected_mask).sum())
    if size_pos == 0 or size_neg == 0:
        raise ValueError("both protected and unprotected groups must be "
                         "non-empty")
    nodes = np.asarray(nodes, dtype=np.int64)
    return np.where(protected_mask[nodes], 1.0 / size_pos, 1.0 / size_neg)


def group_class_means(log_probs: Tensor, group_mask: np.ndarray) -> Tensor:
    """``m_c`` (Eq. 10/11): per-class mean log-probability over a group."""
    group_mask = np.asarray(group_mask, dtype=bool)
    count = int(group_mask.sum())
    if count == 0:
        raise ValueError("group is empty")
    weights = (group_mask.astype(np.float64) / count)[:, None]
    return (log_probs * Tensor(weights)).sum(axis=0)


def parity_loss(log_probs: Tensor, protected_mask: np.ndarray) -> Tensor:
    """Differentiable ``sum_c |m_c^+ - m_c^-|`` over all classes."""
    protected_mask = np.asarray(protected_mask, dtype=bool)
    m_pos = group_class_means(log_probs, protected_mask)
    m_neg = group_class_means(log_probs, ~protected_mask)
    return (m_pos - m_neg).abs().sum()


def statistical_parity_gap(probabilities: np.ndarray,
                           protected_mask: np.ndarray) -> float:
    """Diagnostic parity gap on plain probabilities (not log space).

    ``sum_c |E[P(y=c)|S+] - E[P(y=c)|S-]|`` — 0 means perfectly matched
    class-membership distributions between groups.
    """
    protected_mask = np.asarray(protected_mask, dtype=bool)
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError("probabilities must be (num_nodes, num_classes)")
    pos = probs[protected_mask].mean(axis=0)
    neg = probs[~protected_mask].mean(axis=0)
    return float(np.abs(pos - neg).sum())
