"""Configuration for the FairGen model (Algorithm 1 inputs).

Defaults follow Section III-B: batch size ``N1 = 128``, batch iterations
``T1 = 3``, walk length ``T = 10``, 4 transformer heads, learning rate
0.01, and loss weights ``alpha = beta = gamma = 1``.  Embedding and model
dimensions are scaled to CPU training (the paper used 100-d embeddings on
a GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FairGenConfig"]


@dataclass
class FairGenConfig:
    """Hyper-parameters of FairGen and its ablation switches."""

    # -- random-walk context sampling (f_S) --
    walk_length: int = 10          #: T, length of sampled walks
    walks_per_cycle: int = 96      #: K, walks added to N+/N- per cycle
    sampling_ratio: float = 0.5    #: r, P(general walk) vs label-guided
    delta: float = 0.5             #: diffusion-core tolerance (Def. 1)
    diffusion_steps: int = 5       #: t used when computing C_S

    # -- self-paced learning (M3) --
    # lambda admits a (node, class) pair when -log P(y=c|x) < lambda,
    # i.e. P > exp(-lambda).  Starting at 0.5 requires ~60% confidence,
    # well above the uniform baseline 1/C, so early cycles only accept
    # genuinely easy nodes; growth then relaxes the bar each cycle.
    self_paced_cycles: int = 4     #: p, outer loop count in Algorithm 1
    lambda_init: float = 0.5       #: initial threshold for Eq. 14
    lambda_growth: float = 1.4     #: multiplicative increase per cycle
    #: per-class admission budget at cycle l is (l+1) * this cap; bounds
    #: how fast pseudo labels can flood the curriculum
    pseudo_label_cap: int = 15

    # -- loss weights (Eq. 3) --
    alpha: float = 1.0             #: weight of J_P (cost-sensitive loss)
    beta: float = 1.0              #: weight of J_L (label propagation)
    gamma: float = 1.0             #: weight of J_F (parity regularizer)

    # -- generator g_theta (transformer) --
    model_dim: int = 32
    num_heads: int = 4             #: paper uses 4 heads
    num_layers: int = 2
    generator_lr: float = 0.01
    generator_steps_per_cycle: int = 8
    generator_batch: int = 32
    negative_weight: float = 0.1   #: strength of the unlikelihood term
    negative_margin: float = 2.0   #: margin below positives for negatives
    pool_capacity: int = 512       #: max walks retained in N+ / N-

    # -- discriminator d_omega (3-layer MLP) --
    feature_dim: int = 32          #: node2vec feature dimensionality
    hidden_dim: int = 32
    discriminator_lr: float = 0.01
    batch_iterations: int = 3      #: T1
    batch_size: int = 128          #: N1

    # -- generation / assembly --
    generation_walk_factor: int = 20

    # -- ablation switches (Section III-A variants) --
    use_label_informed_sampling: bool = True   #: False -> FairGen-R
    use_self_paced: bool = True                #: False -> FairGen-w/o-SPL
    use_parity: bool = True                    #: False -> FairGen-w/o-Parity

    def __post_init__(self) -> None:
        if not 0.0 <= self.sampling_ratio <= 1.0:
            raise ValueError("sampling_ratio r must be in [0, 1]")
        if self.walk_length < 2:
            raise ValueError("walk_length T must be >= 2")
        if self.self_paced_cycles < 1:
            raise ValueError("need at least one self-paced cycle")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.lambda_growth < 1.0:
            raise ValueError("lambda must be non-decreasing over cycles")
        if min(self.alpha, self.beta, self.gamma) < 0.0:
            raise ValueError("loss weights must be non-negative")

    def variant(self, **overrides) -> "FairGenConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)
