"""The FairGen model: Algorithm 1 joint training of generator and
discriminator, plus fair graph assembly (Section II-D).

Training layout (one self-paced cycle ``l``):

1. update the transformer generator ``g_theta`` from the positive pool
   ``N+`` (walks sampled by ``f_S``) and the negative pool ``N-`` (walks
   generated in the previous cycle) — MLE on positives plus an
   unlikelihood margin pushing generated-but-unrealistic walks below the
   positives;
2. sample ``K`` fresh positive walks via ``f_S`` with the updated
   self-paced vectors, and ``K`` negative walks from the current
   generator; append to the pools;
3. grow ``lambda`` and re-solve the self-paced vectors (Eq. 14),
   augmenting the labeled set with confident pseudo labels;
4. run ``T1`` discriminator steps on ``J_P + J_L + J_F``.

Generation assembles a score matrix from many generated walks and
thresholds it under the paper's two fairness criteria (protected-group
volume preservation and min-degree 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..embedding import Node2VecConfig, node2vec_embedding
from ..graph import Graph, sample_walks, walks_to_edge_counts
from ..models.base import (GraphGenerativeModel, assemble_from_scores,
                           extract_state, prefix_state)
from ..models.walk_lm import TransformerWalkModel
from ..nn import Adam, Tensor
from ..train import TrainCallback, Trainer, train_step
from .config import FairGenConfig
from .context_sampling import ContextSampler
from .discriminator import FairDiscriminator
from .self_paced import SelfPacedState

__all__ = ["FairGen", "make_fairgen_variant"]


class _FairGenCycleTask:
    """Trainer task for Algorithm 1: one epoch = one self-paced cycle.

    The epoch body covers steps 4-6 (generator update from the pools,
    then pool refresh); steps 7-11 — the curriculum and discriminator
    phase — live in the :class:`SelfPacedCurriculum` callback, which
    runs in ``on_epoch_end`` so its work is covered by the cycle's
    checkpoint.  The task also owns everything a mid-fit checkpoint has
    to carry beyond module parameters: the walk pools, the self-paced
    vectors/threshold, and the (pseudo-)augmented labeled set currently
    installed in the context sampler.
    """

    def __init__(self, owner: "FairGen", gen_opt: Adam,
                 labeled_nodes: np.ndarray, labeled_classes: np.ndarray,
                 pos_pool: np.ndarray, neg_pool: np.ndarray):
        self.owner = owner
        self.gen_opt = gen_opt
        self.labeled_nodes = labeled_nodes
        self.labeled_classes = labeled_classes
        self.pos_pool = pos_pool
        self.neg_pool = neg_pool
        #: labels currently driving ``f_S`` (ground truth + pseudo)
        self.aug_nodes = labeled_nodes
        self.aug_classes = labeled_classes

    # -- checkpoint contract -------------------------------------------
    def modules(self):
        return {"generator": self.owner.generator,
                "discriminator": self.owner.discriminator.mlp}

    def optimizers(self):
        return {"generator": self.gen_opt,
                "discriminator": self.owner.discriminator.optimizer}

    def extra_state(self):
        sp = self.owner.self_paced
        return {"pos_pool": self.pos_pool, "neg_pool": self.neg_pool,
                "sp_v": sp.v, "sp_lambda": np.array([sp.lambda_value]),
                "aug_nodes": self.aug_nodes, "aug_classes": self.aug_classes}

    def load_extra_state(self, extra) -> None:
        sp = self.owner.self_paced
        self.pos_pool = np.asarray(extra["pos_pool"], dtype=np.int64)
        self.neg_pool = np.asarray(extra["neg_pool"], dtype=np.int64)
        sp.v = np.asarray(extra["sp_v"], dtype=np.int8).copy()
        sp.lambda_value = float(extra["sp_lambda"][0])
        self.aug_nodes = np.asarray(extra["aug_nodes"], dtype=np.int64)
        self.aug_classes = np.asarray(extra["aug_classes"], dtype=np.int64)
        self.owner.sampler.update_labels(self.aug_nodes, self.aug_classes)

    # -- epoch body: Algorithm 1 steps 4-6 ------------------------------
    def epoch(self, state, rng) -> dict[str, float]:
        owner, cfg = self.owner, self.owner.config
        gen_loss = owner._train_generator(self.gen_opt, self.pos_pool,
                                          self.neg_pool, rng)
        self.pos_pool = owner._cap_pool(np.concatenate(
            [self.pos_pool, owner.sampler.sample(cfg.walks_per_cycle, rng)]))
        generated = owner.generator.sample(cfg.walks_per_cycle,
                                           cfg.walk_length, rng)
        self.neg_pool = owner._cap_pool(
            np.concatenate([self.neg_pool, generated]))
        return {"cycle": float(state.epoch), "generator_loss": gen_loss}


class SelfPacedCurriculum(TrainCallback):
    """Algorithm 1 steps 7-11 as a Trainer callback.

    Runs after each cycle's generator phase: grows ``lambda``, re-solves
    the self-paced vectors, harvests confident pseudo labels and takes
    ``T1`` discriminator steps.  One *grad-free* scoring pass
    (:meth:`FairDiscriminator.predict_log_proba`) is shared by the Eq. 14
    vector update and the pseudo-label selection — the full-batch
    forward over all ``n`` nodes happens once per cycle, with no
    autograd graph built.
    """

    def __init__(self, task: _FairGenCycleTask):
        self.task = task

    def on_epoch_end(self, trainer, state, record) -> None:
        task, owner = self.task, self.task.owner
        cfg, rng = owner.config, trainer.rng
        num_pseudo = 0
        if cfg.use_self_paced:
            owner.self_paced.augment_lambda()
            log_probs = owner.discriminator.predict_log_proba()
            owner.self_paced.update(
                log_probs,
                max_per_class=cfg.pseudo_label_cap * (state.epoch + 1))
            aug_nodes, aug_classes = owner.self_paced.pseudo_labels(log_probs)
            num_pseudo = aug_nodes.size - task.labeled_nodes.size
            owner.sampler.update_labels(aug_nodes, aug_classes)
            task.aug_nodes, task.aug_classes = aug_nodes, aug_classes
        else:
            aug_nodes, aug_classes = task.labeled_nodes, task.labeled_classes

        sp_nodes, sp_classes = owner.self_paced.selected_pairs()
        last_disc: dict[str, float] = {}
        for _ in range(cfg.batch_iterations):
            take = min(cfg.batch_size, aug_nodes.size)
            idx = rng.choice(aug_nodes.size, size=take, replace=False)
            last_disc = owner.discriminator.train_step(
                aug_nodes[idx], aug_classes[idx], sp_nodes, sp_classes)

        record.update({
            "lambda": owner.self_paced.lambda_value,
            "num_pseudo_labels": float(num_pseudo),
            **{f"disc_{k}": v for k, v in last_disc.items()},
        })


class FairGen(GraphGenerativeModel):
    """Fairness-aware, label-informed graph generative model."""

    name = "FairGen"

    def __init__(self, config: FairGenConfig | None = None):
        super().__init__()
        self.config = config or FairGenConfig()
        self.generator: TransformerWalkModel | None = None
        self.discriminator: FairDiscriminator | None = None
        self.sampler: ContextSampler | None = None
        self.self_paced: SelfPacedState | None = None
        self._protected_mask: np.ndarray | None = None
        self.features: np.ndarray | None = None
        #: lazily computed (protected_nodes, pin_fraction) for generation
        #: starts; False once computed with nothing to pin
        self._generation_plan: tuple[np.ndarray, float] | bool | None = None
        #: per-cycle diagnostics: generator loss, discriminator losses,
        #: lambda, number of pseudo labels
        self.history: list[dict[str, float]] = []

    @property
    def protected_mask(self) -> np.ndarray | None:
        """Boolean membership of the protected group ``S+``.

        Assigning a new mask (e.g. when restoring a serialized model)
        invalidates the cached generation pin plan.
        """
        return self._protected_mask

    @protected_mask.setter
    def protected_mask(self, mask: np.ndarray | None) -> None:
        self._protected_mask = mask
        self._generation_plan = None

    # ------------------------------------------------------------------
    # Training (Algorithm 1)
    # ------------------------------------------------------------------
    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None,
            labeled_nodes: np.ndarray | None = None,
            labeled_classes: np.ndarray | None = None,
            protected_mask: np.ndarray | None = None,
            num_classes: int | None = None,
            features: np.ndarray | None = None) -> "FairGen":
        """Run Algorithm 1 on an observed graph.

        Parameters
        ----------
        supervision:
            A :class:`repro.experiments.Supervision` bundling the
            few-shot labeled set, protected mask and class count — the
            uniform fit contract used by the experiment Runner.  Explicit
            keyword arrays below take precedence over its fields.
        labeled_nodes, labeled_classes:
            The few-shot labeled set ``L`` (at least one node per class).
        protected_mask:
            Boolean membership of the protected group ``S+``.
        num_classes:
            ``C``; inferred from the labels when omitted.
        features:
            Optional precomputed node features for ``d_omega``; defaults
            to node2vec embeddings of the input graph.
        """
        cfg = self.config
        self._fitted_graph = graph
        n = graph.num_nodes

        if supervision is not None:
            if (labeled_nodes is None) != (labeled_classes is None):
                raise ValueError(
                    "labeled_nodes and labeled_classes must be "
                    "overridden together when supervision is given — a "
                    "partial override would pair nodes with another "
                    "draw's classes")
            if labeled_nodes is None:
                labeled_nodes = supervision.labeled_nodes
            if labeled_classes is None:
                labeled_classes = supervision.labeled_classes
            if protected_mask is None:
                protected_mask = supervision.protected_mask
            if num_classes is None:
                num_classes = supervision.num_classes

        if labeled_nodes is None or protected_mask is None:
            raise ValueError("FairGen requires labeled nodes and a "
                             "protected-group mask; use TagGen for fully "
                             "unsupervised generation")
        labeled_nodes = np.asarray(labeled_nodes, dtype=np.int64)
        labeled_classes = np.asarray(labeled_classes, dtype=np.int64)
        self.protected_mask = np.asarray(protected_mask, dtype=bool)
        if num_classes is None:
            num_classes = int(labeled_classes.max()) + 1

        # Step 0: node features for d_omega.  The default node2vec budget
        # (6 walks/node, length 10, 3 epochs) yields near-separable
        # community features on the benchmark graphs.
        if features is None:
            features = node2vec_embedding(
                graph, Node2VecConfig(dim=cfg.feature_dim), rng)
        self.features = features

        # Step 1: initialise d_omega and the self-paced vectors.
        self.discriminator = FairDiscriminator(
            features, num_classes, self.protected_mask, rng,
            hidden_dim=cfg.hidden_dim, lr=cfg.discriminator_lr,
            alpha=cfg.alpha, beta=cfg.beta,
            gamma=cfg.gamma if cfg.use_parity else 0.0)
        self.self_paced = SelfPacedState(
            n, num_classes, labeled_nodes, labeled_classes,
            cfg.lambda_init, cfg.lambda_growth)

        ratio = cfg.sampling_ratio if cfg.use_label_informed_sampling else 1.0
        self.sampler = ContextSampler(graph, ratio, cfg.walk_length,
                                      cfg.delta, cfg.diffusion_steps)
        self.sampler.update_labels(labeled_nodes, labeled_classes)

        self.generator = TransformerWalkModel(
            n, cfg.model_dim, cfg.num_heads, cfg.num_layers,
            cfg.walk_length, rng)
        gen_opt = Adam(self.generator.parameters(), lr=cfg.generator_lr)

        # Step 2: initial pools.  Positives via f_S; negatives start as
        # plain biased walks [39] (before the generator can produce any).
        pos_pool = self.sampler.sample(cfg.walks_per_cycle, rng)
        neg_pool = sample_walks(graph, cfg.walks_per_cycle,
                                cfg.walk_length, rng)

        # Steps 3-11 run through the shared Trainer: the task's epoch is
        # the generator phase (steps 4-6), the curriculum callback the
        # self-paced + discriminator phase (steps 7-11).
        cycles = cfg.self_paced_cycles if cfg.use_self_paced else 1
        task = _FairGenCycleTask(self, gen_opt, labeled_nodes,
                                 labeled_classes, pos_pool, neg_pool)
        state = Trainer(task, epochs=cycles,
                        callbacks=[SelfPacedCurriculum(task)],
                        control=self.train_control).fit(rng)
        self.history = list(state.history)
        return self

    # ------------------------------------------------------------------
    def _train_generator(self, optimizer: Adam, pos_pool: np.ndarray,
                         neg_pool: np.ndarray,
                         rng: np.random.Generator) -> float:
        """MLE on positive walks + unlikelihood margin on negatives.

        Implements Algorithm 1's "train from N+ and N-" via negative
        sampling: the generator maximises the likelihood of real context
        walks while pushing its own previous generations at least
        ``negative_margin`` nats below the positives (only walks that
        violate the margin contribute, which keeps the loss bounded).
        The walk-LM update runs as shared :func:`~repro.train.train_step`
        steps — batch draws live inside the loss closure, so RNG
        consumption matches the legacy loop exactly.
        """
        cfg = self.config
        params = list(self.generator.parameters())

        def step_loss() -> Tensor:
            pos_idx = rng.choice(len(pos_pool),
                                 size=min(cfg.generator_batch, len(pos_pool)),
                                 replace=False)
            neg_idx = rng.choice(len(neg_pool),
                                 size=min(cfg.generator_batch, len(neg_pool)),
                                 replace=False)
            # One fused forward/backward over both pools instead of two:
            # the pools share a transformer, so scoring them per-step as
            # a single padded batch halves the network passes.
            pos_ll, neg_ll = self.generator.log_likelihood_pair(
                pos_pool[pos_idx], neg_pool[neg_idx])
            floor = float(pos_ll.numpy().mean()) - cfg.negative_margin
            penalty = (neg_ll - floor).relu().mean()
            return -pos_ll.mean() + penalty * cfg.negative_weight

        losses = [train_step(optimizer, params, step_loss, clip_norm=5.0)
                  for _ in range(cfg.generator_steps_per_cycle)]
        return float(np.mean(losses))

    def _cap_pool(self, pool: np.ndarray) -> np.ndarray:
        """Keep only the most recent ``pool_capacity`` walks."""
        cap = self.config.pool_capacity
        return pool[-cap:] if len(pool) > cap else pool

    # ------------------------------------------------------------------
    # Generation (Section II-D)
    # ------------------------------------------------------------------
    def _generation_starts(self, take: int,
                           rng: np.random.Generator) -> np.ndarray | None:
        """Start nodes for ``take`` generated walks, or None to let the
        generator sample its own starts.

        Seeds a slice of walks at protected nodes so the scarce group
        receives coverage matching its *fair share* — its fraction of
        the graph volume.  Pinning more than that over-densifies the
        protected neighborhoods (inflating triangles/clustering in the
        generated ego networks); pinning less starves them.  The unpinned
        slice is drawn degree-weighted — the same convention
        ``sample_walks`` uses for the training pools — so the
        generation-time score matrix matches the training distribution.

        The (protected_nodes, pin_fraction) plan is invariant after
        ``fit``, so it is computed once and cached across the 256-walk
        generation chunks.
        """
        graph = self._fitted_graph
        if self._generation_plan is None:
            protected_nodes = np.flatnonzero(self.protected_mask)
            volume_total = float(graph.degrees.sum())
            if protected_nodes.size == 0 or volume_total == 0:
                self._generation_plan = False
            else:
                self._generation_plan = (
                    protected_nodes,
                    graph.volume(protected_nodes) / volume_total)
        if self._generation_plan is False:
            return None
        protected_nodes, pin_fraction = self._generation_plan
        starts = graph.walk_engine().sample_starts(take, rng)
        pinned = rng.random(take) < pin_fraction
        starts[pinned] = rng.choice(protected_nodes, size=int(pinned.sum()))
        return starts

    def generate_walks(self, num_walks: int,
                       rng: np.random.Generator) -> np.ndarray:
        if self.generator is None:
            raise RuntimeError("FairGen must be fitted before generating")
        return self.generator.sample_chunked(
            num_walks, self.config.walk_length, rng,
            starts_fn=self._generation_starts)

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        cfg = self.config
        num_walks = max(64, cfg.generation_walk_factor
                        * fitted.num_edges // cfg.walk_length)
        walks = self.generate_walks(num_walks, rng)
        scores = walks_to_edge_counts(walks, fitted.num_nodes)
        protected_volume = fitted.volume(np.flatnonzero(self.protected_mask))
        return assemble_from_scores(scores, fitted.num_edges, min_degree=1,
                                    protected=self.protected_mask,
                                    protected_volume=protected_volume)

    def propose_edges(self, num_edges: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Label-informed edge proposals for data augmentation (Fig. 6).

        Candidate edges are ranked by generated-walk support multiplied
        by the discriminator's probability that both endpoints share a
        class — this is what makes FairGen's augmentation label-coherent
        where unsupervised baselines propose structurally plausible but
        class-random edges.
        """
        from ..models.base import propose_edges_from_walk_counts

        fitted = self._require_fitted()
        cfg = self.config
        num_walks = max(64, cfg.generation_walk_factor
                        * fitted.num_edges // cfg.walk_length)
        walks = self.generate_walks(num_walks, rng)
        counts = walks_to_edge_counts(walks, fitted.num_nodes)
        proba = self.discriminator.predict_proba()

        def same_class_probability(rows, cols):
            return (proba[rows] * proba[cols]).sum(axis=1)

        return propose_edges_from_walk_counts(
            fitted, counts, num_edges, weight_fn=same_class_probability)

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return dataclasses.asdict(self.config)

    @classmethod
    def from_config_dict(cls, params: dict) -> "FairGen":
        return cls(FairGenConfig(**params))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Generator + discriminator parameters plus the fitted arrays.

        The self-paced training state is not captured — restoring is for
        inference (``generate`` / ``propose_edges``), not for resuming
        Algorithm 1.
        """
        return {
            "protected_mask": self._protected_mask.astype(np.int8),
            "features": self.features,
            "num_classes": np.array([self.discriminator.num_classes],
                                    dtype=np.int64),
            **prefix_state("generator", self.generator.state_dict()),
            **prefix_state("discriminator",
                           self.discriminator.mlp.state_dict()),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        graph = self._require_fitted()
        cfg = self.config
        protected = np.asarray(state["protected_mask"], dtype=bool)
        if protected.shape != (graph.num_nodes,):
            raise ValueError("graph does not match the saved model "
                             f"({protected.size} vs {graph.num_nodes} "
                             "nodes)")
        self.protected_mask = protected
        self.features = np.asarray(state["features"], dtype=np.float64)

        init_rng = np.random.default_rng(0)
        self.generator = TransformerWalkModel(
            graph.num_nodes, cfg.model_dim, cfg.num_heads, cfg.num_layers,
            cfg.walk_length, init_rng)
        self.generator.load_state_dict(extract_state(state, "generator"))

        self.discriminator = FairDiscriminator(
            self.features, int(state["num_classes"][0]), protected,
            init_rng, hidden_dim=cfg.hidden_dim, lr=cfg.discriminator_lr,
            alpha=cfg.alpha, beta=cfg.beta,
            gamma=cfg.gamma if cfg.use_parity else 0.0)
        self.discriminator.mlp.load_state_dict(
            extract_state(state, "discriminator"))

    # ------------------------------------------------------------------
    def reconstruction_loss(self, walks: np.ndarray) -> float:
        """Mean NLL of the given walks under ``g_theta`` (Eq. 1 estimator)."""
        if self.generator is None:
            raise RuntimeError("model not fitted")
        return float(self.generator.nll(walks).item())


def make_fairgen_variant(variant: str,
                         config: FairGenConfig | None = None) -> FairGen:
    """Factory for the paper's ablation variants (Section III-A).

    ``"full"``, ``"no-sampling"`` (FairGen-R), ``"no-spl"``
    (FairGen-w/o-SPL), ``"no-parity"`` (FairGen-w/o-Parity).
    """
    base = config or FairGenConfig()
    table = {
        "full": {},
        "no-sampling": {"use_label_informed_sampling": False},
        "no-spl": {"use_self_paced": False},
        "no-parity": {"use_parity": False},
    }
    if variant not in table:
        raise ValueError(f"unknown variant {variant!r}; expected one of "
                         f"{sorted(table)}")
    model = FairGen(base.variant(**table[variant]))
    names = {"full": "FairGen", "no-sampling": "FairGen-R",
             "no-spl": "FairGen-w/o-SPL", "no-parity": "FairGen-w/o-Parity"}
    model.name = names[variant]
    return model
