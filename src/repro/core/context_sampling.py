"""The label-informed context sampling function ``f_S`` (Section II-B, M1).

``f_S`` draws a random number ``r' in [0, 1]`` per walk.  With probability
``r`` it emits a *general* biased second-order (node2vec) walk capturing
the overall structure distribution; with probability ``1 - r`` it emits a
*label-guided* walk that starts from a labeled example.  Lemma 2.1
guarantees that when the start node lies in the diffusion core of its
class subgraph ``S``, the walk stays inside ``S`` — and hence captures
purely group-specific context — with probability at least
``1 - T * delta * phi(S)``.

Label-guided starts are drawn class-uniformly (pick a class, then a
labeled node of that class), preferring diffusion-core members.  This is
what equalises the contribution of the scarce protected group against the
abundant unprotected one.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, WalkEngine, diffusion_core, sample_walks

__all__ = ["ContextSampler"]


class ContextSampler:
    """Stateful implementation of ``f_S`` over a fixed input graph."""

    def __init__(self, graph: Graph, sampling_ratio: float,
                 walk_length: int, delta: float = 0.5,
                 diffusion_steps: int = 5):
        if not 0.0 <= sampling_ratio <= 1.0:
            raise ValueError("sampling_ratio must be in [0, 1]")
        self.graph = graph
        self.sampling_ratio = sampling_ratio
        self.walk_length = walk_length
        self.delta = delta
        self.diffusion_steps = diffusion_steps
        self._class_members: dict[int, np.ndarray] = {}
        self._class_starts: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def update_labels(self, labeled_nodes: np.ndarray,
                      labeled_classes: np.ndarray) -> None:
        """Refresh the per-class start pools from (pseudo-)labeled nodes.

        Called once per self-paced cycle after the self-paced vectors are
        updated (Algorithm 1, step 5).  For every class we compute the
        diffusion core of its labeled subgraph; core members are preferred
        walk starts, with a fallback to all labeled members when the core
        is empty (e.g. a class with a single labeled node).
        """
        labeled_nodes = np.asarray(labeled_nodes, dtype=np.int64)
        labeled_classes = np.asarray(labeled_classes, dtype=np.int64)
        if labeled_nodes.shape != labeled_classes.shape:
            raise ValueError("labeled nodes/classes shape mismatch")
        self._class_members.clear()
        self._class_starts.clear()
        # Diffusion cores need the dense-ish lazy transition matrix; an
        # out-of-core ShardedGraph does not expose it, so label-guided
        # starts fall back to all labeled members there (the Lemma 2.1
        # stay-probability guarantee is a refinement, not a requirement).
        has_cores = hasattr(self.graph, "transition_matrix")
        for cls in np.unique(labeled_classes):
            members = labeled_nodes[labeled_classes == cls]
            self._class_members[int(cls)] = members
            if has_cores and members.size >= 2:
                core = diffusion_core(self.graph, members, self.delta,
                                      self.diffusion_steps)
            else:
                core = np.empty(0, dtype=np.int64)
            self._class_starts[int(cls)] = core if core.size else members

    @property
    def classes(self) -> list[int]:
        return sorted(self._class_members)

    def class_members(self, cls: int) -> np.ndarray:
        return self._class_members[cls]

    def class_starts(self, cls: int) -> np.ndarray:
        """Diffusion-core starts for a class (falls back to all members)."""
        return self._class_starts[cls]

    # ------------------------------------------------------------------
    def sample(self, num_walks: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_walks`` context walks according to ``f_S``.

        The general/label-guided split only affects the *start* of each
        walk, so the batch is materialised as one start vector — general
        starts degree-weighted, label-guided starts per-class batched —
        and advanced in a single call on the batched walk engine.
        """
        if num_walks <= 0:
            raise ValueError("num_walks must be positive")
        if not self._class_members:
            # Without labels f_S degenerates to general sampling.
            return sample_walks(self.graph, num_walks, self.walk_length, rng)

        engine = self.graph.walk_engine()
        general = rng.random(num_walks) < self.sampling_ratio
        starts = np.empty(num_walks, dtype=np.int64)
        num_general = int(general.sum())
        if num_general:
            starts[general] = engine.sample_starts(num_general, rng)
        if num_general < num_walks:
            pools = [self._class_starts[cls] for cls in self.classes]
            starts[~general] = WalkEngine.class_batched_starts(
                pools, num_walks - num_general, rng)
        return engine.node2vec_walks(starts, self.walk_length, rng)

    def label_guided_fraction(self) -> float:
        """Expected fraction of walks that are label-guided (``1 - r``)."""
        return 1.0 - self.sampling_ratio
