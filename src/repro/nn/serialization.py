"""Saving and loading module parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state"]


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write a module's ``state_dict`` to a compressed ``.npz`` file.

    Parameter names may contain dots, which ``np.savez`` accepts as keys.
    """
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Raises ``KeyError``/``ValueError`` on any name or shape mismatch, so
    silently loading into the wrong architecture is impossible.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
