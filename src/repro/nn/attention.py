"""Transformer building blocks for FairGen's walk generator.

FairGen replaces the RNN generators of NetGAN/TagGen with a causal
Transformer (Section II-B, M1, Eq. 4): the generator ``g_theta`` is an
autoregressive language model over node-id sequences (random walks).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor
from .layers import Dropout, LayerNorm, Linear, Module, Parameter

__all__ = [
    "causal_mask",
    "sinusoidal_positions",
    "MultiHeadSelfAttention",
    "TransformerBlock",
]


def causal_mask(length: int) -> np.ndarray:
    """Additive mask: 0 on/below the diagonal, ``-1e9`` above it."""
    mask = np.zeros((length, length))
    mask[np.triu_indices(length, k=1)] = -1e9
    return mask


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal positional encodings from Vaswani et al. (2017)."""
    position = np.arange(length)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim))
    enc[:, 0::2] = np.sin(position * div)
    enc[:, 1::2] = np.cos(position * div[: dim // 2])
    return enc


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    The paper sets the number of transformer heads to 4 (Section III-B).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, T, D) -> (B, H, T, d)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        attn = self.attn_dropout(attn)
        context = attn @ v  # (B, H, T, d)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + position-wise feed-forward."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 ff_mult: int = 4, dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng, dropout)
        self.norm2 = LayerNorm(dim)
        self.ff_in = Linear(dim, ff_mult * dim, rng)
        self.ff_out = Linear(ff_mult * dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask)
        hidden = self.ff_in(self.norm2(x)).gelu()
        return x + self.dropout(self.ff_out(hidden))
