"""Transformer building blocks for FairGen's walk generator.

FairGen replaces the RNN generators of NetGAN/TagGen with a causal
Transformer (Section II-B, M1, Eq. 4): the generator ``g_theta`` is an
autoregressive language model over node-id sequences (random walks).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .tensor import Tensor, is_grad_enabled
from .layers import Dropout, LayerNorm, Linear, Module, Parameter

__all__ = [
    "causal_mask",
    "sinusoidal_positions",
    "LayerKVCache",
    "MultiHeadSelfAttention",
    "TransformerBlock",
]


@lru_cache(maxsize=None)
def causal_mask(length: int) -> np.ndarray:
    """Additive mask: 0 on/below the diagonal, ``-1e9`` above it.

    Memoised per length — training forwards request the same handful of
    lengths thousands of times, so the ``np.triu_indices`` build runs
    once per shape.  The returned array is shared and read-only.
    """
    mask = np.zeros((length, length))
    mask[np.triu_indices(length, k=1)] = -1e9
    mask.setflags(write=False)
    return mask


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal positional encodings from Vaswani et al. (2017)."""
    position = np.arange(length)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim))
    enc[:, 0::2] = np.sin(position * div)
    enc[:, 1::2] = np.cos(position * div[: dim // 2])
    return enc


class LayerKVCache:
    """Per-layer key/value cache for incremental decoding.

    Holds the raw ``(B, H, T, d)`` key and value arrays of every position
    processed so far.  A prefill pass over the prompt populates it; each
    decode step appends one position and attends against the whole cache,
    so no causal mask is needed after prefill.  The cache stores detached
    ndarrays — gradients never flow into cached positions — making it an
    inference-only structure (use under ``no_grad()``).

    With ``capacity`` the buffers are preallocated at ``(B, H, capacity,
    d)`` on first append and every later step writes into a slice, so
    the decode hot path never reallocates (the convention of
    :class:`repro.nn.inference.WalkDecoder`, which knows the maximum
    session length up front).  Without it, buffers grow by
    concatenation.

    **Row-level serving mode.**  The continuous-batching engine
    (:mod:`repro.serve.engine`) coalesces walk requests of different
    lengths into one decode batch, so a serving-side cache is *ragged*:
    each row has its own number of valid positions.  Three row-level
    primitives support this: :meth:`append_cache` transplants another
    cache's rows onto the end of this one (admitting a freshly prefilled
    request), :meth:`gather_rows` keeps only the given rows (evicting
    finished walks and compacting the batch), and :meth:`append_ragged`
    appends one position per row at that row's own offset.  Per-row
    validity lives in :attr:`row_lengths`; the uniform (single
    ``length``) mode of :meth:`append` is unchanged.
    """

    __slots__ = ("_k", "_v", "_length", "capacity", "_row_lengths")

    def __init__(self, capacity: int | None = None) -> None:
        self._k: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._length = 0
        self.capacity = capacity
        self._row_lengths: np.ndarray | None = None

    @property
    def length(self) -> int:
        """Number of cached positions (the maximum across rows when the
        cache is ragged)."""
        return self._length

    @property
    def num_rows(self) -> int:
        """Number of batch rows currently held."""
        return 0 if self._k is None else self._k.shape[0]

    @property
    def row_lengths(self) -> np.ndarray:
        """Valid positions per row, ``(B,)`` int64.

        Uniform caches report ``length`` for every row; ragged caches
        (built through the row-level primitives) track each row
        separately.
        """
        if self._row_lengths is not None:
            return self._row_lengths
        return np.full(self.num_rows, self._length, dtype=np.int64)

    @property
    def k(self) -> np.ndarray | None:
        """Cached keys, ``(B, H, length, d)``."""
        return None if self._k is None else self._k[:, :, :self._length]

    @property
    def v(self) -> np.ndarray | None:
        """Cached values, ``(B, H, length, d)``."""
        return None if self._v is None else self._v[:, :, :self._length]

    def append(self, k_new: np.ndarray,
               v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new positions and return the full (k, v) arrays."""
        batch, heads, steps, dim = k_new.shape
        if self._k is None:
            if self.capacity is None:
                self._k, self._v = k_new, v_new
                self._length = steps
                return self.k, self.v
            self._k = np.empty((batch, heads, self.capacity, dim),
                               dtype=k_new.dtype)
            self._v = np.empty_like(self._k)
        if self.capacity is not None:
            if self._length + steps > self.capacity:
                raise ValueError("KV cache capacity exceeded")
            self._k[:, :, self._length: self._length + steps] = k_new
            self._v[:, :, self._length: self._length + steps] = v_new
        else:
            self._k = np.concatenate([self._k, k_new], axis=2)
            self._v = np.concatenate([self._v, v_new], axis=2)
        self._length += steps
        return self.k, self.v

    # ------------------------------------------------------------------
    # Row-level primitives (continuous-batching serving mode)
    # ------------------------------------------------------------------
    def append_cache(self, donor: "LayerKVCache") -> None:
        """Transplant ``donor``'s rows onto the end of this cache.

        ``donor`` is a freshly prefilled per-request cache (uniform
        length, preallocated at the same ``capacity``); its rows join
        this cache's batch with their own per-row length.  This is the
        admission path of the continuous batcher: prefill a request in
        isolation, then splice its K/V rows into the shared batch.
        """
        if donor._k is None or donor.capacity is None:
            raise ValueError("donor cache must be preallocated (capacity "
                             "mode) and non-empty")
        if self.capacity is None:
            raise ValueError("row-level cache ops need capacity mode")
        if donor.capacity != self.capacity:
            raise ValueError(f"donor capacity {donor.capacity} != "
                             f"{self.capacity}")
        lengths = donor.row_lengths
        if self._k is None:
            self._k = donor._k.copy()
            self._v = donor._v.copy()
            self._row_lengths = lengths.copy()
        else:
            own_lengths = self.row_lengths  # BEFORE the batch axis grows
            self._k = np.concatenate([self._k, donor._k], axis=0)
            self._v = np.concatenate([self._v, donor._v], axis=0)
            self._row_lengths = np.concatenate([own_lengths, lengths])
        self._length = int(self._row_lengths.max())

    def gather_rows(self, rows: np.ndarray) -> None:
        """Keep only ``rows`` (in order): evict finished walks, compact.

        ``rows`` indexes the current batch axis; an empty selection
        resets the cache to its pristine state so a later
        :meth:`append_cache` starts a fresh batch.
        """
        if self._k is None:
            raise ValueError("cache holds no rows to gather")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            self._k = self._v = None
            self._row_lengths = None
            self._length = 0
            return
        self._k = self._k[rows]
        self._v = self._v[rows]
        self._row_lengths = self.row_lengths[rows]
        self._length = int(self._row_lengths.max())

    def append_ragged(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``S >= 1`` positions per row at each row's own offset.

        ``k_new``/``v_new`` are ``(B, H, S, d)`` — the decode-step
        projections of a ragged batch (``S == 1`` on the steady-state
        serving path; ``S > 1`` is the multi-token catch-up forward of
        a freshly admitted request).  Row ``i``'s new positions land at
        its current ``row_lengths[i]``; lengths advance by ``S``.

        An empty capacity-mode cache bootstraps here too — all rows
        start at offset 0, the catch-up forward of a batch admitted
        from scratch.
        """
        if self._k is None:
            if self.capacity is None:
                raise ValueError("row-level cache ops need capacity mode")
            batch, heads, _, dim = k_new.shape
            self._k = np.empty((batch, heads, self.capacity, dim),
                               dtype=k_new.dtype)
            self._v = np.empty_like(self._k)
            self._row_lengths = np.zeros(batch, dtype=np.int64)
        batch = self._k.shape[0]
        if k_new.shape[0] != batch or k_new.shape[2] < 1:
            raise ValueError(f"expected ({batch}, H, S, d) step arrays, "
                             f"got {k_new.shape}")
        steps = k_new.shape[2]
        lengths = self.row_lengths
        if self._row_lengths is None:
            self._row_lengths = lengths
        if int(lengths.max()) + steps > self.capacity:
            raise ValueError("KV cache capacity exceeded")
        if steps == 1:
            idx = np.arange(batch)
            self._k[idx, :, lengths] = k_new[:, :, 0]
            self._v[idx, :, lengths] = v_new[:, :, 0]
        else:
            # (B, 1, S) per-row target positions, broadcast over heads
            slots = lengths[:, None] + np.arange(steps)[None, :]
            idx = np.arange(batch)[:, None]
            self._k[idx, :, slots] = k_new.transpose(0, 2, 1, 3)
            self._v[idx, :, slots] = v_new.transpose(0, 2, 1, 3)
        self._row_lengths = lengths + steps
        self._length = int(self._row_lengths.max())

    def rows_view(self, start: int, stop: int,
                  length: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(k, v)`` views of rows ``start:stop`` truncated to
        ``length`` positions — the exact per-request attention window of
        one continuous-batching group (all rows of one request share a
        length, so no padding is ever materialised)."""
        return (self._k[start:stop, :, :length],
                self._v[start:stop, :, :length])


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    The paper sets the number of transformer heads to 4 (Section III-B).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, T, D) -> (B, H, T, d)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                cache: LayerKVCache | None = None) -> Tensor:
        """Attend ``x`` over itself, or over ``cache`` + ``x`` when given.

        With ``cache``, the keys/values of the new positions are appended
        to the cache and the queries attend over the full cached history
        — the incremental-decoding contract: prefill the prompt once
        (with a causal ``mask``), then feed one position per call with no
        mask.  Cached positions are detached, so this path is for
        inference only and raises under autograd rather than silently
        severing the key/value gradient flow.

        :meth:`repro.nn.inference.WalkDecoder._forward` is the raw-
        ndarray mirror of this arm (the production decode path); any
        change to the caching contract must land in both.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)
        if cache is not None:
            if is_grad_enabled() and k.requires_grad:
                raise RuntimeError(
                    "the KV cache is inference-only: cached keys/values "
                    "do not propagate gradients, so call under no_grad()")
            k_all, v_all = cache.append(k.numpy(), v.numpy())
            k, v = Tensor(k_all), Tensor(v_all)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        attn = self.attn_dropout(attn)
        context = attn @ v  # (B, H, T, d)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + position-wise feed-forward."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 ff_mult: int = 4, dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng, dropout)
        self.norm2 = LayerNorm(dim)
        self.ff_in = Linear(dim, ff_mult * dim, rng)
        self.ff_out = Linear(ff_mult * dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                cache: LayerKVCache | None = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask, cache=cache)
        hidden = self.ff_in(self.norm2(x)).gelu()
        return x + self.dropout(self.ff_out(hidden))
