"""Transformer building blocks for FairGen's walk generator.

FairGen replaces the RNN generators of NetGAN/TagGen with a causal
Transformer (Section II-B, M1, Eq. 4): the generator ``g_theta`` is an
autoregressive language model over node-id sequences (random walks).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .tensor import Tensor, is_grad_enabled
from .layers import Dropout, LayerNorm, Linear, Module, Parameter

__all__ = [
    "causal_mask",
    "sinusoidal_positions",
    "LayerKVCache",
    "MultiHeadSelfAttention",
    "TransformerBlock",
]


@lru_cache(maxsize=None)
def causal_mask(length: int) -> np.ndarray:
    """Additive mask: 0 on/below the diagonal, ``-1e9`` above it.

    Memoised per length — training forwards request the same handful of
    lengths thousands of times, so the ``np.triu_indices`` build runs
    once per shape.  The returned array is shared and read-only.
    """
    mask = np.zeros((length, length))
    mask[np.triu_indices(length, k=1)] = -1e9
    mask.setflags(write=False)
    return mask


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal positional encodings from Vaswani et al. (2017)."""
    position = np.arange(length)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim))
    enc[:, 0::2] = np.sin(position * div)
    enc[:, 1::2] = np.cos(position * div[: dim // 2])
    return enc


class LayerKVCache:
    """Per-layer key/value cache for incremental decoding.

    Holds the raw ``(B, H, T, d)`` key and value arrays of every position
    processed so far.  A prefill pass over the prompt populates it; each
    decode step appends one position and attends against the whole cache,
    so no causal mask is needed after prefill.  The cache stores detached
    ndarrays — gradients never flow into cached positions — making it an
    inference-only structure (use under ``no_grad()``).

    With ``capacity`` the buffers are preallocated at ``(B, H, capacity,
    d)`` on first append and every later step writes into a slice, so
    the decode hot path never reallocates (the convention of
    :class:`repro.nn.inference.WalkDecoder`, which knows the maximum
    session length up front).  Without it, buffers grow by
    concatenation.
    """

    __slots__ = ("_k", "_v", "_length", "capacity")

    def __init__(self, capacity: int | None = None) -> None:
        self._k: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._length = 0
        self.capacity = capacity

    @property
    def length(self) -> int:
        """Number of cached positions."""
        return self._length

    @property
    def k(self) -> np.ndarray | None:
        """Cached keys, ``(B, H, length, d)``."""
        return None if self._k is None else self._k[:, :, :self._length]

    @property
    def v(self) -> np.ndarray | None:
        """Cached values, ``(B, H, length, d)``."""
        return None if self._v is None else self._v[:, :, :self._length]

    def append(self, k_new: np.ndarray,
               v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new positions and return the full (k, v) arrays."""
        batch, heads, steps, dim = k_new.shape
        if self._k is None:
            if self.capacity is None:
                self._k, self._v = k_new, v_new
                self._length = steps
                return self.k, self.v
            self._k = np.empty((batch, heads, self.capacity, dim),
                               dtype=k_new.dtype)
            self._v = np.empty_like(self._k)
        if self.capacity is not None:
            if self._length + steps > self.capacity:
                raise ValueError("KV cache capacity exceeded")
            self._k[:, :, self._length: self._length + steps] = k_new
            self._v[:, :, self._length: self._length + steps] = v_new
        else:
            self._k = np.concatenate([self._k, k_new], axis=2)
            self._v = np.concatenate([self._v, v_new], axis=2)
        self._length += steps
        return self.k, self.v


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    The paper sets the number of transformer heads to 4 (Section III-B).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, T, D) -> (B, H, T, d)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                cache: LayerKVCache | None = None) -> Tensor:
        """Attend ``x`` over itself, or over ``cache`` + ``x`` when given.

        With ``cache``, the keys/values of the new positions are appended
        to the cache and the queries attend over the full cached history
        — the incremental-decoding contract: prefill the prompt once
        (with a causal ``mask``), then feed one position per call with no
        mask.  Cached positions are detached, so this path is for
        inference only and raises under autograd rather than silently
        severing the key/value gradient flow.

        :meth:`repro.nn.inference.WalkDecoder._forward` is the raw-
        ndarray mirror of this arm (the production decode path); any
        change to the caching contract must land in both.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)
        if cache is not None:
            if is_grad_enabled() and k.requires_grad:
                raise RuntimeError(
                    "the KV cache is inference-only: cached keys/values "
                    "do not propagate gradients, so call under no_grad()")
            k_all, v_all = cache.append(k.numpy(), v.numpy())
            k, v = Tensor(k_all), Tensor(v_all)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        attn = self.attn_dropout(attn)
        context = attn @ v  # (B, H, T, d)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + position-wise feed-forward."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 ff_mult: int = 4, dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng, dropout)
        self.norm2 = LayerNorm(dim)
        self.ff_in = Linear(dim, ff_mult * dim, rng)
        self.ff_out = Linear(ff_mult * dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                cache: LayerKVCache | None = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask, cache=cache)
        hidden = self.ff_in(self.norm2(x)).gelu()
        return x + self.dropout(self.ff_out(hidden))
