"""Grad-free incremental decoding over the transformer walk generator.

:meth:`TransformerWalkModel.sample` used to re-run the full transformer
over the entire prefix for every sampled token — O(T^2) attention work
per step, O(T^3) per walk — while also paying :class:`~repro.nn.Tensor`
graph-bookkeeping overhead it never used (sampling takes no gradients).
This module is the fast inference path that removes both costs:

* :class:`WalkDecoder` snapshots the raw ``float64`` parameter arrays of
  a :class:`~repro.models.walk_lm.TransformerWalkModel` and evaluates
  the network with plain NumPy ops — no ``Tensor`` allocation, no
  autograd closures, no computation graph;
* a per-layer :class:`~repro.nn.attention.LayerKVCache` stores the keys
  and values of every position processed so far, so after one *prefill*
  pass over the prompt each *decode step* costs a single forward over
  one token attending to the cached history — O(T) per step instead of
  O(T^2), and no causal mask is needed in decode.

Each prefill/step is ONE call into the active backend's
:meth:`~repro.nn.backend.Backend.decode_step` compound primitive — the
whole embed/blocks/norm/head pipeline per backend dispatch instead of
~10 small ops per layer — and decode steps run against per-session
scratch buffers allocated once at the first step (the ``fused`` backend
reuses them in place; see :func:`repro.nn.backend.scratch_buffer`).
``WalkDecoder(model, per_op=True)`` keeps the original one-op-at-a-time
loop as the bit-identity reference the parity suite pins the compound
kernel against.

Every primitive mirrors the corresponding :class:`~repro.nn.Tensor` op
exactly (same operation order, same stabilisations), so the logits the
decoder emits are numerically interchangeable with the training-path
``forward`` and seeded sampling stays reproducible against the slow
full-recompute reference.

Dropout is skipped: the decoder is an inference structure, and the
training path applies dropout only when gradients are enabled anyway.
"""

from __future__ import annotations

import numpy as np

from .attention import LayerKVCache, causal_mask
from .backend import active as _backend

__all__ = ["WalkDecoder"]


def _layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                eps: float) -> np.ndarray:
    """Mirror of :meth:`repro.nn.layers.LayerNorm.forward`."""
    return _backend().layer_norm(x, gamma, beta, eps)


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Mirror of :meth:`repro.nn.Tensor.softmax`."""
    return _backend().softmax(x, axis=axis)


def _gelu(x: np.ndarray) -> np.ndarray:
    """Mirror of :meth:`repro.nn.Tensor.gelu` (tanh approximation)."""
    return _backend().gelu(x)


class _BlockWeights:
    """Raw parameter views of one transformer block."""

    __slots__ = ("norm1", "norm2", "q", "k", "v", "out", "ff_in", "ff_out",
                 "num_heads", "head_dim", "dim")

    def __init__(self, block) -> None:
        attn = block.attn
        self.norm1 = (block.norm1.gamma.data, block.norm1.beta.data,
                      block.norm1.eps)
        self.norm2 = (block.norm2.gamma.data, block.norm2.beta.data,
                      block.norm2.eps)
        self.q = (attn.q_proj.weight.data, attn.q_proj.bias.data)
        self.k = (attn.k_proj.weight.data, attn.k_proj.bias.data)
        self.v = (attn.v_proj.weight.data, attn.v_proj.bias.data)
        self.out = (attn.out_proj.weight.data, attn.out_proj.bias.data)
        self.ff_in = (block.ff_in.weight.data, block.ff_in.bias.data)
        self.ff_out = (block.ff_out.weight.data, block.ff_out.bias.data)
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim
        self.dim = attn.dim


class _WalkWeights:
    """Raw parameter views of a whole :class:`TransformerWalkModel`.

    Shared by :class:`WalkDecoder` (single-session decode) and the
    continuous-batching engine (:mod:`repro.serve.engine`), which walks
    the same arrays with per-request attention groups.  This is the
    ``weights`` shape :meth:`repro.nn.backend.Backend.decode_step`
    duck-types.
    """

    __slots__ = ("embed", "positions", "blocks", "final_norm", "head")

    def __init__(self, model) -> None:
        self.embed = model.embed.weight.data
        self.positions = model._positions
        self.blocks = [_BlockWeights(b) for b in model.blocks]
        self.final_norm = (model.final_norm.gamma.data,
                           model.final_norm.beta.data, model.final_norm.eps)
        self.head = (model.head.weight.data, model.head.bias.data)


class WalkDecoder:
    """KV-cached incremental decoder for one sampling session.

    Usage::

        decoder = WalkDecoder(model)
        logits = decoder.prefill(prompt_tokens)   # (B, vocab)
        while generating:
            next_ids = sample_from(logits)
            logits = decoder.step(next_ids)       # (B, vocab)

    The decoder views (never copies) the model's parameter arrays, so it
    is cheap to construct per :meth:`sample` call; it must not outlive a
    training step that updates the parameters in place.

    ``per_op=True`` routes every forward through the original
    one-backend-call-per-op loop instead of the whole-step
    :meth:`~repro.nn.backend.Backend.decode_step` compound primitive —
    the bit-identity reference the kernel parity tests compare against.
    """

    def __init__(self, model, *, per_op: bool = False) -> None:
        self._weights = _WalkWeights(model)
        self._per_op = per_op
        # Per-session decode scratch: allocated on the first step() call
        # (prefill runs at a different sequence length and only once),
        # then reused in place by every subsequent step.
        self._scratch: dict | None = None
        # Preallocated at the session maximum: decode steps write into
        # the cache buffers instead of reallocating them every token.
        self._caches = [LayerKVCache(capacity=self._positions.shape[0])
                        for _ in self._weights.blocks]
        self._length = 0
        self._batch: int | None = None

    # Internal views kept as properties so the serving engine and older
    # call sites can keep addressing the weight tuples uniformly.
    @property
    def _positions(self) -> np.ndarray:
        return self._weights.positions

    @property
    def length(self) -> int:
        """Number of positions decoded so far (prompt included)."""
        return self._length

    @property
    def batch_size(self) -> int | None:
        """Batch size frozen at prefill (``None`` before prefill)."""
        return self._batch

    @property
    def caches(self) -> list[LayerKVCache]:
        """The per-layer KV caches (the serving engine transplants their
        rows into its shared batch via ``LayerKVCache.append_cache``)."""
        return self._caches

    # ------------------------------------------------------------------
    def _forward(self, tokens: np.ndarray,
                 mask: np.ndarray | None) -> np.ndarray:
        """Advance the caches by ``tokens`` and return last-step logits."""
        length = tokens.shape[1]
        if self._length + length > self._positions.shape[0]:
            raise ValueError("decoding past the configured maximum length")
        if self._per_op:
            logits = self._forward_per_op(tokens, mask)
        else:
            if self._scratch is None and self._length:
                self._scratch = {}
            logits = _backend().decode_step(
                self._weights, self._caches, tokens, self._length,
                mask=mask, scratch=self._scratch)
        self._length += length
        return logits

    def _forward_per_op(self, tokens: np.ndarray,
                        mask: np.ndarray | None) -> np.ndarray:
        """The original per-op loop: one backend call per primitive.

        Kept as the bit-identity reference for
        :meth:`~repro.nn.backend.Backend.decode_step` (the parity suite
        runs both under every bit-identity backend) and as the
        benchmark baseline of the whole-step fusion win.
        """
        batch, length = tokens.shape
        B = _backend()
        w = self._weights
        h = w.embed[tokens] \
            + w.positions[self._length: self._length + length]
        scale = None
        for blk, cache in zip(w.blocks, self._caches):
            x = B.layer_norm(h, *blk.norm1)
            if scale is None:
                scale = 1.0 / np.sqrt(blk.head_dim)

            def split(t: np.ndarray) -> np.ndarray:
                return t.reshape(batch, length, blk.num_heads,
                                 blk.head_dim).transpose(0, 2, 1, 3)

            q = split(B.linear(x, *blk.q))
            k = split(B.linear(x, *blk.k))
            v = split(B.linear(x, *blk.v))
            k_all, v_all = cache.append(k, v)
            scores = (q @ k_all.transpose(0, 1, 3, 2)) * scale
            if mask is not None:
                scores = scores + mask
            context = B.softmax(scores) @ v_all
            merged = context.transpose(0, 2, 1, 3).reshape(
                batch, length, blk.dim)
            h = h + B.linear(merged, *blk.out)
            x2 = B.layer_norm(h, *blk.norm2)
            hidden = B.gelu(B.linear(x2, *blk.ff_in))
            h = h + B.linear(hidden, *blk.ff_out)
        out = B.layer_norm(h[:, -1, :], *w.final_norm)
        return B.linear(out, *w.head)

    # ------------------------------------------------------------------
    def prefill(self, tokens: np.ndarray) -> np.ndarray:
        """Run the prompt through the network, filling every KV cache.

        ``tokens`` is the ``(B, T)`` integer prompt (start token, plus
        any pinned start nodes).  Returns the ``(B, vocab)`` logits of
        the final prompt position — the distribution of the first
        sampled token.
        """
        if self._length:
            raise RuntimeError("prefill must be the first decoder call")
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2 or tokens.shape[0] == 0 or tokens.shape[1] == 0:
            raise ValueError(
                f"prefill expects a non-empty (B, T) prompt, got shape "
                f"{tokens.shape}")
        self._batch = tokens.shape[0]
        return self._forward(tokens, causal_mask(tokens.shape[1]))

    def step(self, next_ids: np.ndarray) -> np.ndarray:
        """Decode one token per walk against the cached keys/values.

        No mask is needed: the single new query may attend to every
        cached position.  Returns the next ``(B, vocab)`` logits.

        The batch size is frozen at prefill — the KV caches hold one row
        per walk — so a mismatched ``next_ids`` is rejected here with a
        clear error instead of surfacing as a broadcasting failure deep
        inside attention.  Walks cannot be added or dropped mid-session;
        that is the continuous-batching engine's job
        (:class:`repro.serve.ContinuousBatcher`).
        """
        if not self._length:
            raise RuntimeError("call prefill before step")
        next_ids = np.asarray(next_ids, dtype=np.int64).reshape(-1, 1)
        if next_ids.shape[0] != self._batch:
            raise ValueError(
                f"step batch size {next_ids.shape[0]} does not match the "
                f"batch size {self._batch} frozen at prefill; the decoder "
                "cannot grow or shrink its walk batch mid-session")
        return self._forward(next_ids, None)
