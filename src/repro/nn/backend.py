"""Pluggable tensor backends: one ops table behind every numeric op.

Every numeric primitive of the autograd engine — the ~40 operations used
by :class:`~repro.nn.Tensor`, :mod:`~repro.nn.functional`, the layers,
attention, the LSTM and the grad-free
:class:`~repro.nn.inference.WalkDecoder` — routes through the active
:class:`Backend`.  The default :class:`NumpyBackend` reproduces the
pre-backend engine **bit for bit**: its methods are the exact
expressions the ops used to inline, in the exact evaluation order, so
the seeded training parity pins (``tests/fixtures/train_parity.json``)
pass unchanged.

Alternative backends trade that one-op-at-a-time dispatch for fused or
compiled kernels:

* :class:`FusedNumpyBackend` (``"fused"``) keeps every operation's
  rounding order but evaluates the compound primitives (``sigmoid``,
  ``gelu``, ``softmax``, ``layer_norm``, ``linear`` ...) with
  preallocated/in-place ``out=`` buffers — the same float sequence with
  far fewer temporaries, so it stays bit-identical while cutting
  allocator traffic on training hot loops;
* ``"numba"`` JIT-compiles the compound element-wise kernels when the
  optional :mod:`numba` package is importable (a soft import — the
  backend simply does not register when numba is absent).

Selection precedence
--------------------
1. :func:`set_backend` / :func:`use_backend` at runtime (the CLI's
   global ``--backend`` flag calls :func:`set_backend`);
2. the ``REPRO_BACKEND`` environment variable, read once at import;
3. the ``"numpy"`` default.

Registering a backend
---------------------
Subclass :class:`Backend` (override only the ops you accelerate — the
base class is the numpy reference) and call :func:`register_backend`::

    class MyBackend(NumpyBackend):
        name = "mine"
        def gelu(self, x): ...

    register_backend(MyBackend())

``OPS`` lists the full table; :func:`repro.nn.gradcheck` sweeps and the
backend parity suite (``tests/test_backend.py``) run against every
registered backend, so a new backend is held to the same bit-identity
bar as the built-ins.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["Backend", "NumpyBackend", "FusedNumpyBackend", "OPS",
           "register_backend", "available_backends", "get_backend",
           "set_backend", "use_backend", "active"]

#: the ops table every backend provides (the ~40 primitives the engine
#: dispatches; compound ops at the end exist so backends can fuse them)
OPS = (
    # creation / conversion
    "asarray", "zeros_like", "ones_like",
    # arithmetic
    "add", "subtract", "multiply", "divide", "negative", "power", "matmul",
    # shape / indexing
    "reshape", "transpose", "swapaxes", "take", "index_add",
    "concatenate", "stack", "broadcast_to", "expand_dims",
    # reductions / scans
    "sum", "mean", "amax", "cumsum",
    # elementwise
    "exp", "log", "sqrt", "absolute", "sign", "tanh", "clip",
    "where", "greater", "maximum",
    # compound primitives (fusable)
    "relu", "relu_grad", "sigmoid", "sigmoid_grad", "tanh_grad",
    "gelu", "gelu_grad", "softmax", "log_softmax", "layer_norm", "linear",
)


class Backend:
    """Numpy reference implementation of the ops table.

    Every method reproduces the exact expression (and therefore the
    exact float rounding sequence) the engine inlined before the
    backend seam existed.  Subclasses override whichever ops they
    accelerate; anything untouched falls back to this reference, so a
    partial backend is always complete.
    """

    name = "base"

    # -- creation / conversion -----------------------------------------
    @staticmethod
    def asarray(value, dtype=np.float64) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return value.astype(dtype, copy=False)
        return np.asarray(value, dtype=dtype)

    zeros_like = staticmethod(np.zeros_like)
    ones_like = staticmethod(np.ones_like)

    # -- arithmetic -----------------------------------------------------
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    divide = staticmethod(np.divide)
    negative = staticmethod(np.negative)
    power = staticmethod(np.power)
    matmul = staticmethod(np.matmul)

    # -- shape / indexing -----------------------------------------------
    @staticmethod
    def reshape(x: np.ndarray, shape) -> np.ndarray:
        return x.reshape(shape)

    @staticmethod
    def transpose(x: np.ndarray, axes) -> np.ndarray:
        return x.transpose(axes)

    swapaxes = staticmethod(np.swapaxes)

    @staticmethod
    def take(x: np.ndarray, index) -> np.ndarray:
        return x[index]

    @staticmethod
    def index_add(target: np.ndarray, index, value: np.ndarray) -> None:
        """In-place scatter-add (the getitem backward)."""
        np.add.at(target, index, value)

    concatenate = staticmethod(np.concatenate)
    stack = staticmethod(np.stack)
    broadcast_to = staticmethod(np.broadcast_to)
    expand_dims = staticmethod(np.expand_dims)

    # -- reductions / scans ---------------------------------------------
    @staticmethod
    def sum(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def mean(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def amax(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    @staticmethod
    def cumsum(x: np.ndarray, axis=None) -> np.ndarray:
        return x.cumsum(axis=axis)

    # -- elementwise ----------------------------------------------------
    exp = staticmethod(np.exp)
    log = staticmethod(np.log)
    sqrt = staticmethod(np.sqrt)
    absolute = staticmethod(np.abs)
    sign = staticmethod(np.sign)
    tanh = staticmethod(np.tanh)
    where = staticmethod(np.where)
    greater = staticmethod(np.greater)
    maximum = staticmethod(np.maximum)

    @staticmethod
    def clip(x: np.ndarray, lo: float, hi: float) -> np.ndarray:
        return np.clip(x, lo, hi)

    # -- compound primitives (fusable) ----------------------------------
    @staticmethod
    def relu(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``x * (x > 0)`` given the precomputed mask (reused backward)."""
        return x * mask

    @staticmethod
    def relu_grad(grad: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return grad * mask

    @staticmethod
    def sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    @staticmethod
    def sigmoid_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * out * (1.0 - out)

    @staticmethod
    def tanh_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * (1.0 - out ** 2)

    @staticmethod
    def gelu(x: np.ndarray) -> np.ndarray:
        """Tanh-approximated GELU (the order of Vaswani-era impls)."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        return 0.5 * x * (1.0 + t)

    @staticmethod
    def gelu_grad(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
        local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
        return grad * local

    @staticmethod
    def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=axis, keepdims=True)

    @staticmethod
    def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_z

    @staticmethod
    def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float) -> np.ndarray:
        """Inference-path layer norm over the last axis."""
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        return centered / np.sqrt(var + eps) * gamma + beta

    @staticmethod
    def linear(x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None) -> np.ndarray:
        """Affine map ``x @ weight + bias`` (inference path)."""
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out


class NumpyBackend(Backend):
    """The default backend: one numpy op per engine op, bit-identical."""

    name = "numpy"


class FusedNumpyBackend(Backend):
    """Numpy with fused/in-place compound kernels.

    Each override performs the *same arithmetic in the same order* as
    the reference (so results are bit-identical — multiplications are
    only reordered where float multiplication is exactly commutative),
    but reuses buffers via ``out=`` instead of allocating a temporary
    per step.  On graph-scale activations the compound ops drop from
    five-plus allocations to one or two.
    """

    name = "fused"

    @staticmethod
    def sigmoid(x: np.ndarray) -> np.ndarray:
        # 1 / (1 + exp(-clip(x))): one buffer end to end.
        t = np.clip(x, -60.0, 60.0)
        np.negative(t, out=t)
        np.exp(t, out=t)
        t += 1.0
        np.divide(1.0, t, out=t)
        return t

    @staticmethod
    def sigmoid_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        # grad * out * (1 - out), left-to-right like the reference.
        g = grad * out
        t = 1.0 - out
        g *= t
        return g

    @staticmethod
    def tanh_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        t = out ** 2
        np.subtract(1.0, t, out=t)
        t *= grad
        return t

    @staticmethod
    def gelu(x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = x ** 3
        inner *= 0.044715          # 0.044715 * x**3 (commutative)
        inner += x                 # x + 0.044715 * x**3
        inner *= c                 # c * (...)
        np.tanh(inner, out=inner)
        inner += 1.0               # 1 + t
        half = 0.5 * x
        half *= inner              # (0.5 * x) * (1 + t): reference order
        return half

    @staticmethod
    def gelu_grad(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = x ** 3
        inner *= 0.044715
        inner += x
        inner *= c
        t = np.tanh(inner)
        dinner = x ** 2
        dinner *= 3 * 0.044715
        dinner += 1.0
        dinner *= c                # c * (1 + 3*0.044715*x^2) (commutative)
        # local = 0.5*(1+t) + 0.5*x*(1-t^2)*dinner, reference order kept
        one_minus_t2 = t ** 2
        np.subtract(1.0, one_minus_t2, out=one_minus_t2)
        half_x = 0.5 * x
        half_x *= one_minus_t2     # (0.5*x) * (1-t^2)
        half_x *= dinner           # ... * dinner
        t += 1.0
        t *= 0.5                   # 0.5 * (1+t) (commutative)
        t += half_x
        t *= grad                  # grad * local (commutative)
        return t

    @staticmethod
    def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        out = x - x.max(axis=axis, keepdims=True)
        np.exp(out, out=out)
        out /= out.sum(axis=axis, keepdims=True)
        return out

    @staticmethod
    def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        z = np.exp(shifted).sum(axis=axis, keepdims=True)
        np.log(z, out=z)
        shifted -= z
        return shifted

    @staticmethod
    def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float) -> np.ndarray:
        centered = x - x.mean(axis=-1, keepdims=True)
        sq = centered * centered
        var = sq.mean(axis=-1, keepdims=True)
        var += eps
        np.sqrt(var, out=var)
        out = centered / var
        out *= gamma               # (centered/sqrt) * gamma: same order
        out += beta
        return out

    @staticmethod
    def linear(x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None) -> np.ndarray:
        out = x @ weight
        if bias is not None:
            out += bias
        return out


def _make_numba_backend() -> Backend | None:
    """Build the optional numba-JIT backend; ``None`` when unavailable.

    A soft import: environments without :mod:`numba` (the common case —
    it is not a dependency) simply never see the backend registered.
    """
    try:
        import numba
    except ImportError:
        return None

    @numba.vectorize(["float64(float64)"], cache=True)
    def _sigmoid(x):
        if x > 60.0:
            x = 60.0
        elif x < -60.0:
            x = -60.0
        return 1.0 / (1.0 + np.exp(-x))

    @numba.vectorize(["float64(float64)"], cache=True)
    def _gelu(x):
        c = np.sqrt(2.0 / np.pi)
        t = np.tanh(c * (x + 0.044715 * x ** 3))
        return 0.5 * x * (1.0 + t)

    class NumbaBackend(FusedNumpyBackend):
        """JIT-compiled elementwise kernels; numpy for everything else.

        Values may differ from the numpy reference at the ULP level
        (libm vs compiled transcendentals), so this backend is *not*
        held to the bit-identity bar — it exists for throughput on
        large elementwise-bound models.
        """

        name = "numba"

        sigmoid = staticmethod(_sigmoid)
        gelu = staticmethod(_gelu)

    return NumbaBackend()


# ----------------------------------------------------------------------
# Registry + active-backend state
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Backend] = {}
_ACTIVE: Backend


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``.

    The full ops table is validated eagerly — a backend missing an op
    cannot exist, because :class:`Backend` provides the reference
    fallback for anything not overridden.
    """
    missing = [op for op in OPS if not callable(getattr(backend, op, None))]
    if missing:  # only reachable if someone shadows an op with a non-call
        raise TypeError(f"backend {backend.name!r} is missing ops {missing}")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of every registered backend, registration order."""
    return list(_REGISTRY)


def get_backend(name: str) -> Backend:
    if name not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; registered: "
                       f"{available_backends()} (is an optional dependency "
                       "missing?)")
    return _REGISTRY[name]


def set_backend(name: str) -> Backend:
    """Make ``name`` the process-wide active backend; returns it."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


def active() -> Backend:
    """The currently active backend (the engine's per-op accessor)."""
    return _ACTIVE


class use_backend:
    """Context manager scoping a backend choice::

        with use_backend("fused"):
            model.fit(graph, rng)
    """

    def __init__(self, name: str):
        self._name = name
        self._prev: Backend | None = None

    def __enter__(self) -> Backend:
        self._prev = _ACTIVE
        return set_backend(self._name)

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev


register_backend(NumpyBackend())
register_backend(FusedNumpyBackend())
_numba = _make_numba_backend()
if _numba is not None:
    register_backend(_numba)

_ACTIVE = get_backend(os.environ.get("REPRO_BACKEND", "numpy"))
