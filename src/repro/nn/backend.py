"""Pluggable tensor backends: one ops table behind every numeric op.

Every numeric primitive of the autograd engine — the ~40 operations used
by :class:`~repro.nn.Tensor`, :mod:`~repro.nn.functional`, the layers,
attention, the LSTM and the grad-free
:class:`~repro.nn.inference.WalkDecoder` — routes through the active
:class:`Backend`.  The default :class:`NumpyBackend` reproduces the
pre-backend engine **bit for bit**: its methods are the exact
expressions the ops used to inline, in the exact evaluation order, so
the seeded training parity pins (``tests/fixtures/train_parity.json``)
pass unchanged.

Alternative backends trade that one-op-at-a-time dispatch for fused or
compiled kernels:

* :class:`FusedNumpyBackend` (``"fused"``) keeps every operation's
  rounding order but evaluates the compound primitives (``sigmoid``,
  ``gelu``, ``softmax``, ``layer_norm``, ``linear`` ...) with
  preallocated/in-place ``out=`` buffers — the same float sequence with
  far fewer temporaries, so it stays bit-identical while cutting
  allocator traffic on training hot loops;
* ``"numba"`` JIT-compiles the compound element-wise kernels when the
  optional :mod:`numba` package is importable (a soft import — the
  backend simply does not register when numba is absent).

The largest compound primitive is :meth:`Backend.decode_step`: one call
advances a whole transformer decode step (embed + positions, every
block's layer-norm/QKV/cached-attention/out-proj/FFN, final norm,
vocabulary head) for both the single-session :class:`WalkDecoder` and
the ragged continuous-batching serving engine.  The base implementation
is the bit-identical per-op reference; ``fused`` runs the step inside
preallocated per-session scratch buffers (:func:`scratch_buffer`) in
the exact reference rounding order.

Selection precedence
--------------------
1. :func:`set_backend` / :func:`use_backend` at runtime (the CLI's
   global ``--backend`` flag calls :func:`set_backend`);
2. the ``REPRO_BACKEND`` environment variable, read once at import;
3. the ``"numpy"`` default.

Registering a backend
---------------------
Subclass :class:`Backend` (override only the ops you accelerate — the
base class is the numpy reference) and call :func:`register_backend`::

    class MyBackend(NumpyBackend):
        name = "mine"
        def gelu(self, x): ...

    register_backend(MyBackend())

``OPS`` lists the full table; :func:`repro.nn.gradcheck` sweeps and the
backend parity suite (``tests/test_backend.py``) run against every
registered backend, so a new backend is held to the same bit-identity
bar as the built-ins.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["Backend", "NumpyBackend", "FusedNumpyBackend", "OPS",
           "register_backend", "available_backends", "get_backend",
           "set_backend", "use_backend", "active", "scratch_buffer"]

#: the ops table every backend provides (the ~40 primitives the engine
#: dispatches; compound ops at the end exist so backends can fuse them)
OPS = (
    # creation / conversion
    "asarray", "zeros_like", "ones_like",
    # arithmetic
    "add", "subtract", "multiply", "divide", "negative", "power", "matmul",
    # shape / indexing
    "reshape", "transpose", "swapaxes", "take", "index_add",
    "concatenate", "stack", "broadcast_to", "expand_dims",
    # reductions / scans
    "sum", "mean", "amax", "cumsum",
    # elementwise
    "exp", "log", "sqrt", "absolute", "sign", "tanh", "clip",
    "where", "greater", "maximum",
    # compound primitives (fusable)
    "relu", "relu_grad", "sigmoid", "sigmoid_grad", "tanh_grad",
    "gelu", "gelu_grad", "softmax", "log_softmax", "layer_norm", "linear",
    # whole-step compound (the transformer decode hot path)
    "decode_step",
)


def scratch_buffer(scratch: dict | None, name: str,
                   shape: tuple) -> np.ndarray:
    """Fetch (or lazily build) a reusable float64 work buffer.

    ``scratch`` is a plain dict owned by the decode session
    (:class:`~repro.nn.inference.WalkDecoder`, or one engine batch of
    :class:`repro.serve.ContinuousBatcher`); a buffer is reallocated
    only when its requested shape changes, so steady-state decode steps
    run entirely inside preallocated memory.  ``scratch=None`` falls
    back to a fresh allocation (the prefill path, which runs once per
    session and at a different sequence length).
    """
    if scratch is None:
        return np.empty(shape)
    buf = scratch.get(name)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape)
        scratch[name] = buf
    return buf


class Backend:
    """Numpy reference implementation of the ops table.

    Every method reproduces the exact expression (and therefore the
    exact float rounding sequence) the engine inlined before the
    backend seam existed.  Subclasses override whichever ops they
    accelerate; anything untouched falls back to this reference, so a
    partial backend is always complete.
    """

    name = "base"

    # -- creation / conversion -----------------------------------------
    @staticmethod
    def asarray(value, dtype=np.float64) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return value.astype(dtype, copy=False)
        return np.asarray(value, dtype=dtype)

    zeros_like = staticmethod(np.zeros_like)
    ones_like = staticmethod(np.ones_like)

    # -- arithmetic -----------------------------------------------------
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    divide = staticmethod(np.divide)
    negative = staticmethod(np.negative)
    power = staticmethod(np.power)
    matmul = staticmethod(np.matmul)

    # -- shape / indexing -----------------------------------------------
    @staticmethod
    def reshape(x: np.ndarray, shape) -> np.ndarray:
        return x.reshape(shape)

    @staticmethod
    def transpose(x: np.ndarray, axes) -> np.ndarray:
        return x.transpose(axes)

    swapaxes = staticmethod(np.swapaxes)

    @staticmethod
    def take(x: np.ndarray, index) -> np.ndarray:
        return x[index]

    @staticmethod
    def index_add(target: np.ndarray, index, value: np.ndarray) -> None:
        """In-place scatter-add (the getitem backward)."""
        np.add.at(target, index, value)

    concatenate = staticmethod(np.concatenate)
    stack = staticmethod(np.stack)
    broadcast_to = staticmethod(np.broadcast_to)
    expand_dims = staticmethod(np.expand_dims)

    # -- reductions / scans ---------------------------------------------
    @staticmethod
    def sum(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def mean(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def amax(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    @staticmethod
    def cumsum(x: np.ndarray, axis=None) -> np.ndarray:
        return x.cumsum(axis=axis)

    # -- elementwise ----------------------------------------------------
    exp = staticmethod(np.exp)
    log = staticmethod(np.log)
    sqrt = staticmethod(np.sqrt)
    absolute = staticmethod(np.abs)
    sign = staticmethod(np.sign)
    tanh = staticmethod(np.tanh)
    where = staticmethod(np.where)
    greater = staticmethod(np.greater)
    maximum = staticmethod(np.maximum)

    @staticmethod
    def clip(x: np.ndarray, lo: float, hi: float) -> np.ndarray:
        return np.clip(x, lo, hi)

    # -- compound primitives (fusable) ----------------------------------
    @staticmethod
    def relu(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``x * (x > 0)`` given the precomputed mask (reused backward)."""
        return x * mask

    @staticmethod
    def relu_grad(grad: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return grad * mask

    @staticmethod
    def sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    @staticmethod
    def sigmoid_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * out * (1.0 - out)

    @staticmethod
    def tanh_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad * (1.0 - out ** 2)

    @staticmethod
    def gelu(x: np.ndarray) -> np.ndarray:
        """Tanh-approximated GELU (the order of Vaswani-era impls).

        The cube is ``(x * x) * x``, not ``x ** 3``: libm ``pow`` costs
        ~40x two multiplies and this runs on the FFN activation of every
        decode step.  (Fixture note: the two differ in the last ulp, so
        the seeded train-parity pins were regenerated with this order.)
        """
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        return 0.5 * x * (1.0 + t)

    @staticmethod
    def gelu_grad(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
        local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
        return grad * local

    @staticmethod
    def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=axis, keepdims=True)

    @staticmethod
    def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_z

    @staticmethod
    def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float) -> np.ndarray:
        """Inference-path layer norm over the last axis."""
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        return centered / np.sqrt(var + eps) * gamma + beta

    @staticmethod
    def linear(x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None) -> np.ndarray:
        """Affine map ``x @ weight + bias`` (inference path)."""
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    # -- whole-step compound (the transformer decode hot path) ----------
    def decode_step(self, weights, caches, tokens: np.ndarray,
                    position, *, mask: np.ndarray | None = None,
                    groups: list | None = None,
                    scratch: dict | None = None) -> np.ndarray:
        """Advance one whole transformer decode step in a single call.

        The compound primitive behind :class:`WalkDecoder` and the
        serving batcher: embed + position add, then per transformer
        block layer-norm / QKV projections / KV-cached attention /
        output projection / feed-forward, then the final norm and the
        vocabulary head — everything the per-op path dissolved into
        ~10 backend calls per layer.  The base implementation is the
        bit-identical per-op reference (it calls this backend's own
        compound ops in the exact order the per-op path used);
        subclasses may fuse the whole step.

        Parameters
        ----------
        weights:
            A :class:`repro.nn.inference._WalkWeights`-shaped object
            (duck-typed to avoid a circular import): ``embed``,
            ``positions``, ``blocks`` (each with ``norm1``/``norm2``/
            ``q``/``k``/``v``/``out``/``ff_in``/``ff_out`` parameter
            tuples plus ``num_heads``/``head_dim``/``dim``),
            ``final_norm`` and ``head``.
        caches:
            One :class:`~repro.nn.attention.LayerKVCache` per block;
            mutated — the step's keys/values are appended.
        tokens:
            ``(B, L)`` int64 input ids (``L == 1`` on the steady-state
            decode path, ``L > 1`` for prefill/catch-up forwards).
        position:
            An ``int`` in uniform mode — every row has this many
            previously decoded positions — or a ``(B,)`` int64 array of
            per-row positions in ragged (serving) mode.
        mask:
            Optional additive attention mask over the new positions
            (the causal mask of a multi-token forward); ``None`` on
            single-token steps.
        groups:
            ``None`` selects uniform mode (:meth:`LayerKVCache.append`,
            whole-batch attention and head).  A list of ``(row0, row1,
            new_len)`` triples selects ragged serving mode: keys/values
            land via :meth:`LayerKVCache.append_ragged` and attention +
            the head GEMM run per request group over exact cache
            slices, so served walks stay byte-identical to standalone
            decode.  With ``L > 1`` every group must start from an
            empty row range (``new_len == L``, the admission catch-up
            forward) so one causal ``mask`` fits all groups.
        scratch:
            Optional dict of session-owned work buffers (see
            :func:`scratch_buffer`); fused backends decode whole steps
            without allocating, the reference ignores it.

        Returns the ``(B, vocab)`` logits of the last new position —
        always a freshly allocated array, never a view of ``scratch``,
        so callers may hold it across subsequent steps.
        """
        batch, length = tokens.shape
        if groups is None:
            h = weights.embed[tokens] \
                + weights.positions[position: position + length]
        else:
            pos = np.asarray(position, dtype=np.int64)
            if length == 1:
                h = weights.embed[tokens] + weights.positions[pos][:, None, :]
            else:
                h = weights.embed[tokens] \
                    + weights.positions[pos[:, None] + np.arange(length)]
        scale = None
        for blk, cache in zip(weights.blocks, caches):
            x = self.layer_norm(h, *blk.norm1)
            if scale is None:
                scale = 1.0 / np.sqrt(blk.head_dim)

            def split(t: np.ndarray) -> np.ndarray:
                return t.reshape(batch, length, blk.num_heads,
                                 blk.head_dim).transpose(0, 2, 1, 3)

            q = split(self.linear(x, *blk.q))
            k = split(self.linear(x, *blk.k))
            v = split(self.linear(x, *blk.v))
            if groups is None:
                k_all, v_all = cache.append(k, v)
                scores = (q @ k_all.transpose(0, 1, 3, 2)) * scale
                if mask is not None:
                    scores = scores + mask
                context = self.softmax(scores) @ v_all
            else:
                cache.append_ragged(k, v)
                context = np.empty_like(q)
                for row0, row1, new_len in groups:
                    k_g, v_g = cache.rows_view(row0, row1, new_len)
                    s = (q[row0:row1] @ k_g.transpose(0, 1, 3, 2)) * scale
                    if mask is not None:
                        s = s + mask
                    context[row0:row1] = self.softmax(s) @ v_g
            merged = context.transpose(0, 2, 1, 3).reshape(batch, length,
                                                           blk.dim)
            h = h + self.linear(merged, *blk.out)
            x2 = self.layer_norm(h, *blk.norm2)
            hidden = self.gelu(self.linear(x2, *blk.ff_in))
            h = h + self.linear(hidden, *blk.ff_out)
        out = self.layer_norm(h[:, -1, :], *weights.final_norm)
        if groups is None:
            return self.linear(out, *weights.head)
        # The head GEMM's shape must match standalone decode exactly
        # (BLAS accumulation order is only guaranteed per identical
        # call), so it runs per request group, never over the batch.
        logits = np.empty((batch, weights.head[0].shape[1]))
        for row0, row1, _ in groups:
            logits[row0:row1] = self.linear(out[row0:row1], *weights.head)
        return logits


class NumpyBackend(Backend):
    """The default backend: one numpy op per engine op, bit-identical."""

    name = "numpy"


class FusedNumpyBackend(Backend):
    """Numpy with fused/in-place compound kernels.

    Each override performs the *same arithmetic in the same order* as
    the reference (so results are bit-identical — multiplications are
    only reordered where float multiplication is exactly commutative),
    but reuses buffers via ``out=`` instead of allocating a temporary
    per step.  On graph-scale activations the compound ops drop from
    five-plus allocations to one or two.
    """

    name = "fused"

    @staticmethod
    def sigmoid(x: np.ndarray) -> np.ndarray:
        # 1 / (1 + exp(-clip(x))): one buffer end to end.
        t = np.clip(x, -60.0, 60.0)
        np.negative(t, out=t)
        np.exp(t, out=t)
        t += 1.0
        np.divide(1.0, t, out=t)
        return t

    @staticmethod
    def sigmoid_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        # grad * out * (1 - out), left-to-right like the reference.
        g = grad * out
        t = 1.0 - out
        g *= t
        return g

    @staticmethod
    def tanh_grad(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
        t = out ** 2
        np.subtract(1.0, t, out=t)
        t *= grad
        return t

    @staticmethod
    def gelu(x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = x * x
        inner *= x                 # (x * x) * x, the reference cube
        inner *= 0.044715          # 0.044715 * x^3 (commutative)
        inner += x                 # x + 0.044715 * x^3
        inner *= c                 # c * (...)
        np.tanh(inner, out=inner)
        inner += 1.0               # 1 + t
        half = 0.5 * x
        half *= inner              # (0.5 * x) * (1 + t): reference order
        return half

    @staticmethod
    def gelu_grad(grad: np.ndarray, x: np.ndarray) -> np.ndarray:
        c = np.sqrt(2.0 / np.pi)
        inner = x * x
        inner *= x
        inner *= 0.044715
        inner += x
        inner *= c
        t = np.tanh(inner)
        dinner = x ** 2
        dinner *= 3 * 0.044715
        dinner += 1.0
        dinner *= c                # c * (1 + 3*0.044715*x^2) (commutative)
        # local = 0.5*(1+t) + 0.5*x*(1-t^2)*dinner, reference order kept
        one_minus_t2 = t ** 2
        np.subtract(1.0, one_minus_t2, out=one_minus_t2)
        half_x = 0.5 * x
        half_x *= one_minus_t2     # (0.5*x) * (1-t^2)
        half_x *= dinner           # ... * dinner
        t += 1.0
        t *= 0.5                   # 0.5 * (1+t) (commutative)
        t += half_x
        t *= grad                  # grad * local (commutative)
        return t

    @staticmethod
    def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        out = x - x.max(axis=axis, keepdims=True)
        np.exp(out, out=out)
        out /= out.sum(axis=axis, keepdims=True)
        return out

    @staticmethod
    def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        z = np.exp(shifted).sum(axis=axis, keepdims=True)
        np.log(z, out=z)
        shifted -= z
        return shifted

    @staticmethod
    def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float) -> np.ndarray:
        centered = x - x.mean(axis=-1, keepdims=True)
        sq = centered * centered
        var = sq.mean(axis=-1, keepdims=True)
        var += eps
        np.sqrt(var, out=var)
        out = centered / var
        out *= gamma               # (centered/sqrt) * gamma: same order
        out += beta
        return out

    @staticmethod
    def linear(x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None) -> np.ndarray:
        out = x @ weight
        if bias is not None:
            out += bias
        return out

    def decode_step(self, weights, caches, tokens: np.ndarray,
                    position, *, mask: np.ndarray | None = None,
                    groups: list | None = None,
                    scratch: dict | None = None) -> np.ndarray:
        """Whole decode step with in-place ``out=`` scratch buffers.

        Same float sequence as the reference (every in-place rewrite
        preserves the reference rounding order, verified by the
        decode-step parity suite), but the entire step runs inside the
        session's preallocated ``scratch`` dict: no per-op temporaries,
        no per-layer closure builds, one Python call per token.  Beyond
        buffer reuse, two wrapper bypasses keep the values untouched
        while cutting dispatch cost: reductions go straight to
        ``np.add.reduce``/``np.maximum.reduce`` (exactly what
        ``ndarray.mean``/``max``/``sum`` delegate to), and attention
        scores live in a *flat* scratch buffer re-viewed contiguously
        at each step's exact ``(.., length)`` shape — a sliced 4-D
        buffer would hand strided views to matmul/softmax, which numpy
        processes measurably slower than contiguous ones.  Only the
        returned logits are freshly allocated.
        """
        batch, length = tokens.shape
        positions_tab = weights.positions
        dim = positions_tab.shape[1]
        h = scratch_buffer(scratch, "h", (batch, length, dim))
        np.take(weights.embed, tokens, axis=0, out=h)
        if groups is None:
            h += positions_tab[position: position + length]
        else:
            pos = np.asarray(position, dtype=np.int64)
            if length == 1:
                pbuf = scratch_buffer(scratch, "pos", (batch, dim))
                np.take(positions_tab, pos, axis=0, out=pbuf)
                h += pbuf[:, None, :]
            else:
                h += positions_tab[pos[:, None] + np.arange(length)]
        x = scratch_buffer(scratch, "x", (batch, length, dim))
        sq = scratch_buffer(scratch, "sq", (batch, length, dim))
        mu = scratch_buffer(scratch, "mu", (batch, length, 1))
        var = scratch_buffer(scratch, "var", (batch, length, 1))
        cap = caches[0].capacity
        if cap is None:
            cap = caches[0].length + length
        blk0 = weights.blocks[0]
        heads, head_dim = blk0.num_heads, blk0.head_dim
        scale = 1.0 / np.sqrt(head_dim)
        qkv = scratch_buffer(scratch, "qkv", (batch, length, 3 * dim))
        o = scratch_buffer(scratch, "o", (batch, length, dim))
        sflat = scratch_buffer(scratch, "scores",
                               (batch * heads * length * cap,))
        ctx = scratch_buffer(scratch, "ctx", (batch, heads, length, head_dim))
        ff_dim = blk0.ff_in[0].shape[1]
        ff = scratch_buffer(scratch, "ff", (batch, length, ff_dim))
        g1 = scratch_buffer(scratch, "gelu1", (batch, length, ff_dim))
        g2 = scratch_buffer(scratch, "gelu2", (batch, length, ff_dim))
        c_gelu = np.sqrt(2.0 / np.pi)

        def norm(src, dst, gamma, beta, eps):
            # layer_norm with out= buffers, reference rounding order;
            # ndarray.mean is umr_sum/count under the hood, so the
            # direct add.reduce + divide is the same float sequence.
            # (No augmented assignment on mu/var: they are closed over,
            # and `mu /= dim` would rebind them as locals.)
            np.add.reduce(src, axis=-1, keepdims=True, out=mu)
            np.divide(mu, dim, out=mu)
            np.subtract(src, mu, out=dst)
            np.multiply(dst, dst, out=sq)
            np.add.reduce(sq, axis=-1, keepdims=True, out=var)
            np.divide(var, dim, out=var)
            np.add(var, eps, out=var)
            np.sqrt(var, out=var)
            dst /= var
            dst *= gamma
            dst += beta

        for idx, (blk, cache) in enumerate(zip(weights.blocks, caches)):
            norm(h, x, *blk.norm1)
            # One GEMM over the concatenated [Wq|Wk|Wv] block: per output
            # element BLAS accumulates over the same k-dim regardless of
            # how many columns ride along, so each column block is
            # bit-identical to its standalone projection (pinned by the
            # decode-step parity suite).  The concat itself is built once
            # per session and cached in scratch keyed by weight identity.
            w_qkv, b_qkv = _qkv_concat(scratch, idx, blk)
            np.matmul(x, w_qkv, out=qkv)
            qkv += b_qkv
            q = qkv[:, :, :dim].reshape(batch, length, heads,
                                        head_dim).transpose(0, 2, 1, 3)
            k = qkv[:, :, dim:2 * dim].reshape(batch, length, heads,
                                               head_dim).transpose(0, 2, 1, 3)
            v = qkv[:, :, 2 * dim:].reshape(batch, length, heads,
                                            head_dim).transpose(0, 2, 1, 3)
            if groups is None:
                k_all, v_all = cache.append(k, v)
                n = batch * heads * length * cache.length
                s = sflat[:n].reshape(batch, heads, length, cache.length)
                np.matmul(q, k_all.transpose(0, 1, 3, 2), out=s)
                s *= scale
                if mask is not None:
                    s += mask
                _softmax_inplace(s)
                np.matmul(s, v_all, out=ctx)
            else:
                cache.append_ragged(k, v)
                for row0, row1, new_len in groups:
                    k_g, v_g = cache.rows_view(row0, row1, new_len)
                    n = (row1 - row0) * heads * length * new_len
                    s = sflat[:n].reshape(row1 - row0, heads, length,
                                          new_len)
                    np.matmul(q[row0:row1], k_g.transpose(0, 1, 3, 2),
                              out=s)
                    s *= scale
                    if mask is not None:
                        s += mask
                    _softmax_inplace(s)
                    np.matmul(s, v_g, out=ctx[row0:row1])
            merged = ctx.transpose(0, 2, 1, 3).reshape(batch, length, dim)
            np.matmul(merged, blk.out[0], out=o)
            o += blk.out[1]
            h += o
            norm(h, x, *blk.norm2)
            np.matmul(x, blk.ff_in[0], out=ff)
            ff += blk.ff_in[1]
            # gelu in scratch: the exact op sequence of self.gelu above
            np.multiply(ff, ff, out=g1)
            g1 *= ff                   # (x * x) * x
            g1 *= 0.044715
            g1 += ff
            g1 *= c_gelu
            np.tanh(g1, out=g1)
            g1 += 1.0
            np.multiply(ff, 0.5, out=g2)
            g2 *= g1                   # (0.5 * x) * (1 + t)
            np.matmul(g2, blk.ff_out[0], out=o)
            o += blk.ff_out[1]
            h += o
        last = h[:, -1, :]
        fx = scratch_buffer(scratch, "fx", (batch, dim))
        fsq = scratch_buffer(scratch, "fsq", (batch, dim))
        fmu = scratch_buffer(scratch, "fmu", (batch, 1))
        fvar = scratch_buffer(scratch, "fvar", (batch, 1))
        gamma, beta, eps = weights.final_norm
        np.add.reduce(last, axis=-1, keepdims=True, out=fmu)
        fmu /= dim
        np.subtract(last, fmu, out=fx)
        np.multiply(fx, fx, out=fsq)
        np.add.reduce(fsq, axis=-1, keepdims=True, out=fvar)
        fvar /= dim
        fvar += eps
        np.sqrt(fvar, out=fvar)
        fx /= fvar
        fx *= gamma
        fx += beta
        head_w, head_b = weights.head
        logits = np.empty((batch, head_w.shape[1]))
        if groups is None:
            np.matmul(fx, head_w, out=logits)
            logits += head_b
        else:
            for row0, row1, _ in groups:
                np.matmul(fx[row0:row1], head_w, out=logits[row0:row1])
                logits[row0:row1] += head_b
        return logits


def _qkv_concat(scratch: dict | None, idx: int, blk):
    """Per-layer ``[Wq|Wk|Wv]`` / bias concat, cached in ``scratch``.

    Keyed by the layer index *and* the identity of ``Wq`` so a scratch
    dict can never serve stale weights to a different model.
    """
    key = ("_qkv", idx)
    if scratch is not None:
        hit = scratch.get(key)
        if hit is not None and hit[0] is blk.q[0]:
            return hit[1], hit[2]
    w = np.concatenate([blk.q[0], blk.k[0], blk.v[0]], axis=1)
    b = np.concatenate([blk.q[1], blk.k[1], blk.v[1]])
    if scratch is not None:
        scratch[key] = (blk.q[0], w, b)
    return w, b


def _softmax_inplace(s: np.ndarray) -> None:
    """Reference-order softmax written back into ``s``.

    ``ndarray.max``/``sum`` delegate to these exact ufunc reductions;
    calling them directly skips the python wrapper on the hot path.
    """
    mx = np.maximum.reduce(s, axis=-1, keepdims=True)
    np.subtract(s, mx, out=s)
    np.exp(s, out=s)
    s /= np.add.reduce(s, axis=-1, keepdims=True)


def _make_numba_backend() -> Backend | None:
    """Build the optional numba-JIT backend; ``None`` when unavailable.

    A soft import: environments without :mod:`numba` (the common case —
    it is not a dependency) simply never see the backend registered.
    """
    try:
        import numba
    except ImportError:
        return None

    @numba.vectorize(["float64(float64)"], cache=True)
    def _sigmoid(x):
        if x > 60.0:
            x = 60.0
        elif x < -60.0:
            x = -60.0
        return 1.0 / (1.0 + np.exp(-x))

    @numba.vectorize(["float64(float64)"], cache=True)
    def _gelu(x):
        c = np.sqrt(2.0 / np.pi)
        t = np.tanh(c * (x + 0.044715 * (x * x * x)))
        return 0.5 * x * (1.0 + t)

    class NumbaBackend(FusedNumpyBackend):
        """JIT-compiled elementwise kernels; numpy for everything else.

        Values may differ from the numpy reference at the ULP level
        (libm vs compiled transcendentals), so this backend is *not*
        held to the bit-identity bar — it exists for throughput on
        large elementwise-bound models.
        """

        name = "numba"

        sigmoid = staticmethod(_sigmoid)
        gelu = staticmethod(_gelu)

    return NumbaBackend()


# ----------------------------------------------------------------------
# Registry + active-backend state
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Backend] = {}
_ACTIVE: Backend


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` under ``backend.name``.

    The full ops table is validated eagerly — a backend missing an op
    cannot exist, because :class:`Backend` provides the reference
    fallback for anything not overridden.
    """
    missing = [op for op in OPS if not callable(getattr(backend, op, None))]
    if missing:  # only reachable if someone shadows an op with a non-call
        raise TypeError(f"backend {backend.name!r} is missing ops {missing}")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> list[str]:
    """Names of every registered backend, registration order."""
    return list(_REGISTRY)


def get_backend(name: str) -> Backend:
    if name not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; registered: "
                       f"{available_backends()} (is an optional dependency "
                       "missing?)")
    return _REGISTRY[name]


def set_backend(name: str) -> Backend:
    """Make ``name`` the process-wide active backend; returns it."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


def active() -> Backend:
    """The currently active backend (the engine's per-op accessor)."""
    return _ACTIVE


class use_backend:
    """Context manager scoping a backend choice::

        with use_backend("fused"):
            model.fit(graph, rng)
    """

    def __init__(self, name: str):
        self._name = name
        self._prev: Backend | None = None

    def __enter__(self) -> Backend:
        self._prev = _ACTIVE
        return set_backend(self._name)

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev


register_backend(NumpyBackend())
register_backend(FusedNumpyBackend())
_numba = _make_numba_backend()
if _numba is not None:
    register_backend(_numba)

_ACTIVE = get_backend(os.environ.get("REPRO_BACKEND", "numpy"))
