"""NumPy neural-network substrate (autograd, layers, attention, LSTM)."""

from .backend import (Backend, FusedNumpyBackend, NumpyBackend, OPS,
                      available_backends, get_backend, register_backend,
                      set_backend, use_backend)
from .backend import active as active_backend
from .tensor import Tensor, no_grad, is_grad_enabled
from .layers import (Dropout, Embedding, LayerNorm, Linear, MLP, Module,
                     Parameter, Sequential)
from .attention import (LayerKVCache, MultiHeadSelfAttention,
                        TransformerBlock, causal_mask, sinusoidal_positions)
from .inference import WalkDecoder
from .rnn import LSTM, LSTMCell
from .optim import (Adagrad, Adam, CosineAnnealingLR, LRScheduler,
                    Optimizer, RMSprop, SGD, StepLR, clip_grad_norm)
from .serialization import load_state, save_state
from .vmap import StackedModules, stack_modules, unstack_state_dict
from . import functional

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "Backend", "NumpyBackend", "FusedNumpyBackend", "OPS",
    "register_backend", "available_backends", "get_backend",
    "set_backend", "use_backend", "active_backend",
    "Module", "Parameter", "Linear", "Embedding", "LayerNorm", "Dropout",
    "Sequential", "MLP",
    "MultiHeadSelfAttention", "TransformerBlock", "causal_mask",
    "sinusoidal_positions", "LayerKVCache", "WalkDecoder",
    "LSTM", "LSTMCell",
    "Optimizer", "SGD", "Adam", "RMSprop", "Adagrad", "clip_grad_norm",
    "LRScheduler", "StepLR", "CosineAnnealingLR",
    "save_state", "load_state",
    "StackedModules", "stack_modules", "unstack_state_dict",
    "functional",
]
