"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: list[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert analytic and numerical gradients agree for every tensor.

    Raises ``AssertionError`` on mismatch; intended for the test suite.
    """
    for t in tensors:
        t.zero_grad()
    loss = fn()
    loss.backward()
    analytic = [t.grad.copy() if t.grad is not None else np.zeros_like(t.data)
                for t in tensors]
    for t, a in zip(tensors, analytic):
        n = numerical_gradient(fn, t)
        if not np.allclose(a, n, atol=atol, rtol=rtol):
            worst = float(np.abs(a - n).max())
            raise AssertionError(
                f"gradient mismatch (max abs err {worst:.2e}) for tensor "
                f"of shape {t.shape}")
