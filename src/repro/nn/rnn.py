"""LSTM recurrence, used by the NetGAN baseline's generator/discriminator.

NetGAN (Bojchevski et al., ICML 2018) models random walks with an LSTM
trained under a Wasserstein-GAN objective; FairGen cites it as the main
deep baseline and its Figure 1 disparity study runs on it.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor
from .layers import Linear, Module

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM step with combined input/hidden projections."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.ih = Linear(input_dim, 4 * hidden_dim, rng)
        self.hh = Linear(hidden_dim, 4 * hidden_dim, rng, bias=False)
        # Forget-gate bias of 1.0 eases early gradient flow.
        self.ih.bias.data[hidden_dim: 2 * hidden_dim] = 1.0

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = self.ih(x) + self.hh(h_prev)
        H = self.hidden_dim
        i = gates[:, 0 * H: 1 * H].sigmoid()
        f = gates[:, 1 * H: 2 * H].sigmoid()
        g = gates[:, 2 * H: 3 * H].tanh()
        o = gates[:, 3 * H: 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def zero_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros), Tensor(zeros)


class LSTM(Module):
    """Unrolled single-layer LSTM over a ``(B, T, D)`` input tensor."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)

    def forward(self, x: Tensor,
                state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, length, _ = x.shape
        if state is None:
            state = self.cell.zero_state(batch)
        outputs = []
        for t in range(length):
            h, c = self.cell(x[:, t, :], state)
            state = (h, c)
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), state
