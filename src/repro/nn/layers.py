"""Stateful neural-network modules (Linear, Embedding, LayerNorm, MLP...)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor
from . import functional as F

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
]


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and train/eval switching.

    Mirrors the small subset of ``torch.nn.Module`` behaviour the paper's
    models need: recursive parameter discovery, ``zero_grad``, state dicts.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter traversal -------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            full = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict ------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if params[name].shape != value.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{params[name].shape} vs {value.shape}")
            value = np.asarray(value)
            if value.dtype == np.float64 and not value.flags.writeable:
                # A read-only float64 array (e.g. an mmap-loaded serving
                # weight) is aliased, not copied: nothing can mutate it
                # through the parameter, and copying would defeat the
                # point of memory-mapping — many resident models sharing
                # the page cache.  Training such a model fails loudly on
                # the first in-place update.
                params[name].data = value
            else:
                params[name].data = value.astype(np.float64, copy=True)

    # -- mode switching ---------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def eval_forward(self, *args, **kwargs):
        """Forward pass under :class:`~repro.nn.no_grad` — pure scoring.

        Produces the same values as :meth:`forward` but records no
        computation graph: no parent tuples, no backward closures, no
        retained intermediates.  This is the path for repeated
        full-batch scoring inside training loops (e.g. the fair
        discriminator's per-cycle ``predict_log_proba``), where graph
        bookkeeping over all nodes is pure overhead.
        """
        from .tensor import no_grad

        with no_grad():
            return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 scale: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, scale, (num_embeddings, dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout module with its own RNG stream."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class _Activation(Module):
    def __init__(self, kind: str):
        super().__init__()
        self.kind = kind

    def forward(self, x: Tensor) -> Tensor:
        return getattr(x, self.kind)()


class MLP(Module):
    """Multi-layer perceptron.

    FairGen's discriminator ``d_omega`` is a three-layer MLP (Section II-B,
    M2); this class is also reused by the GAE baseline's decoder head.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activation: str = "relu", dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng))
            if i < len(dims) - 2:
                layers.append(_Activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
