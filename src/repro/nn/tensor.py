"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the neural substrate of the FairGen reproduction.  The paper
trains its generator and discriminator with PyTorch; this environment has no
deep-learning framework installed, so we implement the required subset from
scratch: a :class:`Tensor` type that records a dynamic computation graph and
back-propagates gradients through it.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (always ``float64`` for
  numerical robustness of gradient checks) plus an optional gradient buffer.
* Each operation returns a new tensor whose ``_backward`` closure knows how
  to push the output gradient into the inputs.  ``backward()`` runs a
  topological sort and calls the closures in reverse order.
* Broadcasting follows NumPy semantics; :func:`_unbroadcast` reduces an
  upstream gradient back to the shape of the operand that was broadcast.
* Every numeric kernel — forward data and the compound backward kernels —
  dispatches through the active :class:`~repro.nn.backend.Backend`, so the
  whole engine retargets when :func:`~repro.nn.backend.set_backend` swaps
  the ops table.  Each op captures the backend once at record time; its
  backward closure therefore runs on the same backend the forward pass
  used even if the active backend changes before ``backward()``.
* Grad-enabled state is **per-thread** (``threading.local``): a
  ``no_grad()`` scoring pass on one thread must not disable graph
  construction for a concurrent fit on another.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from .backend import active as _backend

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction (inference mode).

    The flag lives in thread-local state: entering ``no_grad`` on one
    thread leaves autograd recording untouched on every other thread.
    """

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autograd."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    B = _backend()
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = B.sum(grad, axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = B.sum(grad, axis=axes, keepdims=True)
    return B.reshape(grad, shape)


def _as_array(value) -> np.ndarray:
    return _backend().asarray(value, np.float64)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        """Create an op output; record the closure if autograd is active.

        Under ``no_grad()`` this is the inference fast path: the output
        tensor is constructed bare — no parent tuple, no backward
        closure, no graph — so bulk sampling does not pay autograd
        bookkeeping.  (The heavy decode loop goes further and bypasses
        ``Tensor`` entirely via :mod:`repro.nn.inference`.)
        """
        if not is_grad_enabled():
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parents)
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(out.grad, other.shape))

        return self._make(_backend().add(self.data, other.data),
                          (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make(_backend().negative(self.data), (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(-out.grad, other.shape))

        return self._make(_backend().subtract(self.data, other.data),
                          (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return self._make(_backend().multiply(self.data, other.data),
                          (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape))

        return self._make(_backend().divide(self.data, other.data),
                          (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent) -> "Tensor":
        B = _backend()
        if isinstance(exponent, Tensor):
            other = exponent
            data = B.power(self.data, other.data)

            def backward(out: Tensor) -> None:
                self._accumulate(_unbroadcast(
                    out.grad * other.data * B.power(self.data, other.data - 1.0),
                    self.shape))
                # d(a**b)/db = a**b * log(a); NaN for a <= 0, as in torch.
                other._accumulate(_unbroadcast(
                    out.grad * data * B.log(self.data), other.shape))

            return self._make(data, (self, other), backward)

        if isinstance(exponent, np.integer):
            exponent = int(exponent)
        elif isinstance(exponent, np.floating):
            exponent = float(exponent)
        if not isinstance(exponent, (int, float)):
            raise TypeError(
                "Tensor.__pow__ expects a Python/NumPy scalar or Tensor "
                f"exponent, got {type(exponent).__name__}")

        def backward(out: Tensor) -> None:
            self._accumulate(
                out.grad * exponent * B.power(self.data, exponent - 1))

        return self._make(B.power(self.data, exponent), (self,), backward)

    def __rpow__(self, base) -> "Tensor":
        return self._lift(base) ** self

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        B = _backend()

        def backward(out: Tensor) -> None:
            g = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(g * b)
                other._accumulate(g * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                other._accumulate(_unbroadcast(a[:, None] * g[..., None, :], b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(_unbroadcast(g[..., :, None] * b, a.shape))
                other._accumulate(_unbroadcast((a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1))), b.shape))
                return
            ga = B.matmul(g, B.swapaxes(b, -1, -2))
            gb = B.matmul(B.swapaxes(a, -1, -2), g)
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(B.matmul(self.data, other.data),
                          (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        B = _backend()

        def backward(out: Tensor) -> None:
            self._accumulate(B.reshape(out.grad, self.shape))

        return self._make(B.reshape(self.data, shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        B = _backend()

        def backward(out: Tensor) -> None:
            self._accumulate(B.transpose(out.grad, inverse))

        return self._make(B.transpose(self.data, axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        B = _backend()

        def backward(out: Tensor) -> None:
            self._accumulate(B.swapaxes(out.grad, a, b))

        return self._make(B.swapaxes(self.data, a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        B = _backend()

        def backward(out: Tensor) -> None:
            grad = B.zeros_like(self.data)
            B.index_add(grad, index, out.grad)
            self._accumulate(grad)

        return self._make(B.take(self.data, index), (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = _backend().concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * out.grad.ndim
                sl[axis] = slice(lo, hi)
                t._accumulate(out.grad[tuple(sl)])

        anchor = tensors[0]
        return anchor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = _backend().stack([t.data for t in tensors], axis=axis)

        def backward(out: Tensor) -> None:
            for i, t in enumerate(tensors):
                t._accumulate(np.take(out.grad, i, axis=axis))

        anchor = tensors[0]
        return anchor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        B = _backend()

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = B.expand_dims(grad, axis)
            self._accumulate(B.broadcast_to(grad, self.shape).copy())

        return self._make(B.sum(self.data, axis=axis, keepdims=keepdims),
                          (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        B = _backend()

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = B.expand_dims(grad, axis)
            self._accumulate(B.broadcast_to(grad, self.shape).copy() / count)

        return self._make(B.mean(self.data, axis=axis, keepdims=keepdims),
                          (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        B = _backend()
        data = B.amax(self.data, axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            value = data
            if axis is not None and not keepdims:
                grad = B.expand_dims(grad, axis)
                value = B.expand_dims(value, axis)
            mask = (self.data == value).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = _backend().exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make(_backend().log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = _backend().sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / data)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        B = _backend()

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * B.sign(self.data))

        return self._make(B.absolute(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        B = _backend()
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(B.relu_grad(out.grad, mask))

        return self._make(B.relu(self.data, mask), (self,), backward)

    def tanh(self) -> "Tensor":
        B = _backend()
        data = B.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(B.tanh_grad(out.grad, data))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        B = _backend()
        data = B.sigmoid(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(B.sigmoid_grad(out.grad, data))

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        B = _backend()
        x = self.data

        def backward(out: Tensor) -> None:
            self._accumulate(B.gelu_grad(out.grad, x))

        return self._make(B.gelu(x), (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        B = _backend()
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(B.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (implemented as primitives for stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        B = _backend()
        data = B.softmax(self.data, axis=axis)

        def backward(out: Tensor) -> None:
            g = out.grad
            dot = (g * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (g - dot))

        return self._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        B = _backend()
        data = B.log_softmax(self.data, axis=axis)
        soft = B.exp(data)

        def backward(out: Tensor) -> None:
            g = out.grad
            self._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
            # Free the closure so intermediate buffers can be collected.
            if node is not self:
                node._backward = None


def _tensor_iter(values: Iterable) -> list[Tensor]:
    return [Tensor._lift(v) for v in values]
