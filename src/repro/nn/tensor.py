"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the neural substrate of the FairGen reproduction.  The paper
trains its generator and discriminator with PyTorch; this environment has no
deep-learning framework installed, so we implement the required subset from
scratch: a :class:`Tensor` type that records a dynamic computation graph and
back-propagates gradients through it.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (always ``float64`` for
  numerical robustness of gradient checks) plus an optional gradient buffer.
* Each operation returns a new tensor whose ``_backward`` closure knows how
  to push the output gradient into the inputs.  ``backward()`` runs a
  topological sort and calls the closures in reverse order.
* Broadcasting follows NumPy semantics; :func:`_unbroadcast` reduces an
  upstream gradient back to the shape of the operand that was broadcast.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for autograd."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        """Create an op output; record the closure if autograd is active.

        Under ``no_grad()`` this is the inference fast path: the output
        tensor is constructed bare — no parent tuple, no backward
        closure, no graph — so bulk sampling does not pay autograd
        bookkeeping.  (The heavy decode loop goes further and bypasses
        ``Tensor`` entirely via :mod:`repro.nn.inference`.)
        """
        if not _GRAD_ENABLED:
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parents)
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(out.grad, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad, self.shape))
            other._accumulate(_unbroadcast(-out.grad, other.shape))

        return self._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)

        def backward(out: Tensor) -> None:
            g = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(g * b)
                other._accumulate(g * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                other._accumulate(_unbroadcast(a[:, None] * g[..., None, :], b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(_unbroadcast(g[..., :, None] * b, a.shape))
                other._accumulate(_unbroadcast((a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1))), b.shape))
                return
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(self.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(np.swapaxes(out.grad, a, b))

        return self._make(np.swapaxes(self.data, a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        return self._make(self.data[index], (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * out.grad.ndim
                sl[axis] = slice(lo, hi)
                t._accumulate(out.grad[tuple(sl)])

        anchor = tensors[0]
        return anchor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(out: Tensor) -> None:
            for i, t in enumerate(tensors):
                t._accumulate(np.take(out.grad, i, axis=axis))

        anchor = tensors[0]
        return anchor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy() / count)

        return self._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            value = data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                value = np.expand_dims(value, axis)
            mask = (self.data == value).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / data)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * np.sign(self.data))

        return self._make(np.abs(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(out: Tensor) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
            local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
            self._accumulate(out.grad * local)

        return self._make(data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (implemented as primitives for stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        data = e / e.sum(axis=axis, keepdims=True)

        def backward(out: Tensor) -> None:
            g = out.grad
            dot = (g * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (g - dot))

        return self._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_z
        soft = np.exp(data)

        def backward(out: Tensor) -> None:
            g = out.grad
            self._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
            # Free the closure so intermediate buffers can be collected.
            if node is not self:
                node._backward = None


def _tensor_iter(values: Iterable) -> list[Tensor]:
    return [Tensor._lift(v) for v in values]
