"""Optimisers: SGD (Algorithm 1, step 10 uses SGD) and Adam.

Both operate on the :class:`~repro.nn.layers.Parameter` list of a module
and support global-norm gradient clipping, which stabilises the WGAN
training of the NetGAN baseline.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "Adagrad",
           "LRScheduler", "StepLR", "CosineAnnealingLR", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser storing the parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpoint support ---------------------------------------------
    #
    # ``state_dict``/``load_state_dict`` round-trip the optimiser's
    # internal buffers (momenta, squared-grad accumulators, step count)
    # so a checkpointed fit resumes with byte-identical updates.  Each
    # per-parameter buffer list is stored under ``<slot><index>``;
    # scalar state (Adam's ``t``) as a 0-d array.

    def _buffer_slots(self) -> dict[str, list[np.ndarray]]:
        """Per-parameter buffer lists to checkpoint, keyed by slot name."""
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        """The optimiser's mutable state as named array copies."""
        return {f"{slot}{i}": buf.copy()
                for slot, buffers in self._buffer_slots().items()
                for i, buf in enumerate(buffers)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output into the live buffers."""
        for slot, buffers in self._buffer_slots().items():
            for i, buf in enumerate(buffers):
                value = np.asarray(state[f"{slot}{i}"], dtype=buf.dtype)
                if value.shape != buf.shape:
                    raise ValueError(
                        f"shape mismatch for optimiser buffer {slot}{i}: "
                        f"{buf.shape} vs {value.shape}")
                buf[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _buffer_slots(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _buffer_slots(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state["t"] = np.array(self._t, dtype=np.int64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad ** 2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton): scale steps by an EMA of squared grads."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 alpha: float = 0.99, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.lr = lr
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def _buffer_slots(self) -> dict[str, list[np.ndarray]]:
        return {"sq": self._sq}

    def step(self) -> None:
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            sq *= self.alpha
            sq += (1 - self.alpha) * grad ** 2
            p.data -= self.lr * grad / (np.sqrt(sq) + self.eps)


class Adagrad(Optimizer):
    """Adagrad (Duchi et al.): per-coordinate cumulative scaling."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 eps: float = 1e-10):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def _buffer_slots(self) -> dict[str, list[np.ndarray]]:
        return {"accum": self._accum}

    def step(self) -> None:
        for p, accum in zip(self.params, self._accum):
            if p.grad is None:
                continue
            accum += p.grad ** 2
            p.data -= self.lr * p.grad / (np.sqrt(accum) + self.eps)


class LRScheduler:
    """Base learning-rate scheduler wrapping an optimizer's ``lr``."""

    def __init__(self, optimizer: Optimizer):
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer has no adjustable lr")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: Optimizer, total: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        if total < 1:
            raise ValueError("total must be >= 1")
        self.total = total
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total) / self.total
        cos = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
