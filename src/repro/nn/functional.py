"""Loss functions and stateless neural-network operations."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "dropout",
    "one_hot",
]


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot ``float64`` encoding of integer labels."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def nll_loss(log_probs: Tensor, targets: np.ndarray,
             weights: np.ndarray | None = None,
             reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over the last axis of ``log_probs``.

    Parameters
    ----------
    log_probs:
        Tensor of shape ``(..., C)`` containing log-probabilities.
    targets:
        Integer array of shape ``(...,)`` with class indices.
    weights:
        Optional per-example weights of the same shape as ``targets`` —
        used by FairGen's cost-sensitive prediction loss (Eq. 9).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = one_hot(targets, log_probs.shape[-1])
    picked = (log_probs * Tensor(mask)).sum(axis=-1)
    loss = -picked
    if weights is not None:
        loss = loss * Tensor(np.asarray(weights, dtype=np.float64))
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None,
                  reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy from raw logits (numerically stable)."""
    return nll_loss(logits.log_softmax(axis=-1), targets, weights, reduction)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable sigmoid cross-entropy: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    t = Tensor(np.asarray(targets, dtype=np.float64))
    relu_x = logits.relu()
    loss = relu_x - logits * t + ((-logits.abs()).exp() + 1.0).log()
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def mse_loss(pred: Tensor, target: np.ndarray | Tensor,
             reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity outside training or when ``p == 0``."""
    if not training or p <= 0.0 or not is_grad_enabled():
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)
