"""Seed-stacking (vmap-style) transform over parameter trees.

A sweep cell re-fits the *same* model config under K seeds.  Running
those as K processes repeats every matmul K times at unbatched sizes;
:func:`stack_modules` instead fuses K structurally identical module
trees into ONE tree whose parameters carry a leading seed axis, so a
single tensor program trains all K fits at once — NumPy's batched
matmul and broadcasting do the vectorisation, and per-slice results are
bit-identical to the unbatched ops (pinned by ``tests/test_stacked.py``).

The transform is *structural*, not symbolic: the stacked tree reuses the
original module classes' ``forward`` unchanged.  That works because the
forwards are written against broadcasting ops — ``x @ W + b`` with
``W: (K, in, out)`` and ``b: (K, 1, out)`` batches over the seed axis
for free.  A per-``(module class, attribute)`` rule table says how each
parameter gains its seed axis (and how to take it back off); classes
without rules fail loudly rather than stack wrongly.

Models opt in via ``supports_stacked_fit`` /
``fit_stacked`` (see :class:`repro.models.base.GraphGenerativeModel`);
the sweep scheduler collapses eligible grid cells through this path.
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

import numpy as np

from .layers import LayerNorm, Linear, Module, Parameter

__all__ = ["StackedModules", "stack_modules", "unstack_state_dict",
           "register_stack_rule"]


class StackRule:
    """How one parameter kind gains / loses its leading seed axis."""

    __slots__ = ("stack", "unstack")

    def __init__(self, stack: Callable[[Sequence[np.ndarray]], np.ndarray],
                 unstack: Callable[[np.ndarray, int], np.ndarray]):
        self.stack = stack
        self.unstack = unstack


def _plain(arrays: Sequence[np.ndarray]) -> np.ndarray:
    return np.stack(arrays)


def _row(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """(d,) -> (K, 1, d): broadcasts against (K, N, d) activations."""
    return np.stack(arrays)[:, None, :]


_RULES: dict[tuple[type, str], StackRule] = {}


def register_stack_rule(cls: type, attr: str,
                        stack: Callable[[Sequence[np.ndarray]], np.ndarray],
                        unstack: Callable[[np.ndarray, int], np.ndarray]
                        | None = None) -> None:
    """Declare how ``cls.attr`` parameters stack along the seed axis.

    ``stack`` maps K same-shape arrays to one stacked array whose axis 0
    is the seed; ``unstack(stacked, i)`` recovers seed ``i``'s array
    (default: take slice ``i`` and drop injected size-1 axes by
    reshaping to the original shape — callers pass the original shape).
    """
    if unstack is None:
        unstack = lambda stacked, i: stacked[i]
    _RULES[(cls, attr)] = StackRule(stack, unstack)


register_stack_rule(Linear, "weight", _plain)
register_stack_rule(Linear, "bias", _row)
register_stack_rule(LayerNorm, "gamma", _row)
register_stack_rule(LayerNorm, "beta", _row)


def _find_rule(cls: type, attr: str) -> StackRule:
    for klass in cls.__mro__:
        rule = _RULES.get((klass, attr))
        if rule is not None:
            return rule
    raise NotImplementedError(
        f"no seed-stack rule for {cls.__name__}.{attr}; declare one with "
        "repro.nn.vmap.register_stack_rule before stacking this module")


def _stack_tree(modules: Sequence[Module]) -> Module:
    """Mirror ``modules[0]``'s tree with seed-stacked parameters."""
    head = modules[0]
    cls = type(head)
    for other in modules[1:]:
        if type(other) is not cls:
            raise TypeError(f"cannot stack {cls.__name__} with "
                            f"{type(other).__name__}")
    clone = copy.copy(head)
    for attr, value in vars(head).items():
        if isinstance(value, Parameter):
            rule = _find_rule(cls, attr)
            for other in modules[1:]:
                if getattr(other, attr).shape != value.shape:
                    raise ValueError(f"{cls.__name__}.{attr} shapes differ "
                                     "across seeds — configs not identical?")
            setattr(clone, attr, Parameter(
                rule.stack([getattr(m, attr).data for m in modules]),
                name=value.name))
        elif isinstance(value, Module):
            setattr(clone, attr,
                    _stack_tree([getattr(m, attr) for m in modules]))
        elif isinstance(value, (list, tuple)):
            items = []
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    items.append(
                        _stack_tree([getattr(m, attr)[i] for m in modules]))
                elif isinstance(item, Parameter):
                    raise NotImplementedError(
                        "bare Parameter lists are not stackable; wrap them "
                        "in a Module with stack rules")
                else:
                    items.append(item)
            setattr(clone, attr, type(value)(items))
        # plain attributes (dims, eps, rng handles...) stay shared views
    return clone


class StackedModules(Module):
    """K structurally identical modules fused along a leading seed axis.

    Calling the stacked tree runs the original forward once over batched
    parameters; :meth:`state_dict_for` recovers seed ``i``'s parameters
    in the exact layout the unstacked module uses, byte-identical to
    what a separate per-seed fit would have produced.
    """

    def __init__(self, modules: Sequence[Module]):
        super().__init__()
        modules = list(modules)
        if not modules:
            raise ValueError("need at least one module to stack")
        self.num_seeds = len(modules)
        self.module = _stack_tree(modules)
        self._shapes = {name: param.shape
                        for name, param in modules[0].named_parameters()}

    def forward(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def state_dict_for(self, index: int) -> dict[str, np.ndarray]:
        """Seed ``index``'s parameters, reshaped to the unstacked layout."""
        if not 0 <= index < self.num_seeds:
            raise IndexError(f"seed index {index} out of range "
                             f"[0, {self.num_seeds})")
        stacked = dict(self.module.named_parameters())
        return {name: np.ascontiguousarray(
                    stacked[name].data[index]).reshape(shape).copy()
                for name, shape in self._shapes.items()}


def stack_modules(modules: Sequence[Module]) -> StackedModules:
    """Fuse K same-architecture modules into one seed-stacked tree."""
    return StackedModules(modules)


def unstack_state_dict(stacked: StackedModules,
                       index: int) -> dict[str, np.ndarray]:
    """Functional alias for :meth:`StackedModules.state_dict_for`."""
    return stacked.state_dict_for(index)
