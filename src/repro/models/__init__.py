"""Baseline graph generative models (ER, BA, GAE, NetGAN, TagGen)."""

from .base import (GraphGenerativeModel, assemble_from_scores,
                   propose_edges_from_walk_counts)
from .random_models import BAModel, ERModel
from .gae import GAEModel, normalized_adjacency
from .netgan import NetGAN, NetGANCritic, NetGANGenerator
from .graphrnn import (GraphRNN, bfs_adjacency_sequences,
                       estimate_bandwidth)
from .taggen import TagGen
from .walk_lm import TransformerWalkModel

__all__ = [
    "GraphGenerativeModel", "assemble_from_scores",
    "propose_edges_from_walk_counts",
    "ERModel", "BAModel",
    "GAEModel", "normalized_adjacency",
    "NetGAN", "NetGANGenerator", "NetGANCritic",
    "TagGen",
    "GraphRNN", "bfs_adjacency_sequences", "estimate_bandwidth",
    "TransformerWalkModel",
]
