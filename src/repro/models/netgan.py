"""NetGAN baseline: a Wasserstein GAN over random walks (Bojchevski 2018).

The generator is an LSTM that decodes a latent vector into a node-id
sequence (Gumbel straight-through sampling keeps it differentiable); the
critic is an LSTM that scores walks.  Training follows the WGAN recipe
with weight clipping.  Graphs are assembled from generated-walk transition
counts, the same pipeline the paper describes in Section II-D.

This baseline also powers the Figure 1 reproduction: training NetGAN for
more iterations degrades the protected group's representation because the
objective weights walks by frequency.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, sample_walks, walks_to_edge_counts
from ..nn import (Adam, Embedding, LSTMCell, Linear, Module, Tensor,
                  no_grad)
from ..train import Trainer, train_step
from .base import (GraphGenerativeModel, assemble_from_scores, extract_state,
                   prefix_state, propose_edges_from_walk_counts)

__all__ = ["NetGAN", "NetGANGenerator", "NetGANCritic"]


def _gumbel_noise(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    u = rng.random(shape)
    return -np.log(-np.log(u + 1e-12) + 1e-12)


class NetGANGenerator(Module):
    """Latent-to-walk LSTM decoder with Gumbel straight-through output."""

    def __init__(self, num_nodes: int, latent_dim: int, hidden_dim: int,
                 node_dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_nodes = num_nodes
        self.latent_dim = latent_dim
        self.init_h = Linear(latent_dim, hidden_dim, rng)
        self.init_c = Linear(latent_dim, hidden_dim, rng)
        self.cell = LSTMCell(node_dim, hidden_dim, rng)
        self.node_embed = Embedding(num_nodes, node_dim, rng)
        self.output = Linear(hidden_dim, num_nodes, rng)
        self.start_input = Tensor(np.zeros(node_dim))

    def rollout(self, z: np.ndarray, length: int, rng: np.random.Generator,
                tau: float = 1.0) -> tuple[Tensor, np.ndarray]:
        """Decode latents into walks.

        Returns the *soft* one-hot sequence (differentiable, for the
        critic) and the hard integer walks (for assembly).
        """
        batch = z.shape[0]
        z_t = Tensor(z)
        state = (self.init_h(z_t).tanh(), self.init_c(z_t).tanh())
        x = Tensor(np.tile(self.start_input.numpy(), (batch, 1)))
        soft_steps: list[Tensor] = []
        hard = np.empty((batch, length), dtype=np.int64)
        for t in range(length):
            h, c = self.cell(x, state)
            state = (h, c)
            logits = self.output(h)
            gumbel = Tensor(_gumbel_noise(rng, logits.shape))
            soft = ((logits + gumbel) * (1.0 / tau)).softmax(axis=-1)
            soft_steps.append(soft)
            ids = soft.numpy().argmax(axis=1)
            hard[:, t] = ids
            # Straight-through: forward uses the soft mix as next input.
            x = soft @ self.node_embed.weight
        return Tensor.stack(soft_steps, axis=1), hard


class NetGANCritic(Module):
    """LSTM critic scoring (soft) one-hot walk sequences."""

    def __init__(self, num_nodes: int, hidden_dim: int, node_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_proj = Linear(num_nodes, node_dim, rng)
        self.cell = LSTMCell(node_dim, hidden_dim, rng)
        self.score = Linear(hidden_dim, 1, rng)

    def forward(self, one_hot_walks: Tensor) -> Tensor:
        batch, length, _ = one_hot_walks.shape
        state = self.cell.zero_state(batch)
        for t in range(length):
            x = self.input_proj(one_hot_walks[:, t, :])
            state = self.cell(x, state)
        return self.score(state[0]).reshape(batch)

    def clip_weights(self, bound: float) -> None:
        for p in self.parameters():
            np.clip(p.data, -bound, bound, out=p.data)


class _NetGANTask:
    """Trainer task: one epoch = ``critic_steps`` critic updates + one
    generator update (the WGAN iteration); the record is the last
    critic loss, matching the legacy ``critic_history`` entries."""

    def __init__(self, owner: "NetGAN", graph: Graph):
        self.owner = owner
        self.graph = graph
        self.critic_params = list(owner.critic.parameters())
        self.generator_params = list(owner.generator.parameters())

    def modules(self):
        return {"generator": self.owner.generator,
                "critic": self.owner.critic}

    def optimizers(self):
        return {"generator": self.owner._g_opt,
                "critic": self.owner._c_opt}

    def _critic_loss(self, rng) -> Tensor:
        """Wasserstein critic objective ``E[fake] - E[real]``."""
        owner = self.owner
        real = owner._real_batch(self.graph, rng)
        z = rng.standard_normal((owner.batch_size, owner.latent_dim))
        with no_grad():
            fake_soft, _ = owner.generator.rollout(z, owner.walk_length, rng)
        return (owner.critic(Tensor(fake_soft.numpy())).mean()
                - owner.critic(real).mean())

    def _generator_loss(self, rng) -> Tensor:
        """Maximise the critic's score of fresh fakes."""
        owner = self.owner
        z = rng.standard_normal((owner.batch_size, owner.latent_dim))
        fake_soft, _ = owner.generator.rollout(z, owner.walk_length, rng)
        return -owner.critic(fake_soft).mean()

    def epoch(self, state, rng) -> float:
        owner = self.owner
        for _ in range(owner.critic_steps):
            loss_c = train_step(owner._c_opt, self.critic_params,
                                lambda: self._critic_loss(rng),
                                clip_norm=5.0)
            owner.critic.clip_weights(owner.clip)
        train_step(owner._g_opt, self.generator_params,
                   lambda: self._generator_loss(rng), clip_norm=5.0)
        return loss_c


class NetGAN(GraphGenerativeModel):
    """WGAN over walks; ``iterations`` controls Figure-1-style training."""

    name = "NetGAN"

    def __init__(self, walk_length: int = 10, iterations: int = 60,
                 batch_size: int = 32, latent_dim: int = 16,
                 hidden_dim: int = 32, node_dim: int = 16,
                 critic_steps: int = 2, lr: float = 1e-3,
                 clip: float = 0.05, generation_walk_factor: int = 20):
        super().__init__()
        if critic_steps < 1:
            raise ValueError("critic_steps must be >= 1 (the WGAN "
                             "iteration needs at least one critic update)")
        self.walk_length = walk_length
        self.iterations = iterations
        self.batch_size = batch_size
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.node_dim = node_dim
        self.critic_steps = critic_steps
        self.lr = lr
        self.clip = clip
        self.generation_walk_factor = generation_walk_factor
        self.generator: NetGANGenerator | None = None
        self.critic: NetGANCritic | None = None
        self.critic_history: list[float] = []

    # ------------------------------------------------------------------
    def _real_batch(self, graph: Graph, rng: np.random.Generator) -> Tensor:
        walks = sample_walks(graph, self.batch_size, self.walk_length, rng)
        one_hot = np.zeros((self.batch_size, self.walk_length, graph.num_nodes))
        rows = np.arange(self.batch_size)[:, None]
        cols = np.arange(self.walk_length)[None, :]
        one_hot[rows, cols, walks] = 1.0
        return Tensor(one_hot)

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "NetGAN":
        self._fitted_graph = graph
        n = graph.num_nodes
        self.generator = NetGANGenerator(n, self.latent_dim, self.hidden_dim,
                                         self.node_dim, rng)
        self.critic = NetGANCritic(n, self.hidden_dim, self.node_dim, rng)
        self._g_opt = Adam(self.generator.parameters(), lr=self.lr)
        self._c_opt = Adam(self.critic.parameters(), lr=self.lr)
        self.critic_history = []
        # Only the front-door fit participates in checkpoint/resume;
        # continue_training extends live parameters past the spec'd
        # schedule, which a checkpoint must not capture as "the fit".
        self._train(graph, rng, self.iterations,
                    control=self.train_control)
        return self

    def continue_training(self, rng: np.random.Generator,
                          iterations: int) -> "NetGAN":
        """Resume adversarial training from the current parameters.

        Used by the Figure 1 study, which inspects the generated graph at
        increasing training checkpoints.
        """
        graph = self._require_fitted()
        self._train(graph, rng, iterations)
        return self

    def _train(self, graph: Graph, rng: np.random.Generator,
               iterations: int, control=None) -> None:
        state = Trainer(_NetGANTask(self, graph), epochs=iterations,
                        control=control).fit(rng)
        self.critic_history.extend(state.history)

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {"walk_length": self.walk_length,
                "iterations": self.iterations,
                "batch_size": self.batch_size,
                "latent_dim": self.latent_dim,
                "hidden_dim": self.hidden_dim,
                "node_dim": self.node_dim,
                "critic_steps": self.critic_steps,
                "lr": self.lr, "clip": self.clip,
                "generation_walk_factor": self.generation_walk_factor}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {**prefix_state("generator", self.generator.state_dict()),
                **prefix_state("critic", self.critic.state_dict())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        n = self._require_fitted().num_nodes
        init_rng = np.random.default_rng(0)
        self.generator = NetGANGenerator(n, self.latent_dim, self.hidden_dim,
                                         self.node_dim, init_rng)
        self.critic = NetGANCritic(n, self.hidden_dim, self.node_dim,
                                   init_rng)
        self.generator.load_state_dict(extract_state(state, "generator"))
        self.critic.load_state_dict(extract_state(state, "critic"))
        # Fresh optimizers so continue_training works after a restore
        # (Adam moments are not preserved across serialization).
        self._g_opt = Adam(self.generator.parameters(), lr=self.lr)
        self._c_opt = Adam(self.critic.parameters(), lr=self.lr)

    # ------------------------------------------------------------------
    def generate_walks(self, num_walks: int,
                       rng: np.random.Generator) -> np.ndarray:
        if self.generator is None:
            raise RuntimeError("NetGAN must be fitted before generating")
        chunks = []
        remaining = num_walks
        while remaining > 0:
            take = min(remaining, 256)
            z = rng.standard_normal((take, self.latent_dim))
            with no_grad():
                _, hard = self.generator.rollout(z, self.walk_length, rng)
            chunks.append(hard)
            remaining -= take
        return np.concatenate(chunks, axis=0)

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        num_walks = max(64, self.generation_walk_factor
                        * fitted.num_edges // self.walk_length)
        walks = self.generate_walks(num_walks, rng)
        scores = walks_to_edge_counts(walks, fitted.num_nodes)
        return assemble_from_scores(scores, fitted.num_edges)

    def propose_edges(self, num_edges: int,
                      rng: np.random.Generator) -> np.ndarray:
        fitted = self._require_fitted()
        num_walks = max(64, self.generation_walk_factor
                        * fitted.num_edges // self.walk_length)
        walks = self.generate_walks(num_walks, rng)
        counts = walks_to_edge_counts(walks, fitted.num_nodes)
        return propose_edges_from_walk_counts(fitted, counts, num_edges)
