"""Common interface and walk→graph assembly shared by all generators.

Every model in the benchmark suite (ER, BA, GAE, NetGAN, TagGen, FairGen
and its ablations) implements :class:`GraphGenerativeModel` so the
evaluation harness can treat them uniformly: ``fit(graph)`` then
``generate(rng)``.

Walk-based models (NetGAN, TagGen, FairGen) share the score-matrix
assembly of Section II-D: synthetic walks are tallied into a matrix ``B``
of edge counts, and ``B`` is thresholded to an adjacency with the same
number of edges as the input, subject to a minimum-degree constraint.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from ..graph import Graph

__all__ = ["GraphGenerativeModel", "assemble_from_scores",
           "propose_edges_from_walk_counts"]


def prefix_state(prefix: str,
                 state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Namespace a sub-module's ``state_dict`` under ``prefix/``."""
    return {f"{prefix}/{name}": value for name, value in state.items()}


def extract_state(state: dict[str, np.ndarray],
                  prefix: str) -> dict[str, np.ndarray]:
    """Inverse of :func:`prefix_state`: the entries under ``prefix/``."""
    lead = f"{prefix}/"
    return {name[len(lead):]: value
            for name, value in state.items() if name.startswith(lead)}


def propose_edges_from_walk_counts(fitted: Graph, counts: sp.spmatrix,
                                   num_edges: int,
                                   weight_fn=None) -> np.ndarray:
    """Rank novel edges by walk-transition support (optionally reweighted).

    ``counts`` is the symmetric score matrix from
    :func:`repro.graph.walks_to_edge_counts`; edges already present in
    the fitted graph are excluded.  ``weight_fn(rows, cols)``, when
    given, returns a multiplicative factor per candidate edge — FairGen
    passes its discriminator's same-class probability here so proposals
    respect the label structure.
    """
    novel = counts - counts.multiply(fitted.adjacency)
    novel = sp.triu(novel, k=1).tocoo()
    if novel.nnz == 0:
        return np.empty((0, 2), dtype=np.int64)
    scores = novel.data.astype(np.float64)
    if weight_fn is not None:
        scores = scores * np.asarray(weight_fn(novel.row, novel.col),
                                     dtype=np.float64)
    order = np.argsort(-scores, kind="stable")[:num_edges]
    return np.column_stack([novel.row[order],
                            novel.col[order]]).astype(np.int64)


class GraphGenerativeModel(abc.ABC):
    """Abstract graph generative model."""

    #: human-readable name used in benchmark tables
    name: str = "base"

    #: optional :class:`repro.train.TrainControl` installed by the
    #: experiment Runner before ``fit``.  Trainer-backed models pass it
    #: through to their :class:`repro.train.Trainer`, which gives the
    #: fit checkpoint/resume semantics (``<key>.ckpt.npz`` in the
    #: artifact cache); models without a training loop ignore it.
    train_control = None

    #: whether the class offers ``fit_stacked`` — a vmap-style path that
    #: trains K same-config instances as one tensor program with a
    #: leading seed axis (see :mod:`repro.nn.vmap`), leaving every
    #: instance byte-identical to a separate per-seed ``fit``.  Only
    #: models whose fit consumes no per-seed supervision streams and
    #: whose epoch body is expressible over batched parameters opt in.
    supports_stacked_fit = False

    def __init__(self) -> None:
        self._fitted_graph: Graph | None = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted_graph is not None

    def _require_fitted(self) -> Graph:
        if self._fitted_graph is None:
            raise RuntimeError(f"{type(self).__name__} must be fitted before "
                               "generating")
        return self._fitted_graph

    @abc.abstractmethod
    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "GraphGenerativeModel":
        """Learn the model from an observed graph.  Returns ``self``.

        ``supervision`` is an optional
        :class:`repro.experiments.Supervision` carrying labels, the
        few-shot labeled set and the protected mask.  The contract is
        uniform across the model zoo: label-aware models (FairGen and
        its ablations) consume it, unsupervised baselines accept and
        ignore it — so every harness can call
        ``model.fit(graph, rng, supervision=...)`` without branching on
        the model type.
        """

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator) -> Graph:
        """Produce a synthetic graph comparable to the fitted one."""

    # -- persistence contract (used by core.serialization.save_model) ----
    #
    # Every concrete model implements three hooks so a fitted instance
    # can round-trip through a flat ``.npz`` archive:
    #
    # * ``config_dict()``   — constructor arguments rebuilding the model
    #   unfitted (must be JSON-serialisable);
    # * ``state_dict()``    — the fitted state as flat named float/int
    #   arrays (neural parameters namespaced via :func:`prefix_state`);
    # * ``load_state_dict`` — restores that state into a freshly
    #   constructed instance whose ``_fitted_graph`` is already set (the
    #   loader needs the graph for module shapes).
    #
    # Restored models generate and propose edges; optimizer state is not
    # preserved, so loading is for inference, not for resuming training.

    def config_dict(self) -> dict:
        """Constructor keyword arguments that rebuild this model unfitted."""
        raise NotImplementedError(f"{type(self).__name__} does not support "
                                  "serialization")

    @classmethod
    def from_config_dict(cls, params: dict) -> "GraphGenerativeModel":
        """Rebuild an unfitted model from :meth:`config_dict` output."""
        return cls(**params)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Fitted state as a flat mapping of named arrays."""
        raise NotImplementedError(f"{type(self).__name__} does not support "
                                  "serialization")

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output; requires ``_fitted_graph``."""
        raise NotImplementedError(f"{type(self).__name__} does not support "
                                  "serialization")

    def propose_edges(self, num_edges: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Propose up to ``num_edges`` plausible edges absent from the
        fitted graph, best first.

        Used by the data-augmentation study (Section III-D): the proposed
        edges are inserted into the original graph before feature
        learning.  The default implementation generates a graph and
        returns its novel edges; walk-based models override this with
        count-ranked proposals.
        """
        fitted = self._require_fitted()
        generated = self.generate(rng)
        novel = generated.adjacency - generated.adjacency.multiply(
            fitted.adjacency)
        novel = sp.triu(novel, k=1).tocoo()
        order = np.argsort(-novel.data, kind="stable")[:num_edges]
        return np.column_stack([novel.row[order],
                                novel.col[order]]).astype(np.int64)


def assemble_from_scores(scores: sp.spmatrix, num_edges: int,
                         min_degree: int = 1,
                         protected: np.ndarray | None = None,
                         protected_volume: int | None = None) -> Graph:
    """Threshold a symmetric score matrix into an adjacency (Section II-D).

    Selection order implements the paper's assembling criteria:

    1. every node with any observed score receives its single best edge
       (criterion 2: "each node should have at least one connected edge");
    2. if ``protected`` and ``protected_volume`` are given, top-scoring
       edges incident to protected nodes are added until the protected
       group's volume matches the original (criterion 1);
    3. remaining capacity is filled with the globally best edges until the
       output has ``num_edges`` edges, the same count as the input graph.

    Nodes with no score mass at all stay isolated — with enough generated
    walks this does not happen, which is why the paper generates "a much
    larger number of random walks than the sampled ones".
    """
    scores = sp.coo_matrix(scores)
    n = scores.shape[0]
    upper = scores.row < scores.col
    rows, cols, vals = scores.row[upper], scores.col[upper], scores.data[upper]
    if rows.size == 0:
        return Graph(sp.csr_matrix((n, n)))

    order = np.argsort(-vals, kind="stable")
    rows, cols, vals = rows[order], cols[order], vals[order]

    chosen = np.zeros(rows.size, dtype=bool)
    degree = np.zeros(n, dtype=np.int64)
    selected_count = 0

    def add(idx: int) -> None:
        nonlocal selected_count
        chosen[idx] = True
        selected_count += 1
        degree[rows[idx]] += 1
        degree[cols[idx]] += 1

    # 1. best edge per node (min-degree guarantee)
    if min_degree > 0:
        best_edge = np.full(n, -1, dtype=np.int64)
        for idx in range(rows.size):
            for endpoint in (rows[idx], cols[idx]):
                if best_edge[endpoint] == -1:
                    best_edge[endpoint] = idx
        for idx in np.unique(best_edge[best_edge >= 0]):
            if not chosen[idx]:
                add(int(idx))

    # 2. protected-volume criterion
    if protected is not None and protected_volume is not None:
        protected = np.asarray(protected, dtype=bool)
        incident = protected[rows] | protected[cols]
        protected_degree = int(degree[protected].sum())
        for idx in np.flatnonzero(incident):
            if selected_count >= num_edges or protected_degree >= protected_volume:
                break
            if not chosen[idx]:
                add(int(idx))
                protected_degree += int(protected[rows[idx]]) + int(protected[cols[idx]])

    # 3. fill to num_edges with globally best remaining edges.  The
    # volume criterion is bidirectional ("similar volume"): once the
    # protected group's generated volume reaches its original level,
    # further protected-incident edges are deferred — label-informed
    # training over-samples protected context, so their raw counts would
    # otherwise over-densify the group.  A second pass re-admits them
    # only if the edge budget cannot be met otherwise.
    cap_protected = protected is not None and protected_volume is not None
    if cap_protected:
        protected_degree = int(degree[protected].sum())
    deferred: list[int] = []
    for idx in range(rows.size):
        if selected_count >= num_edges:
            break
        if chosen[idx]:
            continue
        if cap_protected:
            incident_count = int(protected[rows[idx]]) + int(protected[cols[idx]])
            if incident_count and protected_degree + incident_count > protected_volume:
                deferred.append(idx)
                continue
            protected_degree += incident_count
        add(int(idx))
    for idx in deferred:
        if selected_count >= num_edges:
            break
        add(int(idx))

    sel = np.flatnonzero(chosen)
    r, c = rows[sel], cols[sel]
    data = np.ones(r.size)
    adj = sp.csr_matrix((np.concatenate([data, data]),
                         (np.concatenate([r, c]), np.concatenate([c, r]))),
                        shape=(n, n))
    return Graph(adj)
