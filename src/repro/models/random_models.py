"""Classic random-graph baselines: Erdos-Renyi and Barabasi-Albert fits.

Section III-A compares FairGen against "two random graph models, i.e.
Erdos-Renyi (ER) model and Barabasi-Albert (BA) model".  These have no
training phase: ``fit`` only records the statistics needed to match the
input size (Table IV reports only their generation time).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, barabasi_albert, erdos_renyi
from .base import GraphGenerativeModel

__all__ = ["ERModel", "BAModel"]


class ERModel(GraphGenerativeModel):
    """G(n, p) with p matched to the observed density."""

    name = "ER"

    def __init__(self) -> None:
        super().__init__()
        self._p: float | None = None

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "ERModel":
        self._fitted_graph = graph
        self._p = graph.density()
        return self

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        return erdos_renyi(fitted.num_nodes, self._p, rng)

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"p": np.array([self._p], dtype=np.float64)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._p = float(state["p"][0])


class BAModel(GraphGenerativeModel):
    """Preferential attachment with the attachment count matched to m/n."""

    name = "BA"

    def __init__(self) -> None:
        super().__init__()
        self._attach: int | None = None

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "BAModel":
        if graph.num_nodes < 2:
            raise ValueError("graph too small for a BA fit")
        self._fitted_graph = graph
        self._attach = max(1, round(graph.num_edges / graph.num_nodes))
        return self

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        attach = min(self._attach, fitted.num_nodes - 1)
        return barabasi_albert(fitted.num_nodes, attach, rng)

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"attach": np.array([self._attach], dtype=np.int64)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._attach = int(state["attach"][0])
