"""TagGen baseline (Zhou et al., KDD 2020), adapted to static graphs.

TagGen models graphs with a self-attention network over sampled walks; we
reproduce its essence — maximum-likelihood training of a transformer walk
model on biased random walks, followed by count-based assembly — without
the temporal components (the paper benchmarks it on static graphs, so the
temporal machinery is inert there anyway).  Each epoch's walk corpus comes
from the batched ``sample_walks`` path on the graph's walk engine.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, sample_walks, walks_to_edge_counts
from ..nn import Adam
from ..train import Trainer, minibatches, train_step
from .base import (GraphGenerativeModel, assemble_from_scores, extract_state,
                   prefix_state, propose_edges_from_walk_counts)
from .walk_lm import TransformerWalkModel

__all__ = ["TagGen"]


class _TagGenTask:
    """Trainer task: one epoch = a fresh walk corpus, minibatched MLE."""

    def __init__(self, owner: "TagGen", graph: Graph):
        self.owner = owner
        self.graph = graph
        self.params = list(owner.model.parameters())
        self.optimizer = Adam(owner.model.parameters(), lr=owner.lr)

    def modules(self):
        return {"model": self.owner.model}

    def optimizers(self):
        return {"adam": self.optimizer}

    def epoch(self, state, rng) -> float:
        owner = self.owner
        walks = sample_walks(self.graph, owner.walks_per_epoch,
                             owner.walk_length, rng)
        losses = [train_step(self.optimizer, self.params,
                             lambda batch=walks[sl]: owner.model.nll(batch),
                             clip_norm=5.0)
                  for sl in minibatches(len(walks), owner.batch_size)]
        return float(np.mean(losses))


class TagGen(GraphGenerativeModel):
    """Transformer MLE over node2vec walks."""

    name = "TagGen"

    def __init__(self, walk_length: int = 10, epochs: int = 10,
                 walks_per_epoch: int = 128, batch_size: int = 32,
                 dim: int = 32, num_heads: int = 4, num_layers: int = 2,
                 lr: float = 0.01, generation_walk_factor: int = 20):
        super().__init__()
        self.walk_length = walk_length
        self.epochs = epochs
        self.walks_per_epoch = walks_per_epoch
        self.batch_size = batch_size
        self.dim = dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.lr = lr
        self.generation_walk_factor = generation_walk_factor
        self.model: TransformerWalkModel | None = None
        self.loss_history: list[float] = []

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "TagGen":
        self._fitted_graph = graph
        self.model = TransformerWalkModel(graph.num_nodes, self.dim,
                                          self.num_heads, self.num_layers,
                                          self.walk_length, rng)
        state = Trainer(_TagGenTask(self, graph), epochs=self.epochs,
                        control=self.train_control).fit(rng)
        self.loss_history = list(state.history)
        return self

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {"walk_length": self.walk_length, "epochs": self.epochs,
                "walks_per_epoch": self.walks_per_epoch,
                "batch_size": self.batch_size, "dim": self.dim,
                "num_heads": self.num_heads, "num_layers": self.num_layers,
                "lr": self.lr,
                "generation_walk_factor": self.generation_walk_factor}

    def state_dict(self) -> dict[str, np.ndarray]:
        return prefix_state("model", self.model.state_dict())

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        n = self._require_fitted().num_nodes
        self.model = TransformerWalkModel(n, self.dim, self.num_heads,
                                          self.num_layers, self.walk_length,
                                          np.random.default_rng(0))
        self.model.load_state_dict(extract_state(state, "model"))

    def generate_walks(self, num_walks: int,
                       rng: np.random.Generator) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("TagGen must be fitted before generating")
        return self.model.sample_chunked(num_walks, self.walk_length, rng)

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        num_walks = max(64, self.generation_walk_factor
                        * fitted.num_edges // self.walk_length)
        walks = self.generate_walks(num_walks, rng)
        scores = walks_to_edge_counts(walks, fitted.num_nodes)
        return assemble_from_scores(scores, fitted.num_edges)

    def propose_edges(self, num_edges: int,
                      rng: np.random.Generator) -> np.ndarray:
        fitted = self._require_fitted()
        num_walks = max(64, self.generation_walk_factor
                        * fitted.num_edges // self.walk_length)
        walks = self.generate_walks(num_walks, rng)
        counts = walks_to_edge_counts(walks, fitted.num_nodes)
        return propose_edges_from_walk_counts(fitted, counts, num_edges)
