"""GraphRNN baseline (You et al., ICML 2018) — the paper's reference [20].

GraphRNN generates a graph node by node: a *graph-level* RNN tracks the
state of the partial graph, and for each new node an *edge-level* output
predicts which of the previous ``bandwidth`` nodes it connects to.  We
implement the GraphRNN-S variant (an MLP edge decoder instead of a second
RNN), trained on BFS orderings, which is the configuration most
reproductions use for medium graphs.

The BFS ordering trick bounds how far back a new node may connect,
shrinking the output from O(n) to O(bandwidth) per step.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..nn import Adam, LSTMCell, Linear, MLP, Module, Tensor, no_grad
from ..nn import functional as F
from ..train import Trainer, train_step
from .base import GraphGenerativeModel, extract_state, prefix_state

__all__ = ["GraphRNN", "bfs_adjacency_sequences", "estimate_bandwidth"]


def _bfs_order(graph: Graph, start: int,
               rng: np.random.Generator) -> np.ndarray:
    """BFS node ordering with randomly shuffled neighbor expansion."""
    seen = np.zeros(graph.num_nodes, dtype=bool)
    order: list[int] = []
    queue = [start]
    seen[start] = True
    while queue:
        node = queue.pop(0)
        order.append(node)
        nbrs = graph.neighbors(node).copy()
        rng.shuffle(nbrs)
        for nb in nbrs:
            if not seen[nb]:
                seen[nb] = True
                queue.append(int(nb))
    # Components unreachable from `start`: append in random order so the
    # sequence covers every node.
    rest = np.flatnonzero(~seen)
    rng.shuffle(rest)
    order.extend(int(v) for v in rest)
    return np.array(order, dtype=np.int64)


def estimate_bandwidth(graph: Graph, rng: np.random.Generator,
                       samples: int = 8) -> int:
    """Maximum BFS back-connection distance over sampled orderings."""
    bandwidth = 1
    for _ in range(samples):
        start = int(rng.integers(graph.num_nodes))
        order = _bfs_order(graph, start, rng)
        position = np.empty(graph.num_nodes, dtype=np.int64)
        position[order] = np.arange(graph.num_nodes)
        for u, v in graph.edges():
            bandwidth = max(bandwidth, abs(int(position[u]) - int(position[v])))
    return bandwidth


def bfs_adjacency_sequences(graph: Graph, bandwidth: int,
                            rng: np.random.Generator,
                            count: int = 1) -> np.ndarray:
    """Encode the graph as ``count`` BFS adjacency-vector sequences.

    Each sequence has shape ``(num_nodes, bandwidth)``: row ``i`` flags
    which of nodes ``i-1 .. i-bandwidth`` (in BFS order) node ``i``
    connects to.  Row 0 is all zeros (the first node has no predecessors).
    """
    sequences = np.zeros((count, graph.num_nodes, bandwidth))
    for s in range(count):
        start = int(rng.integers(graph.num_nodes))
        order = _bfs_order(graph, start, rng)
        position = np.empty(graph.num_nodes, dtype=np.int64)
        position[order] = np.arange(graph.num_nodes)
        for u, v in graph.edges():
            pu, pv = int(position[u]), int(position[v])
            lo, hi = min(pu, pv), max(pu, pv)
            back = hi - lo
            if back <= bandwidth:
                sequences[s, hi, back - 1] = 1.0
    return sequences


class _GraphRNNTask:
    """Trainer task: one epoch = fresh BFS sequences, one step each."""

    def __init__(self, owner: "GraphRNN", graph: Graph):
        self.owner = owner
        self.graph = graph
        self.params = (list(owner.cell.parameters())
                       + list(owner.input_proj.parameters())
                       + list(owner.edge_decoder.parameters()))
        self.optimizer = Adam(self.params, lr=owner.lr)

    def modules(self):
        owner = self.owner
        return {"cell": owner.cell, "input_proj": owner.input_proj,
                "edge_decoder": owner.edge_decoder}

    def optimizers(self):
        return {"adam": self.optimizer}

    def epoch(self, state, rng) -> float:
        owner = self.owner
        sequences = bfs_adjacency_sequences(
            self.graph, owner.bandwidth, rng,
            count=owner.sequences_per_epoch)
        losses = [train_step(self.optimizer, self.params,
                             lambda seq=sequence: owner._step_likelihood(seq),
                             clip_norm=5.0)
                  for sequence in sequences]
        return float(np.mean(losses))


class GraphRNN(GraphGenerativeModel):
    """GraphRNN-S: graph-level LSTM + MLP edge decoder over BFS sequences."""

    name = "GraphRNN"

    def __init__(self, hidden_dim: int = 32, epochs: int = 60,
                 sequences_per_epoch: int = 4, lr: float = 0.01,
                 max_bandwidth: int = 64):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.sequences_per_epoch = sequences_per_epoch
        self.lr = lr
        self.max_bandwidth = max_bandwidth
        self.bandwidth: int | None = None
        self.cell: LSTMCell | None = None
        self.edge_decoder: MLP | None = None
        self.input_proj: Linear | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _step_likelihood(self, sequence: np.ndarray) -> Tensor:
        """Mean BCE of the adjacency rows under teacher forcing."""
        length = sequence.shape[0]
        state = self.cell.zero_state(1)
        prev = Tensor(np.zeros((1, self.bandwidth)))
        losses = []
        for i in range(length):
            h, c = self.cell(self.input_proj(prev), state)
            state = (h, c)
            logits = self.edge_decoder(h)
            target = sequence[i][None, :]
            losses.append(F.binary_cross_entropy_with_logits(
                logits, target, reduction="mean"))
            prev = Tensor(target)
        total = losses[0]
        for piece in losses[1:]:
            total = total + piece
        return total * (1.0 / length)

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "GraphRNN":
        self._fitted_graph = graph
        self.bandwidth = min(self.max_bandwidth,
                             estimate_bandwidth(graph, rng))
        self.cell = LSTMCell(self.hidden_dim, self.hidden_dim, rng)
        self.input_proj = Linear(self.bandwidth, self.hidden_dim, rng)
        self.edge_decoder = MLP([self.hidden_dim, self.hidden_dim,
                                 self.bandwidth], rng)
        state = Trainer(_GraphRNNTask(self, graph), epochs=self.epochs,
                        control=self.train_control).fit(rng)
        self.loss_history = list(state.history)
        return self

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {"hidden_dim": self.hidden_dim, "epochs": self.epochs,
                "sequences_per_epoch": self.sequences_per_epoch,
                "lr": self.lr, "max_bandwidth": self.max_bandwidth}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"bandwidth": np.array([self.bandwidth], dtype=np.int64),
                **prefix_state("cell", self.cell.state_dict()),
                **prefix_state("input_proj", self.input_proj.state_dict()),
                **prefix_state("edge_decoder",
                               self.edge_decoder.state_dict())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self.bandwidth = int(state["bandwidth"][0])
        init_rng = np.random.default_rng(0)
        self.cell = LSTMCell(self.hidden_dim, self.hidden_dim, init_rng)
        self.input_proj = Linear(self.bandwidth, self.hidden_dim, init_rng)
        self.edge_decoder = MLP([self.hidden_dim, self.hidden_dim,
                                 self.bandwidth], init_rng)
        self.cell.load_state_dict(extract_state(state, "cell"))
        self.input_proj.load_state_dict(extract_state(state, "input_proj"))
        self.edge_decoder.load_state_dict(
            extract_state(state, "edge_decoder"))

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        if self.cell is None:
            raise RuntimeError("GraphRNN must be fitted before generating")
        n = fitted.num_nodes
        edges: list[tuple[int, int]] = []
        with no_grad():
            state = self.cell.zero_state(1)
            prev = Tensor(np.zeros((1, self.bandwidth)))
            for i in range(n):
                h, c = self.cell(self.input_proj(prev), state)
                state = (h, c)
                probs = self.edge_decoder(h).sigmoid().numpy()[0]
                row = (rng.random(self.bandwidth) < probs).astype(np.float64)
                for back in range(1, self.bandwidth + 1):
                    if row[back - 1] and i - back >= 0:
                        edges.append((i, i - back))
                prev = Tensor(row[None, :])
        return Graph.from_edges(n, edges)
