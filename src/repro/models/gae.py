"""Variational Graph Auto-Encoder baseline (Kipf & Welling, 2016).

A two-layer GCN encoder produces per-node Gaussian posteriors; the decoder
scores edges with the inner product ``sigmoid(z_i . z_j)``.  Trained on the
re-weighted edge reconstruction loss plus the KL prior term, exactly as in
the original VGAE.  Generation thresholds the decoded probability matrix to
the observed edge count.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..nn import Adam, Linear, Module, Tensor, stack_modules
from ..train import StackedRNG, Trainer, train_step
from .base import (GraphGenerativeModel, assemble_from_scores, extract_state,
                   prefix_state)

__all__ = ["GAEModel", "normalized_adjacency"]


def normalized_adjacency(graph: Graph) -> np.ndarray:
    """Symmetric GCN propagation matrix ``D^-1/2 (A + I) D^-1/2`` (dense)."""
    n = graph.num_nodes
    a_tilde = graph.adjacency + sp.identity(n, format="csr")
    deg = np.asarray(a_tilde.sum(axis=1)).ravel()
    d_inv_sqrt = 1.0 / np.sqrt(deg)
    return (sp.diags(d_inv_sqrt) @ a_tilde @ sp.diags(d_inv_sqrt)).toarray()


def _vgae_setup(graph: Graph):
    """Shared fit preprocessing: propagation matrix + loss weighting."""
    n = graph.num_nodes
    a_hat = normalized_adjacency(graph)
    adj_label = graph.adjacency.toarray()
    # VGAE loss weighting: positives up-weighted by the class ratio.
    num_pos = adj_label.sum()
    pos_weight = float((n * n - num_pos) / max(num_pos, 1.0))
    norm = n * n / max(2.0 * (n * n - num_pos), 1.0)
    return a_hat, adj_label, pos_weight, norm


class _GCNEncoder(Module):
    """Two-layer GCN emitting posterior mean and log-variance."""

    def __init__(self, in_dim: int, hidden: int, latent: int,
                 rng: np.random.Generator):
        super().__init__()
        self.lin1 = Linear(in_dim, hidden, rng)
        self.lin_mu = Linear(hidden, latent, rng)
        self.lin_logvar = Linear(hidden, latent, rng)

    def forward(self, a_hat: Tensor, x: Tensor) -> tuple[Tensor, Tensor]:
        h = (a_hat @ self.lin1(x)).relu()
        return a_hat @ self.lin_mu(h), a_hat @ self.lin_logvar(h)


class _GAETask:
    """Trainer task: one epoch = one full-batch VGAE ELBO step."""

    def __init__(self, encoder: _GCNEncoder, a_hat: Tensor, features: Tensor,
                 target: Tensor, weight_mask: Tensor, norm: float, n: int,
                 lr: float):
        self.encoder = encoder
        self.a_hat = a_hat
        self.features = features
        self.target = target
        self.weight_mask = weight_mask
        self.norm = norm
        self.n = n
        self.optimizer = Adam(encoder.parameters(), lr=lr)

    def modules(self):
        return {"encoder": self.encoder}

    def optimizers(self):
        return {"adam": self.optimizer}

    def _loss(self, rng) -> Tensor:
        mu, logvar = self.encoder(self.a_hat, self.features)
        noise = Tensor(rng.standard_normal(mu.shape))
        z = mu + (logvar * 0.5).exp() * noise
        logits = z @ z.T
        # Stable weighted BCE-with-logits, elementwise.
        bce = (logits.relu() - logits * self.target
               + ((-logits.abs()).exp() + 1.0).log()) * self.weight_mask
        recon = bce.mean() * self.norm
        kl = ((logvar.exp() + mu * mu - logvar - 1.0).sum() * (0.5 / self.n))
        return recon + kl * (1.0 / self.n)

    def epoch(self, state, rng) -> float:
        return train_step(self.optimizer, None, lambda: self._loss(rng))


class _StackedGAETask:
    """K seeds' VGAE epochs as one batched ELBO step.

    The tensor program mirrors :class:`_GAETask` op for op with a
    leading seed axis: per-slice arithmetic (batched matmul, axis-wise
    reductions, elementwise Adam) is bit-identical to the unbatched
    ops, so every seed's parameter trajectory matches its sequential
    fit exactly — verified end-to-end by ``tests/test_stacked.py``.
    """

    def __init__(self, stacked, a_hat: Tensor, features: Tensor,
                 target: Tensor, weight_mask: Tensor, norm: float, n: int,
                 lr: float):
        self.stacked = stacked
        self.a_hat = a_hat
        self.features = features
        self.target = target
        self.weight_mask = weight_mask
        self.norm = norm
        self.n = n
        self.optimizer = Adam(stacked.parameters(), lr=lr)

    def modules(self):
        return {"encoder": self.stacked.module}

    def optimizers(self):
        return {"adam": self.optimizer}

    def _per_seed_loss(self, rng: StackedRNG) -> Tensor:
        mu, logvar = self.stacked(self.a_hat, self.features)  # (K, N, L)
        noise = Tensor(rng.standard_normal(mu.shape))
        z = mu + (logvar * 0.5).exp() * noise
        logits = z @ z.swapaxes(-1, -2)                       # (K, N, N)
        bce = (logits.relu() - logits * self.target
               + ((-logits.abs()).exp() + 1.0).log()) * self.weight_mask
        recon = bce.mean(axis=(1, 2)) * self.norm             # (K,)
        kl = ((logvar.exp() + mu * mu - logvar - 1.0).sum(axis=(1, 2))
              * (0.5 / self.n))
        return recon + kl * (1.0 / self.n)

    def epoch(self, state, rng: StackedRNG) -> list[float]:
        # The seed-summed scalar has per-seed gradients: seeds share no
        # parameters, so d(sum_k L_k)/d theta_k = dL_k/d theta_k.
        self.optimizer.zero_grad()
        per_seed = self._per_seed_loss(rng)
        per_seed.sum().backward()
        self.optimizer.step()
        return [float(v) for v in per_seed.data]


class GAEModel(GraphGenerativeModel):
    """VGAE graph generator.

    Parameters mirror the small-scale setting of the paper's benchmark:
    identity features, 32-d hidden layer, 16-d latent space.
    """

    name = "GAE"
    supports_stacked_fit = True

    def __init__(self, hidden: int = 32, latent: int = 16, epochs: int = 80,
                 lr: float = 0.01):
        super().__init__()
        self.hidden = hidden
        self.latent = latent
        self.epochs = epochs
        self.lr = lr
        self._encoder: _GCNEncoder | None = None
        self._z_mean: np.ndarray | None = None
        self.loss_history: list[float] = []

    def fit(self, graph: Graph, rng: np.random.Generator,
            supervision=None) -> "GAEModel":
        self._fitted_graph = graph
        n = graph.num_nodes
        a_hat_np, adj_label, pos_weight, norm = _vgae_setup(graph)
        a_hat = Tensor(a_hat_np)
        features = Tensor(np.eye(n))

        encoder = _GCNEncoder(n, self.hidden, self.latent, rng)
        task = _GAETask(encoder, a_hat, features,
                        target=Tensor(adj_label),
                        weight_mask=Tensor(np.where(adj_label > 0,
                                                    pos_weight, 1.0)),
                        norm=norm, n=n, lr=self.lr)
        state = Trainer(task, epochs=self.epochs,
                        control=self.train_control).fit(rng)
        self.loss_history = list(state.history)

        # Posterior means for generation — pure scoring, no graph.
        mu, _ = encoder.eval_forward(a_hat, features)
        self._encoder = encoder
        self._z_mean = mu.numpy().copy()
        return self

    @staticmethod
    def fit_stacked(models: list["GAEModel"], graph: Graph,
                    rngs: list[np.random.Generator],
                    control=None) -> list["GAEModel"]:
        """Fit K same-config models as ONE stacked tensor program.

        ``models[k]`` ends up byte-identical to ``models[k].fit(graph,
        rngs[k])`` — stacked parameters, loss histories and post-fit RNG
        states all match the sequential path exactly — while the K fits
        share every epoch's batched matmuls.  ``control`` is an optional
        cell-level :class:`~repro.train.TrainControl` checkpointing the
        whole stack through the unchanged Trainer machinery.
        """
        models, rngs = list(models), list(rngs)
        if not models or len(models) != len(rngs):
            raise ValueError("need one RNG per model (and at least one)")
        config = models[0].config_dict()
        for model in models[1:]:
            if model.config_dict() != config:
                raise ValueError("stacked fits require identical configs; "
                                 "split differing configs into their own "
                                 f"stacks ({model.config_dict()} != {config})")

        n = graph.num_nodes
        a_hat_np, adj_label, pos_weight, norm = _vgae_setup(graph)
        a_hat = Tensor(a_hat_np)
        features = Tensor(np.eye(n))

        # Per-seed encoder init consumes each generator exactly as the
        # sequential fit would, keeping post-fit draw streams aligned.
        head = models[0]
        encoders = [_GCNEncoder(n, head.hidden, head.latent, rng)
                    for rng in rngs]
        stacked = stack_modules(encoders)
        task = _StackedGAETask(stacked, a_hat, features,
                               target=Tensor(adj_label),
                               weight_mask=Tensor(np.where(adj_label > 0,
                                                           pos_weight, 1.0)),
                               norm=norm, n=n, lr=head.lr)
        state = Trainer(task, epochs=head.epochs,
                        control=control).fit(StackedRNG(rngs))

        for index, model in enumerate(models):
            model._fitted_graph = graph
            model.loss_history = [float(record[index])
                                  for record in state.history]
            encoder = _GCNEncoder(n, model.hidden, model.latent,
                                  np.random.default_rng(0))
            encoder.load_state_dict(stacked.state_dict_for(index))
            mu, _ = encoder.eval_forward(a_hat, features)
            model._encoder = encoder
            model._z_mean = mu.numpy().copy()
        return models

    def generate(self, rng: np.random.Generator) -> Graph:
        fitted = self._require_fitted()
        z = self._z_mean
        logits = z @ z.T
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        np.fill_diagonal(probs, 0.0)
        # Bernoulli-perturb so repeated calls give distinct graphs, then
        # keep the top-m entries.
        noisy = probs * (0.5 + rng.random(probs.shape))
        noisy = np.triu(noisy + noisy.T, k=1)
        scores = sp.coo_matrix(np.triu(noisy, k=1))
        scores = scores + scores.T
        return assemble_from_scores(scores, fitted.num_edges, min_degree=0)

    # -- persistence ----------------------------------------------------
    def config_dict(self) -> dict:
        return {"hidden": self.hidden, "latent": self.latent,
                "epochs": self.epochs, "lr": self.lr}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"z_mean": self._z_mean,
                **prefix_state("encoder", self._encoder.state_dict())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        n = self._require_fitted().num_nodes
        self._encoder = _GCNEncoder(n, self.hidden, self.latent,
                                    np.random.default_rng(0))
        self._encoder.load_state_dict(extract_state(state, "encoder"))
        self._z_mean = np.asarray(state["z_mean"], dtype=np.float64).copy()
