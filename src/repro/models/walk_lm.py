"""Autoregressive transformer language model over random walks.

FairGen's generator ``g_theta`` is "the Transformer-based generator"
(Eq. 4) modelling node-id sequences; our TagGen baseline reuses the same
architecture (TagGen is likewise a self-attention model over walks).  The
model is a standard causal LM: a start token, learned node embeddings plus
sinusoidal positions, ``num_layers`` pre-norm transformer blocks, and a
softmax over the node vocabulary.
"""

from __future__ import annotations

import numpy as np

from ..nn import (Embedding, LayerNorm, Linear, Module, Tensor, WalkDecoder,
                  causal_mask, no_grad, sinusoidal_positions)
from ..nn.attention import TransformerBlock
from ..nn import functional as F

__all__ = ["TransformerWalkModel"]


class TransformerWalkModel(Module):
    """Causal transformer over walks of node ids ``0 .. num_nodes-1``.

    The token ``num_nodes`` is a beginning-of-walk marker, so the model
    also learns the start-node distribution.
    """

    def __init__(self, num_nodes: int, dim: int, num_heads: int,
                 num_layers: int, max_length: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.num_nodes = num_nodes
        self.max_length = max_length
        self.start_token = num_nodes
        self.embed = Embedding(num_nodes + 1, dim, rng)
        self.blocks = [TransformerBlock(dim, num_heads, rng, dropout=dropout)
                       for _ in range(num_layers)]
        self.final_norm = LayerNorm(dim)
        self.head = Linear(dim, num_nodes, rng)
        self._positions = sinusoidal_positions(max_length + 1, dim)

    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray) -> Tensor:
        """Logits of shape ``(B, T, num_nodes)`` for input token ids."""
        batch, length = tokens.shape
        if length > self.max_length + 1:
            raise ValueError("sequence longer than the configured maximum")
        h = self.embed(tokens) + Tensor(self._positions[:length])
        mask = causal_mask(length)
        for block in self.blocks:
            h = block(h, mask)
        return self.head(self.final_norm(h))

    def _shift(self, walks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Prepend the start token: inputs predict each walk position."""
        batch = walks.shape[0]
        start = np.full((batch, 1), self.start_token, dtype=np.int64)
        inputs = np.concatenate([start, walks[:, :-1]], axis=1)
        return inputs, walks

    def log_likelihood(self, walks: np.ndarray,
                       lengths: np.ndarray | None = None) -> Tensor:
        """Per-walk log-likelihood ``sum_t log g(w_t | w_<t)`` — Eq. 1.

        ``lengths`` supports right-padded batches: positions at or past
        a walk's length are excluded from its sum (the causal mask
        already keeps them from influencing earlier positions).  Padded
        slots must hold a valid node id — their value never matters.
        """
        walks = np.asarray(walks, dtype=np.int64)
        inputs, targets = self._shift(walks)
        log_probs = self.forward(inputs).log_softmax(axis=-1)
        mask = F.one_hot(targets, self.num_nodes)
        if lengths is not None:
            valid = (np.arange(walks.shape[1])[None, :]
                     < np.asarray(lengths, dtype=np.int64)[:, None])
            mask = mask * valid[:, :, None]
        return (log_probs * Tensor(mask)).sum(axis=-1).sum(axis=-1)

    def log_likelihood_pair(self, first: np.ndarray,
                            second: np.ndarray) -> tuple[Tensor, Tensor]:
        """Log-likelihoods of two walk batches in one forward pass.

        FairGen's generator update scores a positive and a negative
        batch at every step; fusing them halves the transformer
        forward/backward count on that path.  The shorter batch is
        right-padded (with node 0) and masked via ``lengths``, so each
        returned tensor matches its own :meth:`log_likelihood` call.
        """
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        width = max(first.shape[1], second.shape[1])

        def pad(walks: np.ndarray) -> np.ndarray:
            if walks.shape[1] == width:
                return walks
            out = np.zeros((walks.shape[0], width), dtype=np.int64)
            out[:, :walks.shape[1]] = walks
            return out

        lengths = None
        if first.shape[1] != second.shape[1]:
            lengths = np.concatenate(
                [np.full(first.shape[0], first.shape[1], dtype=np.int64),
                 np.full(second.shape[0], second.shape[1], dtype=np.int64)])
        ll = self.log_likelihood(np.concatenate([pad(first), pad(second)]),
                                 lengths=lengths)
        return ll[:first.shape[0]], ll[first.shape[0]:]

    def nll(self, walks: np.ndarray) -> Tensor:
        """Mean negative log-likelihood over a batch of walks."""
        return -self.log_likelihood(walks).mean()

    # ------------------------------------------------------------------
    def _sampling_prompt(self, num_walks: int, length: int,
                         temperature: float,
                         starts: np.ndarray | None) -> np.ndarray:
        """Validate sampling arguments and build the prompt tokens."""
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if length > self.max_length:
            raise ValueError("length exceeds the configured maximum")
        tokens = np.full((num_walks, 1), self.start_token, dtype=np.int64)
        if starts is not None:
            starts = np.asarray(starts, dtype=np.int64).reshape(num_walks, 1)
            tokens = np.concatenate([tokens, starts], axis=1)
        return tokens

    @staticmethod
    def _sample_step(logits: np.ndarray, temperature: float, num_nodes: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw one token per walk from ``(B, vocab)`` logits.

        Consumes exactly one ``rng.random((B, 1))`` draw — the RNG
        contract shared by the KV-cached path and the full-recompute
        reference, so seeded outputs are interchangeable.
        """
        logits = logits / temperature
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        cumulative = probs.cumsum(axis=1)
        u = rng.random((logits.shape[0], 1))
        next_ids = (cumulative < u).sum(axis=1)
        return np.minimum(next_ids, num_nodes - 1)

    def sample(self, num_walks: int, length: int,
               rng: np.random.Generator, temperature: float = 1.0,
               starts: np.ndarray | None = None) -> np.ndarray:
        """Autoregressively sample synthetic walks (no gradients).

        ``starts`` optionally pins the first node of each walk, which the
        FairGen assembler uses to give protected nodes walk coverage.

        Decoding is incremental: one :meth:`WalkDecoder.prefill` pass
        over the prompt, then one single-token :meth:`WalkDecoder.step`
        per sampled position against the per-layer KV caches — O(T)
        attention per step instead of the O(T^2) full-prefix recompute of
        :meth:`sample_reference`, and no autograd bookkeeping at all.
        Each prefill/step is a single whole-step
        :meth:`~repro.nn.backend.Backend.decode_step` call into the
        active backend, running against per-session scratch buffers on
        fused backends.  RNG consumption is identical to the reference,
        so seeded outputs match it.
        """
        tokens = self._sampling_prompt(num_walks, length, temperature, starts)
        if tokens.shape[1] >= length + 1:
            return tokens[:, 1:]
        decoder = WalkDecoder(self)
        logits = decoder.prefill(tokens)
        while True:
            next_ids = self._sample_step(logits, temperature,
                                         self.num_nodes, rng)
            tokens = np.concatenate([tokens, next_ids[:, None]], axis=1)
            if tokens.shape[1] >= length + 1:
                return tokens[:, 1:]
            logits = decoder.step(next_ids)

    def sample_reference(self, num_walks: int, length: int,
                         rng: np.random.Generator, temperature: float = 1.0,
                         starts: np.ndarray | None = None) -> np.ndarray:
        """Slow sampling path recomputing the full prefix every step.

        Kept as the parity oracle for the KV-cached :meth:`sample` (and
        as the baseline of the decode smoke benchmark): for the same RNG
        state both paths must produce identical walks.
        """
        tokens = self._sampling_prompt(num_walks, length, temperature, starts)
        with no_grad():
            while tokens.shape[1] < length + 1:
                logits = self.forward(tokens).numpy()[:, -1, :]
                next_ids = self._sample_step(logits, temperature,
                                             self.num_nodes, rng)
                tokens = np.concatenate([tokens, next_ids[:, None]], axis=1)
        return tokens[:, 1:]

    def sample_chunked(self, num_walks: int, length: int,
                       rng: np.random.Generator, temperature: float = 1.0,
                       chunk: int = 256,
                       starts_fn=None) -> np.ndarray:
        """Sample ``num_walks`` walks in KV-cached chunks.

        The single generation front door for TagGen and FairGen: chunking
        bounds the live KV-cache footprint at ``chunk * layers * T * dim``
        floats, and ``starts_fn(take, rng)`` (when given) pins the start
        node of each chunk's walks — FairGen's protected-coverage hook.
        Each chunk decodes through :meth:`sample`, i.e. one fused
        whole-step backend call per token.
        """
        chunks = []
        remaining = num_walks
        while remaining > 0:
            take = min(remaining, chunk)
            starts = starts_fn(take, rng) if starts_fn is not None else None
            chunks.append(self.sample(take, length, rng,
                                      temperature=temperature, starts=starts))
            remaining -= take
        return np.concatenate(chunks, axis=0)
