"""Exact t-SNE (van der Maaten & Hinton, 2008).

The paper's Figures 1 and 9 embed node2vec representations into 2-D with
t-SNE to show, qualitatively, whether the protected group stays separable
in generated graphs.  sklearn is unavailable offline, so we implement the
exact O(n^2) algorithm: Gaussian input affinities calibrated per-point to a
target perplexity via binary search, Student-t output affinities, KL
gradient descent with momentum and early exaggeration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne", "pairwise_sq_distances"]


def pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix of the rows of ``x``."""
    sq = (x ** 2).sum(axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d, 0.0, out=d)
    np.fill_diagonal(d, 0.0)
    return d


def _calibrated_affinities(dist_sq: np.ndarray, perplexity: float,
                           tol: float = 1e-5, max_iter: int = 64) -> np.ndarray:
    """Per-row Gaussian kernels with entropy matched to log(perplexity)."""
    n = dist_sq.shape[0]
    target = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        row = dist_sq[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            kernel = np.exp(-row * beta)
            total = kernel.sum()
            if total <= 0:
                beta /= 2.0
                continue
            prob = kernel / total
            nz = prob > 0
            entropy = float(-(prob[nz] * np.log(prob[nz])).sum())
            diff = entropy - target
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> narrow the kernel
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        p[i] = prob
    return p


def tsne(x: np.ndarray, dim: int = 2, perplexity: float = 30.0,
         iterations: int = 300, lr: float = 100.0,
         rng: np.random.Generator | None = None,
         early_exaggeration: float = 4.0) -> np.ndarray:
    """Embed rows of ``x`` into ``dim`` dimensions.

    Returns an array of shape ``(len(x), dim)``.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    if rng is None:
        rng = np.random.default_rng(0)

    cond = _calibrated_affinities(pairwise_sq_distances(x), perplexity)
    p = (cond + cond.T) / (2.0 * n)
    np.maximum(p, 1e-12, out=p)

    y = rng.normal(0.0, 1e-4, (n, dim))
    velocity = np.zeros_like(y)
    exaggeration_until = iterations // 4

    for it in range(iterations):
        pij = p * early_exaggeration if it < exaggeration_until else p
        num = 1.0 / (1.0 + pairwise_sq_distances(y))
        np.fill_diagonal(num, 0.0)
        q = num / num.sum()
        np.maximum(q, 1e-12, out=q)
        # KL gradient: 4 * sum_j (p_ij - q_ij) (y_i - y_j) / (1 + |y_i-y_j|^2)
        coeff = (pij - q) * num
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        momentum = 0.5 if it < exaggeration_until else 0.8
        velocity = momentum * velocity - lr * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
