"""node2vec embedding pipeline: biased walks + SGNS.

Used by the paper in two places: the data-augmentation case study
(Figure 6) trains a logistic-regression node classifier on node2vec
features, and the Figure 1 / Figure 9 visualisations embed graphs with
node2vec before t-SNE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph, sample_walks
from .word2vec import SkipGramModel

__all__ = ["Node2VecConfig", "node2vec_embedding"]


@dataclass(frozen=True)
class Node2VecConfig:
    """Hyper-parameters of the node2vec pipeline."""

    dim: int = 32
    walks_per_node: int = 6
    walk_length: int = 10
    window: int = 4
    epochs: int = 3
    negatives: int = 5
    lr: float = 0.05
    p: float = 1.0
    q: float = 1.0

    def __post_init__(self) -> None:
        if self.dim < 1 or self.walks_per_node < 1 or self.walk_length < 2:
            raise ValueError("invalid node2vec configuration")


def node2vec_embedding(graph, config: Node2VecConfig,
                       rng: np.random.Generator) -> np.ndarray:
    """Learn node embeddings of shape ``(num_nodes, config.dim)``.

    Every node seeds ``walks_per_node`` walks so even low-degree nodes get
    coverage (this matters for the protected group).  The whole walk corpus
    is drawn in one batched call on the graph's walk engine; ``graph``
    may be an in-memory :class:`~repro.graph.Graph` or an out-of-core
    :class:`~repro.graph.sharded.ShardedGraph` — the pipeline only needs
    ``num_nodes`` and bulk walks, so embedding scales with the sharded
    store's resident-memory bound rather than the full CSR.
    """
    starts = np.repeat(np.arange(graph.num_nodes), config.walks_per_node)
    walks = sample_walks(graph, starts.size, config.walk_length, rng,
                         starts=starts, p=config.p, q=config.q)
    model = SkipGramModel(graph.num_nodes, config.dim, rng)
    model.train(walks, window=config.window, epochs=config.epochs,
                negatives=config.negatives, lr=config.lr)
    return model.vectors.copy()
