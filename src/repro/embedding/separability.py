"""Quantitative group-separability scores for embeddings.

Figures 1 and 9 of the paper make a *visual* argument: in a fair generated
graph the protected group remains a coherent cluster in embedding space,
while disparity shows up as the groups mixing together.  To make that
argument assertable we provide two standard scores:

* silhouette score of the protected/unprotected partition, and
* nearest-centroid group classification accuracy.

Both increase when the protected group stays separable.
"""

from __future__ import annotations

import numpy as np

from .tsne import pairwise_sq_distances

__all__ = ["silhouette_score", "centroid_separability"]


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (exact, O(n^2)).

    ``labels`` may contain any number of groups; each group needs >= 2
    members for its points to be scored (singletons contribute 0, the
    standard convention).
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if len(points) != len(labels):
        raise ValueError("points and labels length mismatch")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least two groups")
    dist = np.sqrt(pairwise_sq_distances(points))
    scores = np.zeros(len(points))
    masks = {g: labels == g for g in unique}
    for i in range(len(points)):
        own = masks[labels[i]]
        own_count = own.sum() - 1
        if own_count == 0:
            continue
        a = dist[i][own].sum() / own_count
        b = min(dist[i][masks[g]].mean() for g in unique if g != labels[i])
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def centroid_separability(points: np.ndarray, protected: np.ndarray) -> float:
    """Accuracy of nearest-centroid classification of the protected flag.

    1.0 means the two groups are linearly well separated around their
    centroids; 0.5 means they are fully mixed.
    """
    points = np.asarray(points, dtype=np.float64)
    protected = np.asarray(protected, dtype=bool)
    if protected.all() or (~protected).all():
        raise ValueError("both groups must be non-empty")
    c_pos = points[protected].mean(axis=0)
    c_neg = points[~protected].mean(axis=0)
    d_pos = ((points - c_pos) ** 2).sum(axis=1)
    d_neg = ((points - c_neg) ** 2).sum(axis=1)
    predicted = d_pos < d_neg
    return float((predicted == protected).mean())
