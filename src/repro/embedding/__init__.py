"""Embedding substrate: SGNS word2vec, node2vec, t-SNE, separability."""

from .word2vec import SkipGramModel, unigram_table, walks_to_pairs
from .node2vec import Node2VecConfig, node2vec_embedding
from .tsne import pairwise_sq_distances, tsne
from .separability import centroid_separability, silhouette_score

__all__ = [
    "SkipGramModel", "walks_to_pairs", "unigram_table",
    "Node2VecConfig", "node2vec_embedding",
    "tsne", "pairwise_sq_distances",
    "silhouette_score", "centroid_separability",
]
