"""Skip-gram with negative sampling (SGNS) over random-walk corpora.

This is the Mikolov-style objective [40], [41] that node2vec [39] trains on
walk sequences.  The gradients of the SGNS loss are available in closed
form, so we implement them directly with vectorised NumPy (far faster than
routing through the autograd engine) while keeping the exact objective:

``L = -log sigma(u_c . v_w) - sum_k log sigma(-u_nk . v_w)``
"""

from __future__ import annotations

import numpy as np

__all__ = ["SkipGramModel", "walks_to_pairs", "unigram_table"]


def walks_to_pairs(walks: np.ndarray, window: int) -> np.ndarray:
    """Expand walks into (center, context) index pairs within ``window``."""
    if window < 1:
        raise ValueError("window must be >= 1")
    num_walks, length = walks.shape
    pairs = []
    for offset in range(1, window + 1):
        if offset >= length:
            break
        left = walks[:, :-offset].ravel()
        right = walks[:, offset:].ravel()
        pairs.append(np.column_stack([left, right]))
        pairs.append(np.column_stack([right, left]))
    if not pairs:
        raise ValueError("walks too short for the requested window")
    return np.concatenate(pairs, axis=0)


def unigram_table(walks: np.ndarray, num_nodes: int,
                  power: float = 0.75) -> np.ndarray:
    """Smoothed unigram distribution used for negative sampling."""
    counts = np.bincount(walks.ravel(), minlength=num_nodes).astype(np.float64)
    counts = np.maximum(counts, 1e-12) ** power
    return counts / counts.sum()


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramModel:
    """SGNS embeddings with input (``vectors``) and output matrices."""

    def __init__(self, num_nodes: int, dim: int, rng: np.random.Generator):
        if num_nodes < 1 or dim < 1:
            raise ValueError("num_nodes and dim must be positive")
        self.num_nodes = num_nodes
        self.dim = dim
        self._rng = rng
        scale = 0.5 / dim
        self.in_vectors = rng.uniform(-scale, scale, (num_nodes, dim))
        self.out_vectors = np.zeros((num_nodes, dim))

    @property
    def vectors(self) -> np.ndarray:
        """The learned node embeddings (input matrix)."""
        return self.in_vectors

    def train(self, walks: np.ndarray, window: int = 5, epochs: int = 3,
              negatives: int = 5, lr: float = 0.05,
              batch_size: int = 2048) -> list[float]:
        """Train on the walk corpus; returns the mean loss per epoch."""
        pairs = walks_to_pairs(walks, window)
        noise = unigram_table(walks, self.num_nodes)
        history = []
        for epoch in range(epochs):
            # Linear learning-rate decay, the standard word2vec schedule;
            # floored at 10% so late epochs still make progress.
            lr_epoch = lr * max(0.1, 1.0 - epoch / max(epochs, 1))
            order = self._rng.permutation(len(pairs))
            losses = []
            for lo in range(0, len(order), batch_size):
                batch = pairs[order[lo: lo + batch_size]]
                losses.append(self._step(batch, negatives, lr_epoch, noise))
            history.append(float(np.mean(losses)))
        return history

    def _step(self, batch: np.ndarray, negatives: int, lr: float,
              noise: np.ndarray) -> float:
        centers, contexts = batch[:, 0], batch[:, 1]
        b = len(batch)
        neg = self._rng.choice(self.num_nodes, size=(b, negatives), p=noise)

        v = self.in_vectors[centers]                       # (b, d)
        u_pos = self.out_vectors[contexts]                 # (b, d)
        u_neg = self.out_vectors[neg]                      # (b, k, d)

        pos_score = _sigmoid((v * u_pos).sum(axis=1))      # (b,)
        neg_score = _sigmoid(-(u_neg * v[:, None, :]).sum(axis=2))  # (b, k)

        loss = float(-(np.log(pos_score + 1e-12).mean()
                       + np.log(neg_score + 1e-12).sum(axis=1).mean()))

        g_pos = (pos_score - 1.0)[:, None]                 # d/d(v.u_pos)
        g_neg = (1.0 - neg_score)[:, :, None]              # d/d(v.u_neg)

        grad_v = g_pos * u_pos + (g_neg * u_neg).sum(axis=1)
        grad_u_pos = g_pos * v
        grad_u_neg = g_neg * v[:, None, :]

        # Rows repeat heavily inside a batch (hub nodes appear in many
        # pairs), so summed per-pair updates diverge while fully averaged
        # ones barely move.  Normalising by sqrt(count) keeps the update
        # variance bounded yet lets frequent rows learn faster.
        self._apply_row_averaged(self.in_vectors, centers, grad_v, lr)
        grad_out = np.concatenate(
            [grad_u_pos, grad_u_neg.reshape(-1, self.dim)])
        rows_out = np.concatenate([contexts, neg.ravel()])
        self._apply_row_averaged(self.out_vectors, rows_out, grad_out, lr)
        return loss

    def _apply_row_averaged(self, matrix: np.ndarray, rows: np.ndarray,
                            grads: np.ndarray, lr: float) -> None:
        accum = np.zeros_like(matrix)
        counts = np.zeros(matrix.shape[0])
        np.add.at(accum, rows, grads)
        np.add.at(counts, rows, 1.0)
        touched = counts > 0
        matrix[touched] -= lr * accum[touched] / np.sqrt(counts[touched])[:, None]
