"""Seeding, timing, few-shot sampling and plain-text table helpers."""

from __future__ import annotations

import time

import numpy as np

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "format_table",
           "few_shot_labels"]


def few_shot_labels(labels: np.ndarray, num_classes: int,
                    rng: np.random.Generator,
                    per_class: int = 3) -> tuple[np.ndarray, np.ndarray]:
    """Sample a few-shot labeled set: ``per_class`` nodes per class.

    Guarantees at least one example per non-empty class (Section II-A
    requires "at least one from each class").  The single shared
    implementation behind ``Dataset.labeled_few_shot`` and
    ``repro.experiments.Supervision``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    nodes, classes = [], []
    for cls in range(num_classes):
        members = np.flatnonzero(labels == cls)
        if members.size == 0:
            raise ValueError(f"class {cls} has no members")
        take = min(per_class, members.size)
        chosen = rng.choice(members, size=take, replace=False)
        nodes.append(chosen)
        classes.append(np.full(take, cls, dtype=np.int64))
    return np.concatenate(nodes), np.concatenate(classes)


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator; the one seeding entry point for scripts."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so streams do not overlap — safer than
    seeding with ``seed + i``.
    """
    if count < 1:
        raise ValueError("count must be positive")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in sequence.spawn(count)]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a left-aligned plain-text table with a header separator."""
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]

    def fmt(row) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])
