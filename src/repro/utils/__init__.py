"""Small shared utilities: seeding, timing, text tables."""

from .helpers import Timer, format_table, seeded_rng, spawn_rngs

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "format_table"]
