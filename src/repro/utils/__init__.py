"""Small shared utilities: seeding, timing, text tables."""

from .helpers import (Timer, few_shot_labels, format_table, seeded_rng,
                      spawn_rngs)

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "format_table",
           "few_shot_labels"]
