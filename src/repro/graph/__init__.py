"""Graph substrate: data structure, walks, diffusion cores, metrics."""

from .graph import Graph
from .components import connected_components, largest_component_nodes
from .random_walk import (node2vec_walk, sample_walks, uniform_random_walk,
                          walks_to_edge_counts)
from .walk_engine import ShardedWalkEngine, WalkEngine
from .sharded import (ShardCSR, ShardedGraph, ingest_edge_file,
                      ingest_edge_stream, ingest_graph)
from .diffusion import (diffusion_core, escape_probability, indicator_vector,
                        lemma21_bound, stay_probability)
from .generators import (barabasi_albert, configuration_model, erdos_renyi,
                         kronecker_graph, planted_protected_graph,
                         ring_of_chords, stochastic_block_model,
                         synthetic_edge_stream, watts_strogatz)
from .spectral import (cheeger_bounds, laplacian, normalized_laplacian,
                       personalized_pagerank, spectral_gap, sweep_cut)
from . import metrics

__all__ = [
    "Graph",
    "connected_components", "largest_component_nodes",
    "uniform_random_walk", "node2vec_walk", "sample_walks",
    "walks_to_edge_counts", "WalkEngine", "ShardedWalkEngine",
    "ShardedGraph", "ShardCSR", "ingest_edge_stream", "ingest_graph",
    "ingest_edge_file",
    "indicator_vector", "escape_probability", "stay_probability",
    "diffusion_core", "lemma21_bound",
    "erdos_renyi", "barabasi_albert", "stochastic_block_model",
    "planted_protected_graph", "watts_strogatz", "configuration_model",
    "kronecker_graph", "synthetic_edge_stream", "ring_of_chords",
    "laplacian", "normalized_laplacian", "spectral_gap", "cheeger_bounds",
    "personalized_pagerank", "sweep_cut",
    "metrics",
]
