"""Diffusion cores and escape probabilities (Definition 1, Lemma 2.1).

Definition 1 of the paper: for a subgraph ``S`` the ``(delta, t)``-diffusion
core is ``C_S = {x in S | 1 - chi_S' M^t chi_x < delta * phi(S)}``, i.e. the
nodes whose ``t``-step lazy random walk escapes ``S`` with probability below
``delta * phi(S)``.  Lemma 2.1 then guarantees that a ``T``-length walk from
a diffusion-core node stays inside ``S`` with probability at least
``1 - T * delta * phi(S)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = [
    "indicator_vector",
    "escape_probability",
    "stay_probability",
    "diffusion_core",
    "lemma21_bound",
]


def indicator_vector(nodes, num_nodes: int) -> np.ndarray:
    """Indicator ``chi_S``: 1 on ``nodes``, 0 elsewhere (Section II-A)."""
    chi = np.zeros(num_nodes)
    chi[np.asarray(nodes, dtype=np.int64)] = 1.0
    return chi


def escape_probability(graph: Graph, nodes, start: int, steps: int) -> float:
    """Probability ``1 - chi_S' M^t chi_x`` of leaving ``S`` within ``steps``.

    Computed exactly with the truncated kernel ``diag(chi_S) M``: mass that
    ever steps outside ``S`` is removed and never returns, so the retained
    mass after ``t`` applications is the stay probability.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    chi_s = indicator_vector(nodes, graph.num_nodes)
    if chi_s[start] == 0.0:
        return 1.0
    m = graph.transition_matrix()
    truncated = sp.diags(chi_s) @ m
    mass = np.zeros(graph.num_nodes)
    mass[start] = 1.0
    for _ in range(steps):
        mass = truncated @ mass
    return float(1.0 - mass.sum())


def stay_probability(graph: Graph, nodes, start: int, steps: int) -> float:
    """Complement of :func:`escape_probability`."""
    return 1.0 - escape_probability(graph, nodes, start, steps)


def diffusion_core(graph: Graph, nodes, delta: float, steps: int) -> np.ndarray:
    """The ``(delta, steps)``-diffusion core ``C_S`` of Definition 1.

    Returns the sorted original node ids in ``S`` whose ``steps``-step
    escape probability is strictly below ``delta * phi(S)``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    nodes = np.asarray(nodes, dtype=np.int64)
    phi = graph.conductance(nodes)
    threshold = delta * phi
    chi_s = indicator_vector(nodes, graph.num_nodes)
    m = graph.transition_matrix()
    truncated = sp.diags(chi_s) @ m

    # Propagate all |S| indicator columns at once: columns of `mass` track
    # the surviving in-S probability mass of a walk started at each node.
    mass = np.zeros((graph.num_nodes, nodes.size))
    mass[nodes, np.arange(nodes.size)] = 1.0
    for _ in range(steps):
        mass = truncated @ mass
    escape = 1.0 - mass.sum(axis=0)
    return nodes[escape < threshold]


def lemma21_bound(graph: Graph, nodes, delta: float, walk_length: int) -> float:
    """Lemma 2.1 lower bound ``1 - T * delta * phi(S)`` (clipped at 0)."""
    phi = graph.conductance(np.asarray(nodes, dtype=np.int64))
    return max(0.0, 1.0 - walk_length * delta * phi)
