"""The nine graph statistics of Table II.

Average Degree (AD), largest connected component (LCC), Triangle Count
(TC), Power-Law Exponent (PLE), Gini coefficient of the degree
distribution, Edge Distribution Entropy (EDE), Average Shortest Path
Length (ASPL), Number of Connected Components (NCC) and the average
Clustering Coefficient (CC).

These are the metrics over which the paper measures the overall
discrepancy (Eq. 15, Figure 4) and the protected-group discrepancy
(Eq. 16, Figure 5).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .components import connected_components
from .graph import Graph

__all__ = [
    "average_degree",
    "largest_connected_component",
    "triangle_count",
    "power_law_exponent",
    "gini_coefficient",
    "edge_distribution_entropy",
    "average_shortest_path_length",
    "number_of_connected_components",
    "clustering_coefficient",
    "all_metrics",
    "METRIC_NAMES",
    "triangles_per_node",
    "local_clustering_profile",
]

METRIC_NAMES = ("AD", "LCC", "TC", "PLE", "Gini", "EDE", "ASPL", "NCC", "CC")


def average_degree(graph: Graph) -> float:
    """``E[d(v)] = 2m / n``."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def largest_connected_component(graph: Graph) -> float:
    """Size (node count) of the largest connected component."""
    if graph.num_nodes == 0:
        return 0.0
    labels = connected_components(graph)
    return float(np.bincount(labels).max())


def number_of_connected_components(graph: Graph) -> float:
    """Count of connected components (NCC, via Pearce-style traversal)."""
    if graph.num_nodes == 0:
        return 0.0
    return float(connected_components(graph).max() + 1)


def triangles_per_node(graph: Graph) -> np.ndarray:
    """Number of triangles each node participates in."""
    return _triangles_per_node(graph)


def local_clustering_profile(graph: Graph) -> np.ndarray:
    """Per-node local clustering coefficients (0 for degree < 2)."""
    tri = _triangles_per_node(graph)
    deg = graph.degrees
    possible = deg * (deg - 1) / 2.0
    return np.divide(tri, possible, out=np.zeros(graph.num_nodes),
                     where=possible > 0)


def _triangles_per_node(graph: Graph) -> np.ndarray:
    adj = graph.adjacency
    # diag(A^3) counts closed 3-walks; each triangle at v is counted twice.
    a2 = adj @ adj
    tri2 = np.asarray(a2.multiply(adj).sum(axis=1)).ravel()
    return tri2 / 2.0


def triangle_count(graph: Graph) -> float:
    """Number of triangles: ``trace(A^3) / 6``."""
    return float(_triangles_per_node(graph).sum() / 3.0)


def power_law_exponent(graph: Graph, d_min: float | None = None) -> float:
    """Hill/MLE estimate ``1 + n (sum_u log(d(u)/d_min))^{-1}`` (Table II).

    ``d_min`` defaults to the smallest positive degree.  Zero-degree nodes
    are excluded (their log ratio is undefined).  Returns ``inf`` for
    degenerate degree sequences where every node has degree ``d_min``.
    """
    deg = graph.degrees[graph.degrees > 0]
    if deg.size == 0:
        return float("nan")
    if d_min is None:
        d_min = float(deg.min())
    total = float(np.log(deg / d_min).sum())
    if total <= 0.0:
        return float("inf")
    return 1.0 + deg.size / total


def gini_coefficient(graph: Graph) -> float:
    """Gini inequality of the degree sequence (Table II formula)."""
    deg = np.sort(graph.degrees.astype(np.float64))
    n = deg.size
    total = deg.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float(2.0 * (ranks * deg).sum() / (n * total) - (n + 1) / n)


def edge_distribution_entropy(graph: Graph) -> float:
    """Relative entropy of the degree distribution.

    ``1/ln(n) * sum_v -p_v ln p_v`` with ``p_v = d(v) / sum_u d(u)``;
    1.0 for perfectly uniform degrees, lower for concentrated ones.
    """
    deg = graph.degrees[graph.degrees > 0].astype(np.float64)
    n = graph.num_nodes
    if n <= 1 or deg.size == 0:
        return 0.0
    p = deg / deg.sum()
    return float(-(p * np.log(p)).sum() / np.log(n))


def average_shortest_path_length(graph: Graph,
                                 sample_size: int | None = None,
                                 rng: np.random.Generator | None = None) -> float:
    """Mean shortest-path length over connected ordered pairs.

    The Table II definition ``1/(n(n-1)) sum_{i != j} d(v_i, v_j)`` is
    undefined on disconnected graphs, so (as is standard) we average over
    reachable pairs only.  For large graphs pass ``sample_size`` to BFS
    from a random subset of sources.
    """
    n = graph.num_nodes
    if n <= 1:
        return 0.0
    if sample_size is not None and sample_size < n:
        if rng is None:
            rng = np.random.default_rng(0)
        sources = rng.choice(n, size=sample_size, replace=False)
    else:
        sources = np.arange(n)
    dist = csgraph.shortest_path(graph.adjacency, method="D",
                                 unweighted=True, indices=sources)
    finite = np.isfinite(dist) & (dist > 0)
    if not finite.any():
        return 0.0
    return float(dist[finite].mean())


def clustering_coefficient(graph: Graph) -> float:
    """Average local clustering coefficient.

    For each node ``v`` with degree >= 2 the local coefficient is
    ``triangles(v) / (d(v) (d(v)-1) / 2)``; lower-degree nodes contribute 0.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    tri = _triangles_per_node(graph)
    deg = graph.degrees
    possible = deg * (deg - 1) / 2.0
    local = np.divide(tri, possible, out=np.zeros(n), where=possible > 0)
    return float(local.mean())


def all_metrics(graph: Graph, aspl_sample: int | None = None,
                rng: np.random.Generator | None = None) -> dict[str, float]:
    """Compute all nine Table II statistics as a name -> value dict."""
    return {
        "AD": average_degree(graph),
        "LCC": largest_connected_component(graph),
        "TC": triangle_count(graph),
        "PLE": power_law_exponent(graph),
        "Gini": gini_coefficient(graph),
        "EDE": edge_distribution_entropy(graph),
        "ASPL": average_shortest_path_length(graph, aspl_sample, rng),
        "NCC": number_of_connected_components(graph),
        "CC": clustering_coefficient(graph),
    }
