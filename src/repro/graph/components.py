"""Connected components via an iterative depth-first traversal.

The paper's NCC metric cites Pearce's improved SCC algorithm [50]; on an
undirected graph SCCs coincide with connected components, so we implement
the iterative (stack-based, recursion-free) traversal that Pearce's
algorithm reduces to in the undirected case.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["connected_components", "largest_component_nodes"]


def connected_components(graph: Graph) -> np.ndarray:
    """Return a label array: ``labels[v]`` is the component id of ``v``.

    Component ids are assigned in discovery order starting from node 0.
    """
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for nb in graph.neighbors(node):
                if labels[nb] == -1:
                    labels[nb] = current
                    stack.append(int(nb))
        current += 1
    return labels


def largest_component_nodes(graph: Graph) -> np.ndarray:
    """Node ids of the largest connected component (ties: lowest id set)."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(labels)
    return np.flatnonzero(labels == int(np.argmax(counts)))
