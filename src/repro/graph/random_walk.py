"""Random-walk samplers: uniform first-order and node2vec second-order.

FairGen's context sampler ``f_S`` (Section II-B, M1) mixes two walk types:
with probability ``r`` a *general* biased second-order walk in the style of
node2vec [39], and with probability ``1 - r`` a label-guided walk starting
from a labeled example.  This module provides the walk primitives; the
label-informed mixing lives in :mod:`repro.core.context_sampling`.

:func:`sample_walks` — the batch entry point every pipeline stage uses —
runs on the vectorized :class:`repro.graph.walk_engine.WalkEngine`, which
advances all walks one step at a time over the CSR adjacency.  The scalar
:func:`uniform_random_walk` and :func:`node2vec_walk` below are kept as
single-walk reference implementations that the engine's equivalence tests
check against.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["uniform_random_walk", "node2vec_walk", "sample_walks",
           "walks_to_edge_counts"]


def uniform_random_walk(graph: Graph, start: int, length: int,
                        rng: np.random.Generator) -> np.ndarray:
    """First-order walk of ``length`` nodes starting at ``start``.

    A walk stuck at an isolated node stays in place (lazy self-loop),
    mirroring the lazy transition matrix ``M``.
    """
    walk = np.empty(length, dtype=np.int64)
    walk[0] = start
    current = start
    for t in range(1, length):
        nbrs = graph.neighbors(current)
        if nbrs.size == 0:
            walk[t:] = current
            break
        current = int(nbrs[rng.integers(nbrs.size)])
        walk[t] = current
    return walk


def node2vec_walk(graph: Graph, start: int, length: int,
                  rng: np.random.Generator,
                  p: float = 1.0, q: float = 1.0) -> np.ndarray:
    """Biased second-order walk of node2vec (Grover & Leskovec, 2016).

    Transition weights from ``v`` (previous node ``t``) to neighbor ``x``:
    ``1/p`` if ``x == t`` (return), ``1`` if ``x`` is adjacent to ``t``
    (BFS-like) and ``1/q`` otherwise (DFS-like).
    """
    if p <= 0 or q <= 0:
        raise ValueError("node2vec parameters p and q must be positive")
    walk = np.empty(length, dtype=np.int64)
    walk[0] = start
    if length == 1:
        return walk
    nbrs = graph.neighbors(start)
    if nbrs.size == 0:
        walk[1:] = start
        return walk
    walk[1] = int(nbrs[rng.integers(nbrs.size)])
    for t in range(2, length):
        prev, cur = walk[t - 2], walk[t - 1]
        nbrs = graph.neighbors(int(cur))
        if nbrs.size == 0:
            walk[t:] = cur
            break
        weights = np.where(nbrs == prev, 1.0 / p,
                           np.where(np.isin(nbrs, graph.neighbors(int(prev))),
                                    1.0, 1.0 / q))
        weights = weights / weights.sum()
        walk[t] = int(rng.choice(nbrs, p=weights))
    return walk


def sample_walks(graph, num_walks: int, length: int,
                 rng: np.random.Generator,
                 starts: np.ndarray | None = None,
                 p: float = 1.0, q: float = 1.0) -> np.ndarray:
    """Sample ``num_walks`` node2vec walks as an int array (num_walks, length).

    Starts default to degree-weighted node sampling, the standard NetGAN /
    node2vec convention (walks per unit of volume).  All walks advance in
    lock-step on the graph's cached :class:`~repro.graph.walk_engine.WalkEngine`
    rather than one at a time through :func:`node2vec_walk`.

    ``graph`` may be an in-memory :class:`~repro.graph.Graph` or an
    out-of-core :class:`~repro.graph.sharded.ShardedGraph` — both expose
    ``walk_engine()``, so every walk-based pipeline stage routed through
    this function scales past resident memory transparently (see the
    RNG-stream contract on
    :class:`~repro.graph.walk_engine.ShardedWalkEngine` for when results
    are byte-identical).
    """
    return graph.walk_engine().walks(num_walks, length, rng,
                                     starts=starts, p=p, q=q)


def walks_to_edge_counts(walks: np.ndarray, num_nodes: int) -> "np.ndarray":
    """Symmetric score matrix B counting observed transitions (Section II-D).

    Consecutive walk positions (w_t, w_{t+1}) each contribute one count to
    B[w_t, w_{t+1}] and B[w_{t+1}, w_t]; self-transitions from lazy walks
    are ignored.
    """
    import scipy.sparse as sp

    src = walks[:, :-1].ravel()
    dst = walks[:, 1:].ravel()
    keep = src != dst
    src, dst = src[keep], dst[keep]
    data = np.ones(src.size)
    counts = sp.coo_matrix((np.concatenate([data, data]),
                            (np.concatenate([src, dst]),
                             np.concatenate([dst, src]))),
                           shape=(num_nodes, num_nodes)).tocsr()
    return counts
