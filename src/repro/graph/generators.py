"""Synthetic graph generators: ER, BA, planted partition / SBM.

These serve three roles in the reproduction:

* ER and BA are two of the paper's baselines (Section III-A);
* ER drives the scalability study of Figure 8;
* the stochastic block model with a small planted protected community
  underlies our stand-ins for the labeled datasets (BLOG/FLICKR/ACM).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "stochastic_block_model",
    "planted_protected_graph",
    "watts_strogatz",
    "configuration_model",
    "kronecker_graph",
    "synthetic_edge_stream",
    "ring_of_chords",
]


def erdos_renyi(num_nodes: int, edge_prob: float,
                rng: np.random.Generator) -> Graph:
    """G(n, p) random graph (Erdos & Renyi, 1959)."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must be in [0, 1]")
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    # Sample the number of edges then the edge set (fast for sparse p).
    max_edges = num_nodes * (num_nodes - 1) // 2
    target = rng.binomial(max_edges, edge_prob) if max_edges else 0
    edges: set[tuple[int, int]] = set()
    while len(edges) < target:
        need = target - len(edges)
        u = rng.integers(num_nodes, size=2 * need + 8)
        v = rng.integers(num_nodes, size=2 * need + 8)
        for a, b in zip(u, v):
            if a == b:
                continue
            edge = (int(min(a, b)), int(max(a, b)))
            edges.add(edge)
            if len(edges) == target:
                break
    return Graph.from_edges(num_nodes, edges)


def barabasi_albert(num_nodes: int, attach: int,
                    rng: np.random.Generator) -> Graph:
    """Preferential-attachment graph (Barabasi & Albert).

    Each arriving node attaches ``attach`` edges to existing nodes chosen
    proportionally to their current degree (repeat-sampling, deduplicated).
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_nodes <= attach:
        raise ValueError("num_nodes must exceed attach")
    edges: list[tuple[int, int]] = []
    # Repeated-nodes trick: targets drawn uniformly from the degree
    # multiset keep attachment proportional to degree.
    repeated: list[int] = list(range(attach))
    for new in range(attach, num_nodes):
        targets: set[int] = set()
        while len(targets) < attach:
            pick = repeated[rng.integers(len(repeated))] if repeated else int(
                rng.integers(new))
            if pick != new:
                targets.add(pick)
        for t in targets:
            edges.append((new, t))
            repeated.extend((new, t))
    return Graph.from_edges(num_nodes, edges)


def stochastic_block_model(block_sizes: list[int],
                           prob_matrix: np.ndarray,
                           rng: np.random.Generator) -> tuple[Graph, np.ndarray]:
    """SBM: returns the graph and the block label of every node."""
    prob_matrix = np.asarray(prob_matrix, dtype=np.float64)
    k = len(block_sizes)
    if prob_matrix.shape != (k, k):
        raise ValueError("prob_matrix must be k x k")
    if not np.allclose(prob_matrix, prob_matrix.T):
        raise ValueError("prob_matrix must be symmetric")
    labels = np.repeat(np.arange(k), block_sizes)
    offsets = np.cumsum([0] + list(block_sizes))
    edges: list[tuple[int, int]] = []
    for a in range(k):
        for b in range(a, k):
            p = prob_matrix[a, b]
            if p <= 0:
                continue
            rows = np.arange(offsets[a], offsets[a + 1])
            cols = np.arange(offsets[b], offsets[b + 1])
            mask = rng.random((rows.size, cols.size)) < p
            if a == b:
                mask = np.triu(mask, k=1)
            ii, jj = np.nonzero(mask)
            edges.extend(zip(rows[ii].tolist(), cols[jj].tolist()))
    return Graph.from_edges(int(offsets[-1]), edges), labels


def _split_sizes(total: int, parts: int) -> list[int]:
    base = total // parts
    sizes = [base] * (parts - 1)
    sizes.append(total - base * (parts - 1))
    return sizes


def planted_protected_graph(num_unprotected: int, num_protected: int,
                            rng: np.random.Generator,
                            p_in: float = 0.05, p_out: float = 0.002,
                            num_classes: int = 2,
                            protected_as_class: bool = False,
                            ) -> tuple[Graph, np.ndarray, np.ndarray]:
    """Community graph with a small, under-represented protected group.

    Two group semantics, matching the paper's datasets:

    * ``protected_as_class=False`` (default; BLOG/FLICKR-style): the
      protected attribute is *orthogonal* to the class labels, like race
      vs blog topic.  Each class consists of a large unprotected block
      plus a small protected sub-block attached to it; protected
      sub-blocks are internally denser and weakly tied to each other, so
      the group is structurally distinctive while every class contains
      both groups.  Statistical parity is achievable here without
      destroying accuracy.
    * ``protected_as_class=True`` (ACM-style, and Figure 1's synthetic
      example): the protected group is its own cohesive community with
      its own class label — "the topic with a small population".  Parity
      then genuinely trades off against prediction accuracy.

    Returns ``(graph, class_labels, protected_mask)``.
    """
    if num_protected <= 0 or num_unprotected <= 0:
        raise ValueError("both populations must be non-empty")
    if num_classes < 1:
        raise ValueError("need at least one class")

    if protected_as_class:
        sizes = _split_sizes(num_unprotected, num_classes)
        sizes.append(num_protected)
        k = num_classes + 1
        probs = np.full((k, k), p_out)
        np.fill_diagonal(probs, p_in)
        # Protected block slightly denser internally: scarce but cohesive.
        probs[-1, -1] = min(1.0, 2.0 * p_in)
        graph, blocks = stochastic_block_model(sizes, probs, rng)
        protected = blocks == num_classes
        return graph, blocks.copy(), protected

    if num_protected < num_classes:
        raise ValueError("orthogonal mode needs at least one protected "
                         "node per class")
    unprot_sizes = _split_sizes(num_unprotected, num_classes)
    prot_sizes = _split_sizes(num_protected, num_classes)
    sizes = unprot_sizes + prot_sizes
    k = 2 * num_classes
    probs = np.full((k, k), p_out)
    for c in range(num_classes):
        probs[c, c] = p_in                                  # class core
        probs[num_classes + c, num_classes + c] = min(1.0, 2.0 * p_in)
        # Protected sub-block attaches to its own class community, keeping
        # the class label structurally predictable for protected nodes.
        probs[c, num_classes + c] = probs[num_classes + c, c] = p_in / 2.0
        for c2 in range(num_classes):
            if c2 != c:
                # Weak cross-class cohesion inside the protected group.
                probs[num_classes + c, num_classes + c2] = min(1.0, 4.0 * p_out)
    graph, blocks = stochastic_block_model(sizes, probs, rng)
    labels = blocks % num_classes
    protected = blocks >= num_classes
    return graph, labels, protected


def watts_strogatz(num_nodes: int, neighbors: int, rewire_prob: float,
                   rng: np.random.Generator) -> Graph:
    """Small-world graph (Watts & Strogatz, 1998).

    Start from a ring lattice where each node connects to its
    ``neighbors`` nearest neighbors (must be even), then rewire each edge
    with probability ``rewire_prob``.  One of the classic graph-property
    oriented models the paper contrasts with data-driven generators.
    """
    if neighbors % 2 != 0 or neighbors < 2:
        raise ValueError("neighbors must be even and >= 2")
    if num_nodes <= neighbors:
        raise ValueError("num_nodes must exceed neighbors")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError("rewire_prob must be in [0, 1]")
    edges: set[tuple[int, int]] = set()
    for u in range(num_nodes):
        for offset in range(1, neighbors // 2 + 1):
            v = (u + offset) % num_nodes
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for (u, v) in sorted(edges):
        if rng.random() < rewire_prob:
            for _ in range(num_nodes):
                w = int(rng.integers(num_nodes))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in rewired and candidate not in edges:
                    rewired.add(candidate)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return Graph.from_edges(num_nodes, rewired)


def configuration_model(degree_sequence, rng: np.random.Generator) -> Graph:
    """Random graph with (approximately) the given degree sequence.

    Stub matching (Bollobas): each node contributes ``d`` half-edges,
    which are shuffled and paired.  Self-loops and multi-edges produced
    by the matching are dropped, so high-degree nodes may end slightly
    below their target degree — the standard simple-graph projection.
    """
    degrees = np.asarray(degree_sequence, dtype=np.int64)
    if degrees.min(initial=0) < 0:
        raise ValueError("degrees must be non-negative")
    if degrees.sum() % 2 != 0:
        raise ValueError("degree sequence must have an even sum")
    stubs = np.repeat(np.arange(degrees.size), degrees)
    rng.shuffle(stubs)
    edges = set()
    for u, v in zip(stubs[0::2], stubs[1::2]):
        if u != v:
            edges.add((int(min(u, v)), int(max(u, v))))
    return Graph.from_edges(degrees.size, edges)


def synthetic_edge_stream(num_nodes: int, num_chords: int, seed: int,
                          chunk_edges: int = 1 << 17,
                          ) -> Iterator[np.ndarray]:
    """Stream a million-edge-scale benchmark graph without building it.

    The graph is a ring (``i — (i+1) mod n``, so it is connected and
    every node has degree >= 2) plus ``num_chords`` random chords drawn
    uniformly over node pairs (duplicates and self-pairs are tolerated —
    the sharded ingester deduplicates, exactly like
    :meth:`Graph.from_edges`).  Edges are yielded in ``(k, 2)`` chunks so
    peak memory is O(chunk), letting benchmarks drive the out-of-core
    ingest path at sizes no in-memory generator here could reach.

    Deterministic for a given ``(num_nodes, num_chords, seed,
    chunk_edges)``; :func:`ring_of_chords` materialises the identical
    graph in memory for parity checks at small sizes.
    """
    if num_nodes < 3:
        raise ValueError("num_nodes must be >= 3")
    if num_chords < 0:
        raise ValueError("num_chords must be non-negative")
    rng = np.random.default_rng(seed)
    ids = np.arange(num_nodes, dtype=np.int64)
    for start in range(0, num_nodes, chunk_edges):
        ring = ids[start:start + chunk_edges]
        yield np.column_stack([ring, (ring + 1) % num_nodes])
    for start in range(0, num_chords, chunk_edges):
        k = min(chunk_edges, num_chords - start)
        yield rng.integers(num_nodes, size=(k, 2), dtype=np.int64)


def ring_of_chords(num_nodes: int, num_chords: int, seed: int,
                   chunk_edges: int = 1 << 17) -> Graph:
    """In-memory twin of :func:`synthetic_edge_stream` (same edge set)."""
    chunks = list(synthetic_edge_stream(num_nodes, num_chords, seed,
                                        chunk_edges))
    edges = np.concatenate(chunks)
    edges = edges[edges[:, 0] != edges[:, 1]]
    return Graph.from_edges(num_nodes, [tuple(e) for e in edges])


def kronecker_graph(initiator: np.ndarray, power: int,
                    rng: np.random.Generator) -> Graph:
    """Stochastic Kronecker graph (Leskovec et al., 2010) — paper ref [8].

    The ``k``-th Kronecker power of a small initiator probability matrix
    gives edge probabilities over ``n = len(initiator)**power`` nodes;
    each edge is sampled independently.  Suitable for small powers only
    (the probability matrix is materialised densely).
    """
    initiator = np.asarray(initiator, dtype=np.float64)
    if initiator.ndim != 2 or initiator.shape[0] != initiator.shape[1]:
        raise ValueError("initiator must be square")
    if (initiator < 0).any() or (initiator > 1).any():
        raise ValueError("initiator entries must be probabilities")
    if not np.allclose(initiator, initiator.T):
        raise ValueError("initiator must be symmetric for undirected graphs")
    if power < 1:
        raise ValueError("power must be >= 1")
    probs = initiator.copy()
    for _ in range(power - 1):
        probs = np.kron(probs, initiator)
    n = probs.shape[0]
    if n > 4096:
        raise ValueError("materialised Kronecker power too large")
    sample = rng.random((n, n))
    upper = np.triu(sample < probs, k=1)
    rows, cols = np.nonzero(upper)
    return Graph.from_edges(n, list(zip(rows.tolist(), cols.tolist())))
