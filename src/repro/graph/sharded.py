"""Sharded, memory-mapped CSR graph storage for million-node graphs.

The in-memory :class:`~repro.graph.Graph` keeps the whole CSR adjacency
resident, which caps honest Figure 8 scaling curves at ~10^5 nodes.  This
module stores a graph as **node-range shards** on disk so walk-hungry
consumers touch only the shards their walk frontier currently occupies:

* :func:`ingest_edge_stream` — a streaming ingester that bins an
  undirected edge stream into per-shard spill files with bounded peak
  memory (O(nodes + chunk + largest shard), never O(edges)), then builds
  each shard's CSR (sorted, deduplicated, self-loops dropped, both edge
  directions emitted so the stored adjacency is symmetric) and writes it
  as an *uncompressed* ``shard_XXXXX.npz`` whose members the reader maps
  straight off disk via the zip-member :func:`numpy.memmap` machinery of
  :mod:`repro.core.serialization`;
* a ``manifest.json`` recording node/edge counts, shard ranges, per-shard
  edge counts and a log2 degree histogram — ``repro graph stats`` prints
  it without touching any shard;
* :class:`ShardedGraph` — the read side: the ``Graph`` surface the walk
  engines need (``num_nodes``, ``degrees``, ``neighbors``, ``has_edge``,
  batched ``has_edges``, ``walk_engine()``) backed by an LRU of resident
  shard mmaps, so resident memory is O(hot shards), not O(edges).

Layout of a shard directory::

    <dir>/manifest.json      # written last; its presence marks a
                             # completed ingest (atomic tmp+rename)
    <dir>/degrees.npy        # global int64 degree vector (mmap-read)
    <dir>/shard_00000.npz    # indptr / indices / degrees, ZIP_STORED
    ...

Shard ``i`` owns the node range ``[shard_starts[i], shard_starts[i+1])``;
its ``indptr`` is local to that range and its ``indices`` hold *global*
neighbor ids, sorted per row.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..obs import trace
from ..obs.metrics import get_registry

__all__ = ["ShardedGraph", "ShardCSR", "ingest_edge_stream",
           "ingest_graph", "ingest_edge_file", "edge_chunks_from_csr",
           "MANIFEST_FORMAT"]

#: bump when the on-disk shard layout changes incompatibly
MANIFEST_FORMAT = "sharded-csr-v1"

#: default undirected edges per streamed chunk
DEFAULT_CHUNK_EDGES = 1 << 18


class _ShardMetrics:
    """Lazily created default-registry counters for the shard LRU."""

    _instance = None

    def __init__(self) -> None:
        registry = get_registry()
        self.fetches = registry.counter(
            "sharded_shard_fetches_total",
            "Shard LRU (re-)entries (loads + re-admissions)")
        self.evictions = registry.counter(
            "sharded_shard_evictions_total",
            "Shards evicted from the resident LRU")


def _shard_metrics() -> _ShardMetrics:
    if _ShardMetrics._instance is None:
        _ShardMetrics._instance = _ShardMetrics()
    return _ShardMetrics._instance


# ----------------------------------------------------------------------
# Ingest
# ----------------------------------------------------------------------
def _shard_starts(num_nodes: int, num_shards: int) -> np.ndarray:
    """Uniform node-range shard boundaries (length ``num_shards + 1``)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards > max(num_nodes, 1):
        raise ValueError("more shards than nodes")
    return np.linspace(0, num_nodes, num_shards + 1).astype(np.int64)


def _degree_histogram(degrees: np.ndarray) -> dict:
    """Log2-binned degree histogram (bin k counts degrees in
    ``[2^(k-1), 2^k)``; bin 0 counts isolated nodes)."""
    iso = int(np.count_nonzero(degrees == 0))
    pos = degrees[degrees > 0]
    counts = [iso]
    if pos.size:
        bins = np.bincount(
            np.floor(np.log2(pos.astype(np.float64))).astype(np.int64) + 1)
        counts.extend(int(c) for c in bins[1:])  # bin 0 is never hit
    edges = ["0"] + [f"[{1 << (k - 1)},{1 << k})"
                     for k in range(1, len(counts))]
    return {"bins": edges, "counts": counts}


def ingest_edge_stream(chunks: Iterable[np.ndarray], num_nodes: int,
                       out_dir: str | os.PathLike, *,
                       num_shards: int | None = None,
                       nodes_per_shard: int | None = None,
                       overwrite: bool = False) -> "ShardedGraph":
    """Bin an undirected edge stream into node-range CSR shards on disk.

    ``chunks`` yields int arrays of shape ``(k, 2)`` of undirected edge
    endpoints; repeated edges (in either orientation) and self-loops are
    tolerated — the per-shard build deduplicates and drops them, matching
    :class:`~repro.graph.Graph` construction semantics.  Peak memory is
    bounded by one chunk plus the largest shard's directed slots (the
    shard-size knob), never the full edge set: pass 1 streams each chunk's
    two directed orientations into per-shard binary spill files; pass 2
    loads one spill at a time, sorts and deduplicates it, writes the
    shard's ``npz`` and its slice of the global degree vector.

    A directory that already holds a completed ingest (a manifest) is
    refused unless ``overwrite=True``; leftovers of an *interrupted*
    ingest (spills or shards without a manifest) are clobbered freely, so
    re-running a crashed ingest needs no flag.  The manifest is written
    last via tmp+rename, making its presence the commit point.
    """
    out = Path(out_dir)
    if (out / "manifest.json").exists() and not overwrite:
        raise FileExistsError(
            f"{out} already holds a completed shard directory; pass "
            "overwrite=True (CLI: --overwrite) to replace it")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if num_shards is not None and nodes_per_shard is not None:
        raise ValueError("pass num_shards or nodes_per_shard, not both")
    if nodes_per_shard is not None:
        if nodes_per_shard < 1:
            raise ValueError("nodes_per_shard must be >= 1")
        num_shards = -(-num_nodes // nodes_per_shard)
    if num_shards is None:
        num_shards = 1
    starts = _shard_starts(num_nodes, num_shards)
    out.mkdir(parents=True, exist_ok=True)
    (out / "manifest.json").unlink(missing_ok=True)  # stale commit point

    # -- pass 1: spill each directed orientation to its owner shard ----
    spill_paths = [out / f"spill_{i:05d}.bin" for i in range(num_shards)]
    spills = [open(p, "wb") for p in spill_paths]
    try:
        for chunk in chunks:
            edges = np.ascontiguousarray(chunk, dtype=np.int64)
            if edges.size == 0:
                continue
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise ValueError("edge chunks must have shape (k, 2)")
            if edges.min() < 0 or edges.max() >= num_nodes:
                raise ValueError("edge endpoint out of range")
            keep = edges[:, 0] != edges[:, 1]  # strip self-loops early
            edges = edges[keep]
            directed = np.concatenate([edges, edges[:, ::-1]])
            owner = np.searchsorted(starts[1:], directed[:, 0],
                                    side="right")
            order = np.argsort(owner, kind="stable")
            directed, owner = directed[order], owner[order]
            bounds = np.searchsorted(owner,
                                     np.arange(num_shards + 1))
            for i in range(num_shards):
                lo, hi = bounds[i], bounds[i + 1]
                if hi > lo:
                    spills[i].write(
                        np.ascontiguousarray(directed[lo:hi]).tobytes())
    finally:
        for fh in spills:
            fh.close()

    # -- pass 2: one shard at a time — sort, dedup, CSR, npz -----------
    degrees_path = out / "degrees.npy"
    degrees_mm = np.lib.format.open_memmap(
        degrees_path, mode="w+", dtype=np.int64, shape=(num_nodes,))
    shard_edges: list[int] = []
    max_degree = 0
    hist_counts: np.ndarray | None = None
    for i in range(num_shards):
        lo, hi = int(starts[i]), int(starts[i + 1])
        span = hi - lo
        raw = np.fromfile(spill_paths[i], dtype=np.int64).reshape(-1, 2)
        # Sort by (row, col) through one flat key, then deduplicate —
        # exactly the canonical CSR Graph construction produces.
        keys = (raw[:, 0] - lo) * np.int64(num_nodes) + raw[:, 1]
        keys = np.unique(keys)
        rows = keys // num_nodes
        cols = keys - rows * num_nodes
        deg = np.bincount(rows, minlength=span).astype(np.int64)
        indptr = np.zeros(span + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        np.savez(out / f"shard_{i:05d}.npz",
                 indptr=indptr, indices=cols.astype(np.int64),
                 degrees=deg)
        degrees_mm[lo:hi] = deg
        shard_edges.append(int(cols.size))
        if deg.size:
            max_degree = max(max_degree, int(deg.max()))
        counts = np.asarray(_degree_histogram(deg)["counts"],
                            dtype=np.int64)
        if hist_counts is None:
            hist_counts = counts
        elif counts.size > hist_counts.size:
            counts[:hist_counts.size] += hist_counts
            hist_counts = counts
        else:
            hist_counts[:counts.size] += counts
        spill_paths[i].unlink()
        del raw, keys, rows, cols
    degrees_mm.flush()
    del degrees_mm

    total_directed = int(sum(shard_edges))
    histogram = _degree_histogram(np.zeros(0, dtype=np.int64))
    if hist_counts is not None:
        histogram = {
            "bins": ["0"] + [f"[{1 << (k - 1)},{1 << k})"
                             for k in range(1, hist_counts.size)],
            "counts": [int(c) for c in hist_counts]}
    manifest = {
        "format": MANIFEST_FORMAT,
        "num_nodes": num_nodes,
        "num_edges": total_directed // 2,
        "num_shards": num_shards,
        "shard_starts": [int(s) for s in starts],
        "shard_edges": shard_edges,
        "max_degree": max_degree,
        "degree_histogram": histogram,
    }
    tmp = out / "manifest.json.tmp"
    tmp.write_text(json.dumps(manifest, indent=2))
    tmp.replace(out / "manifest.json")
    return ShardedGraph(out)


def edge_chunks_from_csr(indptr: np.ndarray, indices: np.ndarray,
                         chunk_edges: int = DEFAULT_CHUNK_EDGES,
                         ) -> Iterator[np.ndarray]:
    """Stream the upper-triangular edges of a symmetric CSR in chunks."""
    num_nodes = indptr.size - 1
    rows = np.repeat(np.arange(num_nodes, dtype=np.int64),
                     np.diff(indptr))
    upper = rows < indices
    pairs = np.column_stack([rows[upper], indices[upper]])
    for start in range(0, pairs.shape[0], chunk_edges):
        yield pairs[start:start + chunk_edges]
    if pairs.shape[0] == 0:
        yield np.empty((0, 2), dtype=np.int64)


def ingest_graph(graph, out_dir: str | os.PathLike, *,
                 num_shards: int | None = None,
                 nodes_per_shard: int | None = None,
                 overwrite: bool = False) -> "ShardedGraph":
    """Shard an in-memory :class:`~repro.graph.Graph` (tests, benches)."""
    adj = graph.adjacency
    return ingest_edge_stream(
        edge_chunks_from_csr(adj.indptr.astype(np.int64),
                             adj.indices.astype(np.int64)),
        graph.num_nodes, out_dir, num_shards=num_shards,
        nodes_per_shard=nodes_per_shard, overwrite=overwrite)


def _edge_file_chunks(path: Path,
                      chunk_edges: int) -> Iterator[np.ndarray]:
    """Parse a whitespace-separated ``u v`` edge-list file in chunks."""
    import warnings

    with open(path) as fh:
        while True:
            with warnings.catch_warnings():
                # comment/blank lines don't count toward max_rows —
                # numpy warns about that; chunking handles it fine
                warnings.simplefilter("ignore", UserWarning)
                block = np.loadtxt(fh, dtype=np.int64, comments="#",
                                   max_rows=chunk_edges, ndmin=2)
            if block.size == 0:
                break
            if block.shape[1] < 2:
                raise ValueError(f"{path}: expected 'u v' pairs per line")
            yield block[:, :2]
            if block.shape[0] < chunk_edges:
                break


def ingest_edge_file(path: str | os.PathLike,
                     out_dir: str | os.PathLike, *,
                     num_nodes: int | None = None,
                     num_shards: int | None = None,
                     nodes_per_shard: int | None = None,
                     chunk_edges: int = DEFAULT_CHUNK_EDGES,
                     overwrite: bool = False) -> "ShardedGraph":
    """Ingest a text edge list (``u v`` per line) or a ``save_graph``
    ``.npz`` archive into a shard directory.

    ``num_nodes`` defaults to ``max id + 1`` for text input, discovered
    by one extra streaming pass (npz archives record it themselves).
    """
    src = Path(path)
    if src.suffix == ".npz":
        with np.load(src) as archive:
            if "format" not in archive or \
                    archive["format"].tobytes().decode() != "graph-csr-v1":
                raise ValueError(f"{src} is not a graph archive")
            indptr = archive["indptr"].astype(np.int64)
            indices = archive["indices"].astype(np.int64)
            n = int(archive["num_nodes"][0])
        return ingest_edge_stream(
            edge_chunks_from_csr(indptr, indices, chunk_edges), n,
            out_dir, num_shards=num_shards,
            nodes_per_shard=nodes_per_shard, overwrite=overwrite)
    if num_nodes is None:
        num_nodes = 0
        for chunk in _edge_file_chunks(src, chunk_edges):
            if chunk.size:
                num_nodes = max(num_nodes, int(chunk.max()) + 1)
        if num_nodes == 0:
            raise ValueError(f"{src} holds no edges; pass num_nodes")
    return ingest_edge_stream(
        _edge_file_chunks(src, chunk_edges), num_nodes, out_dir,
        num_shards=num_shards, nodes_per_shard=nodes_per_shard,
        overwrite=overwrite)


# ----------------------------------------------------------------------
# Read side
# ----------------------------------------------------------------------
class ShardCSR:
    """One resident shard: memory-mapped CSR views over its node range.

    ``indptr``/``degrees`` are local to ``[node_start, node_stop)``;
    ``indices`` hold global neighbor ids, sorted per row.  ``edge_keys``
    (for batched adjacency membership) is materialised lazily on the
    first biased-walk query and cached with the resident entry, so it is
    evicted together with the shard.
    """

    __slots__ = ("shard_id", "node_start", "node_stop", "indptr",
                 "indices", "degrees", "_edge_keys", "_num_nodes")

    def __init__(self, shard_id: int, node_start: int, node_stop: int,
                 arrays: dict[str, np.ndarray], num_nodes: int):
        self.shard_id = shard_id
        self.node_start = node_start
        self.node_stop = node_stop
        self.indptr = arrays["indptr"]
        self.indices = arrays["indices"]
        self.degrees = arrays["degrees"]
        self._edge_keys: np.ndarray | None = None
        self._num_nodes = num_nodes

    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted global ``row * n + col`` keys of this shard's slots."""
        if self._edge_keys is None:
            span = self.node_stop - self.node_start
            rows = np.repeat(
                np.arange(self.node_start, self.node_stop,
                          dtype=np.int64),
                np.asarray(self.degrees[:span]))
            self._edge_keys = rows * self._num_nodes \
                + np.asarray(self.indices)
        return self._edge_keys

    def neighbors(self, node: int) -> np.ndarray:
        local = node - self.node_start
        lo, hi = self.indptr[local], self.indptr[local + 1]
        return np.asarray(self.indices[lo:hi])


class ShardedGraph:
    """Read-only sharded graph with an LRU of resident shard mmaps.

    Exposes the surface the walk engines and walk-based model fits need
    — ``num_nodes``, ``num_edges``, ``degrees`` (a read-only memmap),
    ``neighbors``, ``has_edge``/``has_edges``, ``walk_engine()`` — while
    keeping at most ``max_resident`` shards *physically* resident.
    Eviction drops the shard's cached edge keys and advises the kernel
    to release its mapped pages (``MADV_DONTNEED``), so physical
    residency stays bounded; the mapping and its zero-copy views are
    kept, making re-entry free — a thrashing walk frontier touches
    every shard every step, so re-entry cost is the constant factor
    that decides out-of-core walk throughput.
    """

    def __init__(self, path: str | os.PathLike, *,
                 max_resident: int = 4):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.path = Path(path)
        manifest_path = self.path / "manifest.json"
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{self.path} has no manifest.json — not a (completed) "
                "shard directory; build one with `repro ingest`")
        self.manifest = json.loads(manifest_path.read_text())
        if self.manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"{manifest_path}: unsupported shard format "
                f"{self.manifest.get('format')!r}")
        self.max_resident = max_resident
        self.shard_starts = np.asarray(self.manifest["shard_starts"],
                                       dtype=np.int64)
        # The ingester cuts equal-width node ranges (last shard may be
        # shorter), which admits a division-based owner lookup — an
        # order of magnitude cheaper than searchsorted on the per-step
        # frontier.  0 disables the fast path for irregular layouts.
        widths = np.diff(self.shard_starts)
        self._uniform_width = int(widths[0]) if (
            widths.size and widths[0] > 0
            and (widths[:-1] == widths[0]).all()
            and widths[-1] <= widths[0]) else 0
        self._degrees = np.load(self.path / "degrees.npy",
                                mmap_mode="r")
        self._residents: OrderedDict[int, ShardCSR] = OrderedDict()
        #: parsed npz member layouts, kept across evictions: re-entering
        #: an evicted shard is then one mmap + view construction, not a
        #: zip re-parse (the LRU would otherwise pay a parse per miss)
        self._layouts: dict[int, dict | None] = {}
        #: long-lived read-only archive mappings; eviction madvises the
        #: pages away instead of unmapping, so re-entry rebuilds nothing
        self._buffers: dict[int, _mmap.mmap] = {}
        #: ShardCSR views over the long-lived mappings (mapped shards
        #: only) — safe to reuse because the buffers never close
        self._shard_cache: dict[int, ShardCSR] = {}
        self._walk_engine = None
        self.shard_loads = 0  #: shard (re-)entries, for tests/benches

    # -- Graph surface -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.manifest["num_nodes"])

    @property
    def num_edges(self) -> int:
        return int(self.manifest["num_edges"])

    @property
    def num_shards(self) -> int:
        return int(self.manifest["num_shards"])

    @property
    def degrees(self) -> np.ndarray:
        """Global degree vector (read-only memmap)."""
        return self._degrees

    def degree(self, node: int) -> int:
        return int(self._degrees[node])

    def __repr__(self) -> str:
        return (f"ShardedGraph(n={self.num_nodes}, m={self.num_edges}, "
                f"shards={self.num_shards} @ {self.path})")

    # -- shard routing -------------------------------------------------
    def shard_of(self, nodes) -> np.ndarray:
        """Owning shard id per node (vectorized)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self._uniform_width:
            return np.minimum(nodes // self._uniform_width,
                              self.num_shards - 1)
        return np.searchsorted(self.shard_starts[1:-1], nodes,
                               side="right")

    def shard(self, shard_id: int) -> ShardCSR:
        """Resident view of one shard (LRU: hot shards stay resident)."""
        shard = self._residents.get(shard_id)
        if shard is not None:
            self._residents.move_to_end(shard_id)
            return shard
        shard = self._shard_cache.get(shard_id)
        if shard is None:
            with trace.span("shard.fetch", shard=shard_id):
                arrays = self._map_shard(shard_id)
                shard = ShardCSR(shard_id,
                                 int(self.shard_starts[shard_id]),
                                 int(self.shard_starts[shard_id + 1]),
                                 arrays, self.num_nodes)
            if shard_id in self._buffers:
                # views alias a long-lived mapping: reuse across evictions
                self._shard_cache[shard_id] = shard
        self._residents[shard_id] = shard
        self.shard_loads += 1
        _shard_metrics().fetches.inc()
        while len(self._residents) > self.max_resident:
            self._evict(*self._residents.popitem(last=False))
        return shard

    def _evict(self, shard_id: int, shard: ShardCSR) -> None:
        """Bound physical residency: drop the shard's derived in-memory
        state and release its mapped pages back to the OS.  The mapping
        itself survives, so the next :meth:`shard` call pays only page
        re-faults (served from the page cache while the shard is hot)."""
        with trace.span("shard.evict", shard=shard_id):
            shard._edge_keys = None
            buf = self._buffers.get(shard_id)
            if buf is not None and hasattr(_mmap, "MADV_DONTNEED"):
                buf.madvise(_mmap.MADV_DONTNEED)
        _shard_metrics().evictions.inc()

    def _map_shard(self, shard_id: int) -> dict[str, np.ndarray]:
        """Read-only views of one shard's arrays, mapped off disk.

        The zip member layout is parsed and mapped once per shard; the
        zero-copy ``frombuffer`` views built here are cached (via
        ``_shard_cache``) for the lifetime of this object.
        """
        from ..core.serialization import _npz_member_layout

        npz_path = self.path / f"shard_{shard_id:05d}.npz"
        if shard_id not in self._layouts:
            self._layouts[shard_id] = _npz_member_layout(npz_path)
        layout = self._layouts[shard_id]
        if layout is None:  # unmappable archive: plain load fallback
            with np.load(npz_path) as archive:
                return {name: archive[name] for name in archive.files}
        buf = self._buffers.get(shard_id)
        if buf is None:
            with open(npz_path, "rb") as fh:
                buf = _mmap.mmap(fh.fileno(), 0,
                                 access=_mmap.ACCESS_READ)
            self._buffers[shard_id] = buf
        return {name: np.frombuffer(
                    buf, dtype=dtype, offset=offset,
                    count=int(np.prod(shape, dtype=np.int64))
                ).reshape(shape)
                for name, (offset, dtype, shape) in layout.items()}

    def resident_shards(self) -> list[int]:
        return list(self._residents)

    # -- adjacency queries ---------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Sorted global neighbor ids of ``node``."""
        return self.shard(int(self.shard_of(node))).neighbors(int(node))

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized membership ``out[i] = (u[i], v[i]) in E``.

        Queries are grouped by the shard owning ``u`` and answered by a
        binary search over that shard's sorted global edge keys — the
        sharded twin of :meth:`repro.graph.WalkEngine.has_edges`.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        out = np.zeros(u.shape, dtype=bool)
        if u.size == 0:
            return out
        owners = self.shard_of(u)
        for shard_id in np.unique(owners):
            table = self.shard(int(shard_id)).edge_keys
            sel = owners == shard_id
            keys = u[sel] * np.int64(self.num_nodes) + v[sel]
            pos = np.searchsorted(table, keys)
            inside = pos < table.size
            hit = np.zeros(keys.shape, dtype=bool)
            hit[inside] = table[pos[inside]] == keys[inside]
            out[sel] = hit
        return out

    # -- engines / conversion ------------------------------------------
    def walk_engine(self):
        """Cached :class:`~repro.graph.walk_engine.ShardedWalkEngine`."""
        if self._walk_engine is None:
            from .walk_engine import ShardedWalkEngine

            self._walk_engine = ShardedWalkEngine(self)
        return self._walk_engine

    def to_graph(self):
        """Materialise the full in-memory :class:`~repro.graph.Graph`.

        Loads every shard once (O(edges) memory — the thing the sharded
        layout exists to avoid); intended for tests and small graphs.
        """
        import scipy.sparse as sp

        from .graph import Graph

        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i in range(self.num_shards):
            shard = self.shard(i)
            lo, hi = indptr[shard.node_start], \
                int(indptr[shard.node_start] + np.asarray(
                    shard.indices).size)
            indices[lo:hi] = np.asarray(shard.indices)
        data = np.ones(indices.size, dtype=np.float64)
        return Graph(sp.csr_matrix((data, indices, indptr),
                                   shape=(self.num_nodes,
                                          self.num_nodes)))

    def stats(self) -> dict:
        """Manifest summary (no shard is loaded resident)."""
        return {
            "path": str(self.path),
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_shards": self.num_shards,
            "shard_starts": [int(s) for s in self.shard_starts],
            "shard_edges": list(self.manifest["shard_edges"]),
            "max_degree": int(self.manifest["max_degree"]),
            "degree_histogram": self.manifest["degree_histogram"],
        }
