"""Spectral graph utilities: Laplacians, spectral gap, Cheeger bounds,
personalized PageRank.

These support the diffusion-core machinery of Section II-B: conductance
(used in Definition 1 and Lemma 2.1) is sandwiched by the normalized
Laplacian's spectral gap via Cheeger's inequality, and personalized
PageRank is the classic local-clustering primitive of Spielman & Teng
[38] that the paper's diffusion cores build on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .graph import Graph

__all__ = [
    "laplacian",
    "normalized_laplacian",
    "spectral_gap",
    "cheeger_bounds",
    "personalized_pagerank",
    "sweep_cut",
]


def laplacian(graph: Graph) -> sp.csr_matrix:
    """Combinatorial Laplacian ``L = D - A``."""
    return sp.diags(graph.degrees) - graph.adjacency


def normalized_laplacian(graph: Graph) -> sp.csr_matrix:
    """Symmetric normalized Laplacian ``I - D^-1/2 A D^-1/2``.

    Isolated nodes contribute identity rows (their normalized degree
    inverse is taken as 0).
    """
    inv_sqrt = np.divide(1.0, np.sqrt(graph.degrees),
                         out=np.zeros(graph.num_nodes),
                         where=graph.degrees > 0)
    d = sp.diags(inv_sqrt)
    n = graph.num_nodes
    return sp.identity(n, format="csr") - d @ graph.adjacency @ d


def spectral_gap(graph: Graph) -> float:
    """Second-smallest eigenvalue ``lambda_2`` of the normalized Laplacian.

    Computed densely for small graphs (< 500 nodes) and with Lanczos
    iteration otherwise.  Requires a connected graph to be meaningful;
    on disconnected graphs the gap is ~0.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("spectral gap needs at least two nodes")
    lap = normalized_laplacian(graph)
    if n < 500:
        eigenvalues = np.linalg.eigvalsh(lap.toarray())
    else:
        eigenvalues = spla.eigsh(lap, k=2, which="SM",
                                 return_eigenvectors=False)
        eigenvalues = np.sort(eigenvalues)
    return float(np.sort(eigenvalues)[1])


def cheeger_bounds(graph: Graph) -> tuple[float, float]:
    """Cheeger's inequality: ``lambda_2/2 <= phi(G) <= sqrt(2 lambda_2)``.

    Returns the (lower, upper) bounds on the graph's conductance.  Useful
    as a sanity check for Lemma 2.1: a class subgraph with a large
    spectral gap cannot have small conductance, so its diffusion core
    gives weak guarantees.
    """
    gap = spectral_gap(graph)
    return gap / 2.0, float(np.sqrt(2.0 * max(gap, 0.0)))


def personalized_pagerank(graph: Graph, seeds, alpha: float = 0.15,
                          tol: float = 1e-10,
                          max_iter: int = 1000) -> np.ndarray:
    """PPR vector with restart probability ``alpha`` from ``seeds``.

    Power iteration on the lazy walk matrix ``M`` of Section II-A:
    ``p <- alpha * s + (1 - alpha) * M p``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    n = graph.num_nodes
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise ValueError("need at least one seed")
    restart = np.zeros(n)
    restart[seeds] = 1.0 / seeds.size
    m = graph.transition_matrix()
    p = restart.copy()
    for _ in range(max_iter):
        nxt = alpha * restart + (1.0 - alpha) * (m @ p)
        if np.abs(nxt - p).sum() < tol:
            return nxt
        p = nxt
    return p


def sweep_cut(graph: Graph, scores: np.ndarray,
              max_size: int | None = None) -> tuple[np.ndarray, float]:
    """Best-conductance prefix of nodes ordered by ``scores`` (descending).

    The standard sweep used with PPR vectors for local clustering: the
    returned set approximates the low-conductance community around the
    high-score nodes.  Returns ``(node_ids, conductance)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (graph.num_nodes,):
        raise ValueError("scores must assign one value per node")
    order = np.argsort(-scores, kind="stable")
    if max_size is None:
        max_size = graph.num_nodes - 1
    max_size = min(max_size, graph.num_nodes - 1)
    best_set = order[:1]
    best_phi = graph.conductance(best_set)
    for size in range(2, max_size + 1):
        candidate = order[:size]
        phi = graph.conductance(candidate)
        if phi < best_phi:
            best_phi = phi
            best_set = candidate
    return np.sort(best_set), best_phi
