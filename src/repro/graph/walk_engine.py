"""Batched random-walk engine over the CSR adjacency.

The scalar walkers in :mod:`repro.graph.random_walk` advance one walk one
step at a time, which makes Python-loop overhead the dominant cost of every
walk-hungry stage of the pipeline (context sampling ``f_S``, node2vec
features for ``d_omega``, negative pools, generation-time score matrices).
This module advances *all* active walks one step per iteration using only
vectorized NumPy primitives on the CSR arrays:

- first-order steps draw a neighbor offset per walk with a single
  ``rng.integers`` call over the per-walk degrees;
- the node2vec ``p``/``q`` second-order bias is applied by vectorized
  rejection sampling (propose a uniform neighbor, accept with probability
  ``w / w_max``), with a batched exact inverse-CDF fallback advancing all
  walks that exhaust the rejection budget in one pass, so no ``np.isin``
  neighborhood scans are needed;
- adjacency membership for the bias weights uses a binary search over
  globally sorted ``row * n + col`` edge keys (CSR rows are sorted, so the
  flattened key array is too);
- start batching supports the degree-weighted convention of
  :func:`repro.graph.random_walk.sample_walks` (inverse-CDF over the
  cumulative degree vector) and the per-class pools of the label-informed
  sampler ``f_S``.

The scalar :func:`repro.graph.random_walk.node2vec_walk` and
:func:`repro.graph.random_walk.uniform_random_walk` remain as reference
implementations; equivalence tests assert matched transition statistics.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

import numpy as np

from ..obs import trace
from .graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharded import ShardedGraph

__all__ = ["WalkEngine", "ShardedWalkEngine"]


class WalkEngine:
    """Vectorized multi-walk sampler bound to one (immutable) graph.

    Construction is cheap — the engine only views the graph's CSR arrays —
    so :meth:`Graph.walk_engine` caches one instance per graph.  The edge
    key array used for batched adjacency queries is built lazily on the
    first biased (``p != 1`` or ``q != 1``) walk.
    """

    def __init__(self, graph: Graph, max_rejection_rounds: int = 50):
        adj = graph.adjacency
        self.graph = graph
        self.num_nodes = graph.num_nodes
        self.indptr = adj.indptr.astype(np.int64)
        self.indices = adj.indices.astype(np.int64)
        self.degrees = np.diff(self.indptr)
        self.max_rejection_rounds = max_rejection_rounds
        self._cumulative_degrees: np.ndarray | None = None
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Batched adjacency membership
    # ------------------------------------------------------------------
    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted ``row * n + col`` keys of all directed edge slots."""
        if self._edge_keys is None:
            rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                             self.degrees)
            self._edge_keys = rows * self.num_nodes + self.indices
        return self._edge_keys

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized edge membership: ``out[i] = (u[i], v[i]) in E``."""
        keys = np.asarray(u, dtype=np.int64) * self.num_nodes \
            + np.asarray(v, dtype=np.int64)
        table = self.edge_keys
        pos = np.searchsorted(table, keys)
        inside = pos < table.size
        hit = np.zeros(keys.shape, dtype=bool)
        hit[inside] = table[pos[inside]] == keys[inside]
        return hit

    # ------------------------------------------------------------------
    # Start batching
    # ------------------------------------------------------------------
    def sample_starts(self, num: int, rng: np.random.Generator,
                      weight: str = "degree") -> np.ndarray:
        """Draw ``num`` start nodes, degree-weighted by default.

        Degree weighting uses inverse-CDF sampling over the cumulative
        degree vector (a uniform integer in ``[0, vol(G))`` indexes an
        edge slot; its owning row is the start node), matching the
        NetGAN / node2vec "walks per unit of volume" convention of
        :func:`repro.graph.random_walk.sample_walks`.  Graphs with no
        edges fall back to uniform starts.
        """
        if weight not in ("degree", "uniform"):
            raise ValueError("weight must be 'degree' or 'uniform'")
        total = int(self.degrees.sum())
        if weight == "uniform" or total == 0:
            return rng.integers(self.num_nodes, size=num)
        if self._cumulative_degrees is None:
            self._cumulative_degrees = np.cumsum(self.degrees)
        slots = rng.integers(total, size=num)
        return np.searchsorted(self._cumulative_degrees, slots,
                               side="right").astype(np.int64)

    @staticmethod
    def class_batched_starts(pools: Sequence[np.ndarray], num: int,
                             rng: np.random.Generator) -> np.ndarray:
        """Class-uniform batched starts for the label-guided walks of f_S.

        Picks a class uniformly per walk, then a start uniformly from that
        class's (non-empty) pool — all in four vectorized draws.
        """
        if not pools or any(p.size == 0 for p in pools):
            raise ValueError("every class pool must be non-empty")
        sizes = np.array([p.size for p in pools], dtype=np.int64)
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in pools])
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        cls = rng.integers(len(pools), size=num)
        within = rng.integers(sizes[cls])
        return flat[offsets[cls] + within]

    # ------------------------------------------------------------------
    # Walk kernels
    # ------------------------------------------------------------------
    def _uniform_step(self, cur: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Advance every walk one first-order step in place (lazy stall
        at isolated nodes)."""
        deg = self.degrees[cur]
        active = deg > 0
        if active.any():
            src = cur[active]
            offsets = rng.integers(deg[active])
            cur[active] = self.indices[self.indptr[src] + offsets]
        return cur

    def uniform_walks(self, starts: np.ndarray, length: int,
                      rng: np.random.Generator) -> np.ndarray:
        """First-order walks from ``starts``; shape ``(len(starts), length)``."""
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        cur = starts.copy()
        with trace.span("walks.uniform", walks=int(starts.size),
                        length=length):
            for t in range(1, length):
                walks[:, t] = self._uniform_step(cur, rng)
        return walks

    def node2vec_walks(self, starts: np.ndarray, length: int,
                       rng: np.random.Generator,
                       p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Biased second-order walks from ``starts`` (Grover & Leskovec).

        Transition weights from ``cur`` (previous node ``prev``) to a
        neighbor ``x``: ``1/p`` if ``x == prev``, ``1`` if ``x`` is
        adjacent to ``prev``, ``1/q`` otherwise — identical to the scalar
        :func:`repro.graph.random_walk.node2vec_walk` reference.  With
        ``p == q == 1`` the bias vanishes and the engine takes the pure
        first-order fast path.
        """
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        if length == 1:
            return walks
        cur = starts.copy()
        if p == 1.0 and q == 1.0:
            with trace.span("walks.uniform", walks=int(starts.size),
                            length=length):
                for t in range(1, length):
                    walks[:, t] = self._uniform_step(cur, rng)
            return walks
        walks[:, 1] = self._uniform_step(cur, rng)
        inv_p, inv_q = 1.0 / p, 1.0 / q
        w_max = max(inv_p, 1.0, inv_q)
        total_rounds = 0
        exact_fallbacks = 0
        with trace.span("walks.biased", walks=int(starts.size),
                        length=length, p=p, q=q) as sp:
            for t in range(2, length):
                prev = walks[:, t - 2]
                nxt = cur.copy()
                pending = np.flatnonzero(self.degrees[cur] > 0)
                rounds = 0
                while pending.size:
                    if rounds >= self.max_rejection_rounds:
                        with trace.span("walks.exact_fallback",
                                        stragglers=int(pending.size), t=t):
                            self._exact_biased_steps(cur, prev, pending,
                                                     nxt, rng, inv_p, inv_q)
                        exact_fallbacks += 1
                        break
                    src = cur[pending]
                    offsets = rng.integers(self.degrees[src])
                    candidates = self.indices[self.indptr[src] + offsets]
                    weights = np.where(
                        candidates == prev[pending], inv_p,
                        np.where(self.has_edges(candidates, prev[pending]),
                                 1.0, inv_q))
                    accepted = rng.random(pending.size) * w_max < weights
                    nxt[pending[accepted]] = candidates[accepted]
                    pending = pending[~accepted]
                    rounds += 1
                total_rounds += rounds
                cur = nxt
                walks[:, t] = cur
            sp.set(rejection_rounds=total_rounds,
                   exact_fallbacks=exact_fallbacks)
        return walks

    #: peak cells (walks x padded degree) per straggler batch; bounds the
    #: fallback's temporaries at ~8 MB of float64 even near large hubs
    _EXACT_CELL_BUDGET = 1 << 20

    def _exact_biased_steps(self, cur: np.ndarray, prev: np.ndarray,
                            pending: np.ndarray, out: np.ndarray,
                            rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """Batched exact weighted draw for rejection-round stragglers.

        Pending walks advance in vectorized batches: the variable-length
        neighborhoods are padded into a ``(P, max_deg)`` rectangle (zero
        weight past each row's degree, so the row-wise ``cumsum`` partial
        sums are bit-identical to the per-walk ones), each row's CDF is
        normalised, and one uniform per walk selects the neighbor by
        inverse-CDF — the same draw, in the same RNG order, as the
        per-walk :meth:`_exact_biased_steps_scalar` reference, so both
        paths produce identical steps from identical generator state.

        Batches are cut so the rectangle never exceeds
        ``_EXACT_CELL_BUDGET`` cells: a run of hub-adjacent walks cannot
        blow the padded temporaries up to O(P * max_deg) gigabytes the
        way a single all-pending rectangle could.  Walks are consumed in
        ``pending`` order, one uniform each, so the chunking is invisible
        to the RNG stream.
        """
        deg_all = self.degrees[cur[pending]]
        start = 0
        while start < pending.size:
            stop = start + 1
            width = int(deg_all[start])
            while stop < pending.size:
                next_width = max(width, int(deg_all[stop]))
                if (stop - start + 1) * next_width > self._EXACT_CELL_BUDGET:
                    break
                width = next_width
                stop += 1
            self._exact_biased_batch(cur, prev, pending[start:stop], out,
                                     rng, inv_p, inv_q)
            start = stop

    def _exact_biased_batch(self, cur: np.ndarray, prev: np.ndarray,
                            pending: np.ndarray, out: np.ndarray,
                            rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """One padded-rectangle inverse-CDF draw over ``pending`` walks."""
        src = cur[pending]
        lo = self.indptr[src]
        deg = self.degrees[src]  # > 0: pending excludes isolated nodes
        cols = np.arange(int(deg.max()))
        valid = cols[None, :] < deg[:, None]
        # Clamp padded slots to each row's first neighbor; their weight
        # is zeroed below so the value never matters.
        nbrs = self.indices[np.where(valid, lo[:, None] + cols[None, :],
                                     lo[:, None])]
        prev_col = np.broadcast_to(prev[pending][:, None], nbrs.shape)
        weights = np.where(
            nbrs == prev_col, inv_p,
            np.where(self.has_edges(nbrs.ravel(),
                                    prev_col.ravel()).reshape(nbrs.shape),
                     1.0, inv_q))
        weights[~valid] = 0.0
        cdf = np.cumsum(weights, axis=1)
        cdf /= cdf[np.arange(pending.size), deg - 1][:, None]
        cdf[~valid] = np.inf  # padded slots must never be selected
        u = rng.random(pending.size)
        choice = (cdf <= u[:, None]).sum(axis=1)  # searchsorted 'right'
        out[pending] = nbrs[np.arange(pending.size), choice]

    def _exact_biased_steps_scalar(self, cur: np.ndarray, prev: np.ndarray,
                                   pending: np.ndarray, out: np.ndarray,
                                   rng: np.random.Generator,
                                   inv_p: float, inv_q: float) -> None:
        """Per-walk reference for :meth:`_exact_biased_steps`.

        Kept for the equivalence regression test: it consumes one
        uniform per pending walk in the same order as the batched path
        (``n`` scalar ``rng.random()`` calls draw the same doubles as
        one ``rng.random(n)``), so seeded outputs must match exactly.
        """
        for i in pending:
            lo, hi = self.indptr[cur[i]], self.indptr[cur[i] + 1]
            nbrs = self.indices[lo:hi]
            weights = np.where(
                nbrs == prev[i], inv_p,
                np.where(self.has_edges(nbrs,
                                        np.full(nbrs.size, prev[i])),
                         1.0, inv_q))
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            out[i] = nbrs[int(np.searchsorted(cdf, rng.random(),
                                              side="right"))]

    # ------------------------------------------------------------------
    def walks(self, num_walks: int, length: int, rng: np.random.Generator,
              starts: np.ndarray | None = None,
              p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Degree-weighted-start node2vec walks; the engine's front door."""
        if num_walks <= 0:
            raise ValueError("num_walks must be positive")
        if starts is None:
            starts = self.sample_starts(num_walks, rng)
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size != num_walks:
                raise ValueError("starts must have num_walks entries")
        return self.node2vec_walks(starts, length, rng, p=p, q=q)


class ShardedWalkEngine:
    """Out-of-core lock-step walks over a :class:`ShardedGraph`.

    Each step buckets the walk frontier by the shard owning each walk's
    current node (ascending shard id, walks in ascending index within a
    bucket), advances every bucket with the same vectorized kernels as
    :class:`WalkEngine` against that shard's CSR mmap, then lets crossing
    walkers land wherever their sampled neighbor lives — the next step's
    bucketing re-routes them.  Resident memory is therefore
    O(frontier + hot shards), never O(edges).

    **RNG-stream contract.**  One caller-supplied generator is consumed
    per lock-step step.  *First-order* (uniform) steps issue the same
    single ``rng.integers`` call :class:`WalkEngine` makes — over the
    eligible frontier in ascending walk order — before any bucketing;
    only the neighbor gathers are routed per shard.  *Biased* rejection
    rounds run per bucket, ascending shard id with walks in ascending
    index inside each bucket, issuing exactly the vectorized calls
    :class:`WalkEngine` makes (one ``rng.integers`` per proposal round,
    one ``rng.random`` per accept round, one ``rng.random`` per
    exact-fallback batch).  Consequences:

    * :meth:`sample_starts`, :meth:`uniform_walks` and ``p == q == 1``
      :meth:`node2vec_walks` are *byte-identical* to
      :class:`WalkEngine` under **any** shard count (their draws never
      depend on the bucketing);
    * biased walks from a **single-shard** layout have one bucket
      holding all walks in index order, so every draw matches
      :class:`WalkEngine` exactly — byte-identical given equal
      generator state;
    * biased walks from a multi-shard layout are **deterministic**
      given (layout, seed), but changing the shard count regroups the
      rejection draws and legitimately yields different (equally
      distributed) walks.
    """

    def __init__(self, graph: "ShardedGraph",
                 max_rejection_rounds: int = 50):
        self.graph = graph
        self.num_nodes = graph.num_nodes
        # O(nodes) working state lives in memory: the global degree
        # vector and the global CSR row offsets (each shard's slots are
        # the contiguous range indptr[node] - indptr[shard_start], so no
        # walk step ever reads a shard's indptr/degrees off disk — only
        # the O(edges) neighbor ids stay out of core).
        self.degrees = np.array(graph.degrees, dtype=np.int64)
        self.indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(self.degrees, out=self.indptr[1:])
        self._slot_base = self.indptr[graph.shard_starts[:-1]]
        # Narrow sort keys get numpy's radix path — the per-step
        # frontier sort is ~8x cheaper on uint16 than int64.
        self._owner_dtype = (np.uint16 if graph.num_shards
                             <= np.iinfo(np.uint16).max else np.int64)
        self.max_rejection_rounds = max_rejection_rounds
        self._cumulative_degrees: np.ndarray | None = None

    _EXACT_CELL_BUDGET = WalkEngine._EXACT_CELL_BUDGET

    # -- starts (identical math to WalkEngine.sample_starts) -----------
    def sample_starts(self, num: int, rng: np.random.Generator,
                      weight: str = "degree") -> np.ndarray:
        """Degree-weighted starts; byte-identical to the in-memory
        engine for any shard count (only the global degree vector is
        read)."""
        if weight not in ("degree", "uniform"):
            raise ValueError("weight must be 'degree' or 'uniform'")
        total = int(self.degrees.sum())
        if weight == "uniform" or total == 0:
            return rng.integers(self.num_nodes, size=num)
        if self._cumulative_degrees is None:
            self._cumulative_degrees = np.cumsum(self.degrees)
        slots = rng.integers(total, size=num)
        return np.searchsorted(self._cumulative_degrees, slots,
                               side="right").astype(np.int64)

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Batched membership, routed shard-by-shard (RNG-free)."""
        return self.graph.has_edges(u, v)

    # -- frontier bucketing --------------------------------------------
    def _buckets(self, cur: np.ndarray,
                 eligible: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """``(shard_id, walk_indices)`` buckets of the eligible frontier,
        ascending shard id, ascending walk index within each bucket."""
        idx = np.flatnonzero(eligible)
        if idx.size == 0:
            return []
        owners = self.graph.shard_of(cur[idx]).astype(self._owner_dtype,
                                                      copy=False)
        order = np.argsort(owners, kind="stable")
        idx, owners = idx[order], owners[order]
        cuts = np.flatnonzero(np.diff(owners)) + 1
        return [(int(owners[lo]), idx[lo:hi])
                for lo, hi in zip(np.concatenate([[0], cuts]),
                                  np.concatenate([cuts, [idx.size]]))]

    # -- kernels (per-bucket twins of the WalkEngine kernels) ----------
    def _uniform_step(self, cur: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Advance every walk one first-order step in place (lazy stall
        at isolated nodes).

        The offset draw is the *same single* ``rng.integers`` call
        :class:`WalkEngine` makes — over the eligible frontier in walk
        order — and only the neighbor gathers are routed shard by
        shard, so uniform steps are byte-identical to the in-memory
        engine under **any** shard count.
        """
        deg = self.degrees[cur]
        idx = np.flatnonzero(deg > 0)
        if idx.size == 0:
            return cur
        src = cur[idx]
        slots = self.indptr[src] + rng.integers(deg[idx])
        owners = self.graph.shard_of(src).astype(self._owner_dtype,
                                                 copy=False)
        order = np.argsort(owners, kind="stable")
        idx, owners, slots = idx[order], owners[order], slots[order]
        cuts = np.flatnonzero(np.diff(owners)) + 1
        for lo, hi in zip(np.concatenate([[0], cuts]),
                          np.concatenate([cuts, [idx.size]])):
            shard_id = int(owners[lo])
            shard = self.graph.shard(shard_id)
            cur[idx[lo:hi]] = shard.indices[
                slots[lo:hi] - self._slot_base[shard_id]]
        return cur

    def uniform_walks(self, starts: np.ndarray, length: int,
                      rng: np.random.Generator) -> np.ndarray:
        """First-order walks; shape ``(len(starts), length)``."""
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        cur = starts.copy()
        with trace.span("walks.uniform", walks=int(starts.size),
                        length=length, engine="sharded"):
            for t in range(1, length):
                walks[:, t] = self._uniform_step(cur, rng)
        return walks

    def node2vec_walks(self, starts: np.ndarray, length: int,
                       rng: np.random.Generator,
                       p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Biased second-order walks; same weights as the in-memory
        engine, rejection-sampled per shard bucket."""
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        if length == 1:
            return walks
        cur = starts.copy()
        if p == 1.0 and q == 1.0:
            with trace.span("walks.uniform", walks=int(starts.size),
                            length=length, engine="sharded"):
                for t in range(1, length):
                    walks[:, t] = self._uniform_step(cur, rng)
            return walks
        walks[:, 1] = self._uniform_step(cur, rng)
        inv_p, inv_q = 1.0 / p, 1.0 / q
        w_max = max(inv_p, 1.0, inv_q)
        with trace.span("walks.biased", walks=int(starts.size),
                        length=length, p=p, q=q, engine="sharded"):
            for t in range(2, length):
                prev = walks[:, t - 2]
                nxt = cur.copy()
                buckets = self._buckets(cur, self.degrees[cur] > 0)
                with trace.span("walks.frontier", t=t,
                                buckets=len(buckets)):
                    for shard_id, members in buckets:
                        self._biased_bucket_step(
                            self.graph.shard(shard_id), cur, prev,
                            members, nxt, rng, inv_p, inv_q, w_max)
                cur = nxt
                walks[:, t] = cur
        return walks

    def _biased_bucket_step(self, shard, cur: np.ndarray,
                            prev: np.ndarray, pending: np.ndarray,
                            out: np.ndarray, rng: np.random.Generator,
                            inv_p: float, inv_q: float,
                            w_max: float) -> None:
        """Rejection rounds + exact fallback for one shard bucket —
        the same call sequence as the :class:`WalkEngine` biased loop,
        restricted to walks currently inside ``shard``."""
        indices = shard.indices
        base = self._slot_base[shard.shard_id]
        rounds = 0
        while pending.size:
            if rounds >= self.max_rejection_rounds:
                self._exact_biased_steps(shard, cur, prev, pending, out,
                                         rng, inv_p, inv_q)
                break
            src = cur[pending]
            offsets = rng.integers(self.degrees[src])
            candidates = indices[self.indptr[src] - base + offsets]
            weights = np.where(
                candidates == prev[pending], inv_p,
                np.where(self.has_edges(candidates, prev[pending]),
                         1.0, inv_q))
            accepted = rng.random(pending.size) * w_max < weights
            out[pending[accepted]] = candidates[accepted]
            pending = pending[~accepted]
            rounds += 1

    def _exact_biased_steps(self, shard, cur: np.ndarray,
                            prev: np.ndarray, pending: np.ndarray,
                            out: np.ndarray, rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """Chunked exact fallback; same cell budget and chunk cuts as
        :meth:`WalkEngine._exact_biased_steps`."""
        deg_all = self.degrees[cur[pending]]
        start = 0
        while start < pending.size:
            stop = start + 1
            width = int(deg_all[start])
            while stop < pending.size:
                next_width = max(width, int(deg_all[stop]))
                if (stop - start + 1) * next_width > self._EXACT_CELL_BUDGET:
                    break
                width = next_width
                stop += 1
            self._exact_biased_batch(shard, cur, prev,
                                     pending[start:stop], out, rng,
                                     inv_p, inv_q)
            start = stop

    def _exact_biased_batch(self, shard, cur: np.ndarray,
                            prev: np.ndarray, pending: np.ndarray,
                            out: np.ndarray, rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """Padded-rectangle inverse-CDF draw, arithmetic-identical to
        :meth:`WalkEngine._exact_biased_batch` on shard-local arrays."""
        indices = shard.indices
        src = cur[pending]
        lo = self.indptr[src] - self._slot_base[shard.shard_id]
        deg = self.degrees[src]  # > 0: pending excludes isolated nodes
        cols = np.arange(int(deg.max()))
        valid = cols[None, :] < deg[:, None]
        nbrs = indices[np.where(valid, lo[:, None] + cols[None, :],
                                lo[:, None])]
        prev_col = np.broadcast_to(prev[pending][:, None], nbrs.shape)
        weights = np.where(
            nbrs == prev_col, inv_p,
            np.where(self.has_edges(nbrs.ravel(),
                                    prev_col.ravel()).reshape(nbrs.shape),
                     1.0, inv_q))
        weights[~valid] = 0.0
        cdf = np.cumsum(weights, axis=1)
        cdf /= cdf[np.arange(pending.size), deg - 1][:, None]
        cdf[~valid] = np.inf
        u = rng.random(pending.size)
        choice = (cdf <= u[:, None]).sum(axis=1)
        out[pending] = nbrs[np.arange(pending.size), choice]

    # ------------------------------------------------------------------
    def walks(self, num_walks: int, length: int, rng: np.random.Generator,
              starts: np.ndarray | None = None,
              p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Degree-weighted-start node2vec walks; the engine's front door."""
        if num_walks <= 0:
            raise ValueError("num_walks must be positive")
        if starts is None:
            starts = self.sample_starts(num_walks, rng)
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size != num_walks:
                raise ValueError("starts must have num_walks entries")
        return self.node2vec_walks(starts, length, rng, p=p, q=q)
