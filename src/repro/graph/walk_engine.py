"""Batched random-walk engine over the CSR adjacency.

The scalar walkers in :mod:`repro.graph.random_walk` advance one walk one
step at a time, which makes Python-loop overhead the dominant cost of every
walk-hungry stage of the pipeline (context sampling ``f_S``, node2vec
features for ``d_omega``, negative pools, generation-time score matrices).
This module advances *all* active walks one step per iteration using only
vectorized NumPy primitives on the CSR arrays:

- first-order steps draw a neighbor offset per walk with a single
  ``rng.integers`` call over the per-walk degrees;
- the node2vec ``p``/``q`` second-order bias is applied by vectorized
  rejection sampling (propose a uniform neighbor, accept with probability
  ``w / w_max``), with a batched exact inverse-CDF fallback advancing all
  walks that exhaust the rejection budget in one pass, so no ``np.isin``
  neighborhood scans are needed;
- adjacency membership for the bias weights uses a binary search over
  globally sorted ``row * n + col`` edge keys (CSR rows are sorted, so the
  flattened key array is too);
- start batching supports the degree-weighted convention of
  :func:`repro.graph.random_walk.sample_walks` (inverse-CDF over the
  cumulative degree vector) and the per-class pools of the label-informed
  sampler ``f_S``.

The scalar :func:`repro.graph.random_walk.node2vec_walk` and
:func:`repro.graph.random_walk.uniform_random_walk` remain as reference
implementations; equivalence tests assert matched transition statistics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .graph import Graph

__all__ = ["WalkEngine"]


class WalkEngine:
    """Vectorized multi-walk sampler bound to one (immutable) graph.

    Construction is cheap — the engine only views the graph's CSR arrays —
    so :meth:`Graph.walk_engine` caches one instance per graph.  The edge
    key array used for batched adjacency queries is built lazily on the
    first biased (``p != 1`` or ``q != 1``) walk.
    """

    def __init__(self, graph: Graph, max_rejection_rounds: int = 50):
        adj = graph.adjacency
        self.graph = graph
        self.num_nodes = graph.num_nodes
        self.indptr = adj.indptr.astype(np.int64)
        self.indices = adj.indices.astype(np.int64)
        self.degrees = np.diff(self.indptr)
        self.max_rejection_rounds = max_rejection_rounds
        self._cumulative_degrees: np.ndarray | None = None
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Batched adjacency membership
    # ------------------------------------------------------------------
    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted ``row * n + col`` keys of all directed edge slots."""
        if self._edge_keys is None:
            rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                             self.degrees)
            self._edge_keys = rows * self.num_nodes + self.indices
        return self._edge_keys

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized edge membership: ``out[i] = (u[i], v[i]) in E``."""
        keys = np.asarray(u, dtype=np.int64) * self.num_nodes \
            + np.asarray(v, dtype=np.int64)
        table = self.edge_keys
        pos = np.searchsorted(table, keys)
        inside = pos < table.size
        hit = np.zeros(keys.shape, dtype=bool)
        hit[inside] = table[pos[inside]] == keys[inside]
        return hit

    # ------------------------------------------------------------------
    # Start batching
    # ------------------------------------------------------------------
    def sample_starts(self, num: int, rng: np.random.Generator,
                      weight: str = "degree") -> np.ndarray:
        """Draw ``num`` start nodes, degree-weighted by default.

        Degree weighting uses inverse-CDF sampling over the cumulative
        degree vector (a uniform integer in ``[0, vol(G))`` indexes an
        edge slot; its owning row is the start node), matching the
        NetGAN / node2vec "walks per unit of volume" convention of
        :func:`repro.graph.random_walk.sample_walks`.  Graphs with no
        edges fall back to uniform starts.
        """
        if weight not in ("degree", "uniform"):
            raise ValueError("weight must be 'degree' or 'uniform'")
        total = int(self.degrees.sum())
        if weight == "uniform" or total == 0:
            return rng.integers(self.num_nodes, size=num)
        if self._cumulative_degrees is None:
            self._cumulative_degrees = np.cumsum(self.degrees)
        slots = rng.integers(total, size=num)
        return np.searchsorted(self._cumulative_degrees, slots,
                               side="right").astype(np.int64)

    @staticmethod
    def class_batched_starts(pools: Sequence[np.ndarray], num: int,
                             rng: np.random.Generator) -> np.ndarray:
        """Class-uniform batched starts for the label-guided walks of f_S.

        Picks a class uniformly per walk, then a start uniformly from that
        class's (non-empty) pool — all in four vectorized draws.
        """
        if not pools or any(p.size == 0 for p in pools):
            raise ValueError("every class pool must be non-empty")
        sizes = np.array([p.size for p in pools], dtype=np.int64)
        flat = np.concatenate([np.asarray(p, dtype=np.int64) for p in pools])
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        cls = rng.integers(len(pools), size=num)
        within = rng.integers(sizes[cls])
        return flat[offsets[cls] + within]

    # ------------------------------------------------------------------
    # Walk kernels
    # ------------------------------------------------------------------
    def _uniform_step(self, cur: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Advance every walk one first-order step in place (lazy stall
        at isolated nodes)."""
        deg = self.degrees[cur]
        active = deg > 0
        if active.any():
            src = cur[active]
            offsets = rng.integers(deg[active])
            cur[active] = self.indices[self.indptr[src] + offsets]
        return cur

    def uniform_walks(self, starts: np.ndarray, length: int,
                      rng: np.random.Generator) -> np.ndarray:
        """First-order walks from ``starts``; shape ``(len(starts), length)``."""
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        cur = starts.copy()
        for t in range(1, length):
            walks[:, t] = self._uniform_step(cur, rng)
        return walks

    def node2vec_walks(self, starts: np.ndarray, length: int,
                       rng: np.random.Generator,
                       p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Biased second-order walks from ``starts`` (Grover & Leskovec).

        Transition weights from ``cur`` (previous node ``prev``) to a
        neighbor ``x``: ``1/p`` if ``x == prev``, ``1`` if ``x`` is
        adjacent to ``prev``, ``1/q`` otherwise — identical to the scalar
        :func:`repro.graph.random_walk.node2vec_walk` reference.  With
        ``p == q == 1`` the bias vanishes and the engine takes the pure
        first-order fast path.
        """
        if p <= 0 or q <= 0:
            raise ValueError("node2vec parameters p and q must be positive")
        if length < 1:
            raise ValueError("walk length must be >= 1")
        starts = np.asarray(starts, dtype=np.int64)
        walks = np.empty((starts.size, length), dtype=np.int64)
        walks[:, 0] = starts
        if length == 1:
            return walks
        cur = starts.copy()
        walks[:, 1] = self._uniform_step(cur, rng)
        if p == 1.0 and q == 1.0:
            for t in range(2, length):
                walks[:, t] = self._uniform_step(cur, rng)
            return walks
        inv_p, inv_q = 1.0 / p, 1.0 / q
        w_max = max(inv_p, 1.0, inv_q)
        for t in range(2, length):
            prev = walks[:, t - 2]
            nxt = cur.copy()
            pending = np.flatnonzero(self.degrees[cur] > 0)
            rounds = 0
            while pending.size:
                if rounds >= self.max_rejection_rounds:
                    self._exact_biased_steps(cur, prev, pending, nxt, rng,
                                             inv_p, inv_q)
                    break
                src = cur[pending]
                offsets = rng.integers(self.degrees[src])
                candidates = self.indices[self.indptr[src] + offsets]
                weights = np.where(
                    candidates == prev[pending], inv_p,
                    np.where(self.has_edges(candidates, prev[pending]),
                             1.0, inv_q))
                accepted = rng.random(pending.size) * w_max < weights
                nxt[pending[accepted]] = candidates[accepted]
                pending = pending[~accepted]
                rounds += 1
            cur = nxt
            walks[:, t] = cur
        return walks

    #: peak cells (walks x padded degree) per straggler batch; bounds the
    #: fallback's temporaries at ~8 MB of float64 even near large hubs
    _EXACT_CELL_BUDGET = 1 << 20

    def _exact_biased_steps(self, cur: np.ndarray, prev: np.ndarray,
                            pending: np.ndarray, out: np.ndarray,
                            rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """Batched exact weighted draw for rejection-round stragglers.

        Pending walks advance in vectorized batches: the variable-length
        neighborhoods are padded into a ``(P, max_deg)`` rectangle (zero
        weight past each row's degree, so the row-wise ``cumsum`` partial
        sums are bit-identical to the per-walk ones), each row's CDF is
        normalised, and one uniform per walk selects the neighbor by
        inverse-CDF — the same draw, in the same RNG order, as the
        per-walk :meth:`_exact_biased_steps_scalar` reference, so both
        paths produce identical steps from identical generator state.

        Batches are cut so the rectangle never exceeds
        ``_EXACT_CELL_BUDGET`` cells: a run of hub-adjacent walks cannot
        blow the padded temporaries up to O(P * max_deg) gigabytes the
        way a single all-pending rectangle could.  Walks are consumed in
        ``pending`` order, one uniform each, so the chunking is invisible
        to the RNG stream.
        """
        deg_all = self.degrees[cur[pending]]
        start = 0
        while start < pending.size:
            stop = start + 1
            width = int(deg_all[start])
            while stop < pending.size:
                next_width = max(width, int(deg_all[stop]))
                if (stop - start + 1) * next_width > self._EXACT_CELL_BUDGET:
                    break
                width = next_width
                stop += 1
            self._exact_biased_batch(cur, prev, pending[start:stop], out,
                                     rng, inv_p, inv_q)
            start = stop

    def _exact_biased_batch(self, cur: np.ndarray, prev: np.ndarray,
                            pending: np.ndarray, out: np.ndarray,
                            rng: np.random.Generator,
                            inv_p: float, inv_q: float) -> None:
        """One padded-rectangle inverse-CDF draw over ``pending`` walks."""
        src = cur[pending]
        lo = self.indptr[src]
        deg = self.degrees[src]  # > 0: pending excludes isolated nodes
        cols = np.arange(int(deg.max()))
        valid = cols[None, :] < deg[:, None]
        # Clamp padded slots to each row's first neighbor; their weight
        # is zeroed below so the value never matters.
        nbrs = self.indices[np.where(valid, lo[:, None] + cols[None, :],
                                     lo[:, None])]
        prev_col = np.broadcast_to(prev[pending][:, None], nbrs.shape)
        weights = np.where(
            nbrs == prev_col, inv_p,
            np.where(self.has_edges(nbrs.ravel(),
                                    prev_col.ravel()).reshape(nbrs.shape),
                     1.0, inv_q))
        weights[~valid] = 0.0
        cdf = np.cumsum(weights, axis=1)
        cdf /= cdf[np.arange(pending.size), deg - 1][:, None]
        cdf[~valid] = np.inf  # padded slots must never be selected
        u = rng.random(pending.size)
        choice = (cdf <= u[:, None]).sum(axis=1)  # searchsorted 'right'
        out[pending] = nbrs[np.arange(pending.size), choice]

    def _exact_biased_steps_scalar(self, cur: np.ndarray, prev: np.ndarray,
                                   pending: np.ndarray, out: np.ndarray,
                                   rng: np.random.Generator,
                                   inv_p: float, inv_q: float) -> None:
        """Per-walk reference for :meth:`_exact_biased_steps`.

        Kept for the equivalence regression test: it consumes one
        uniform per pending walk in the same order as the batched path
        (``n`` scalar ``rng.random()`` calls draw the same doubles as
        one ``rng.random(n)``), so seeded outputs must match exactly.
        """
        for i in pending:
            lo, hi = self.indptr[cur[i]], self.indptr[cur[i] + 1]
            nbrs = self.indices[lo:hi]
            weights = np.where(
                nbrs == prev[i], inv_p,
                np.where(self.has_edges(nbrs,
                                        np.full(nbrs.size, prev[i])),
                         1.0, inv_q))
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            out[i] = nbrs[int(np.searchsorted(cdf, rng.random(),
                                              side="right"))]

    # ------------------------------------------------------------------
    def walks(self, num_walks: int, length: int, rng: np.random.Generator,
              starts: np.ndarray | None = None,
              p: float = 1.0, q: float = 1.0) -> np.ndarray:
        """Degree-weighted-start node2vec walks; the engine's front door."""
        if num_walks <= 0:
            raise ValueError("num_walks must be positive")
        if starts is None:
            starts = self.sample_starts(num_walks, rng)
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size != num_walks:
                raise ValueError("starts must have num_walks entries")
        return self.node2vec_walks(starts, length, rng, p=p, q=q)
