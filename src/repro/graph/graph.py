"""Core undirected-graph data structure on CSR adjacency.

The paper formalises everything on an undirected graph ``G = (V, E)`` with
adjacency ``A``, degree matrix ``D`` and lazy transition matrix
``M = (A D^{-1} + I) / 2`` (Section II-A).  This module provides an
immutable, validated graph type that the samplers, metrics, and models all
share.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph"]


class Graph:
    """Immutable undirected graph backed by a CSR adjacency matrix.

    Parameters
    ----------
    adjacency:
        Symmetric ``scipy.sparse`` matrix (any format) with binary weights.
        The diagonal is stripped (no self-loops).
    """

    def __init__(self, adjacency: sp.spmatrix):
        adj = sp.csr_matrix(adjacency, dtype=np.float64)
        adj.setdiag(0)
        adj.eliminate_zeros()
        # Hand-built CSR can carry duplicate structural entries, which
        # scipy keeps — they would double-count edges/degrees and break
        # the sorted-indices invariant has_edge's binary search relies
        # on.  Merge them (also sorts indices) before binarising.
        adj.sum_duplicates()
        adj.data[:] = 1.0
        if (abs(adj - adj.T)).nnz != 0:
            raise ValueError("adjacency must be symmetric (undirected graph)")
        self._adj = adj
        self._adj.sort_indices()
        self._degrees = np.asarray(adj.sum(axis=1)).ravel()
        self._walk_engine = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from an iterable of (u, v) pairs (deduplicated)."""
        edges = np.asarray(list(edges), dtype=np.int64)
        if edges.size == 0:
            return cls(sp.csr_matrix((num_nodes, num_nodes)))
        if edges.min() < 0 or edges.max() >= num_nodes:
            raise ValueError("edge endpoint out of range")
        rows = np.concatenate([edges[:, 0], edges[:, 1]])
        cols = np.concatenate([edges[:, 1], edges[:, 0]])
        data = np.ones(rows.size)
        adj = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        return cls(adj)

    @classmethod
    def from_numpy(cls, dense: np.ndarray) -> "Graph":
        """Build a graph from a dense 0/1 adjacency matrix."""
        return cls(sp.csr_matrix(dense))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._adj.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return int(self._adj.nnz // 2)

    @property
    def adjacency(self) -> sp.csr_matrix:
        """The CSR adjacency (treat as read-only)."""
        return self._adj

    @property
    def degrees(self) -> np.ndarray:
        """Vector of node degrees (read-only view)."""
        return self._degrees

    def degree(self, node: int) -> int:
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of ``node``."""
        lo, hi = self._adj.indptr[node], self._adj.indptr[node + 1]
        return self._adj.indices[lo:hi]

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership in O(log deg(u)) via binary search.

        CSR indices are kept sorted per row (``sort_indices`` in the
        constructor), so membership does not need the O(deg) linear scan
        of ``v in neighbors(u)``.
        """
        lo, hi = self._adj.indptr[u], self._adj.indptr[u + 1]
        pos = lo + np.searchsorted(self._adj.indices[lo:hi], v)
        return bool(pos < hi and self._adj.indices[pos] == v)

    def walk_engine(self) -> "WalkEngine":
        """Cached batched walk engine bound to this graph.

        The graph is immutable, so one engine (and its lazily built edge
        key table) is shared by every walk-hungry consumer.
        """
        if self._walk_engine is None:
            from .walk_engine import WalkEngine

            self._walk_engine = WalkEngine(self)
        return self._walk_engine

    def edges(self) -> np.ndarray:
        """Array of shape (m, 2) with each undirected edge once (u < v)."""
        coo = sp.triu(self._adj, k=1).tocoo()
        return np.column_stack([coo.row, coo.col]).astype(np.int64)

    def density(self) -> float:
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (self.num_nodes == other.num_nodes
                and (self._adj != other._adj).nnz == 0)

    # ------------------------------------------------------------------
    # Spectral / walk matrices
    # ------------------------------------------------------------------
    def transition_matrix(self) -> sp.csr_matrix:
        """Lazy random-walk matrix ``M = (A D^{-1} + I) / 2`` (Section II-A).

        Column-stochastic: column ``x`` is the one-step distribution of a
        walk at ``x``.  Isolated nodes self-loop with probability 1.
        """
        inv_deg = np.divide(1.0, self._degrees,
                            out=np.zeros_like(self._degrees),
                            where=self._degrees > 0)
        a_dinv = self._adj @ sp.diags(inv_deg)
        m = (a_dinv + sp.identity(self.num_nodes, format="csr")) / 2.0
        # Isolated nodes: A D^-1 column is zero, so M column sums to 1/2.
        # Give them a full self-loop instead so M stays column-stochastic;
        # the correction is a sparse diagonal, no Python loop needed.
        isolated = self._degrees == 0
        if isolated.any():
            m = sp.csr_matrix(m + sp.diags(np.where(isolated, 0.5, 0.0)))
        return m

    def volume(self, nodes: Sequence[int] | np.ndarray) -> int:
        """Sum of degrees of ``nodes`` (the graph-cut notion of volume)."""
        return int(self._degrees[np.asarray(nodes, dtype=np.int64)].sum())

    def cut_size(self, nodes: Sequence[int] | np.ndarray) -> int:
        """Number of edges with exactly one endpoint in ``nodes``."""
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[np.asarray(nodes, dtype=np.int64)] = True
        coo = sp.triu(self._adj, k=1).tocoo()
        return int(np.count_nonzero(mask[coo.row] != mask[coo.col]))

    def conductance(self, nodes: Sequence[int] | np.ndarray) -> float:
        """Conductance ``phi(S) = cut(S) / min(vol(S), vol(V-S))``.

        Returns 1.0 for degenerate sets (empty, full, or zero volume),
        matching the convention that such sets give no diffusion guarantee.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0 or nodes.size == self.num_nodes:
            return 1.0
        vol_s = self.volume(nodes)
        vol_rest = int(self._degrees.sum()) - vol_s
        denom = min(vol_s, vol_rest)
        if denom == 0:
            return 1.0
        return self.cut_size(nodes) / denom

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Sequence[int] | np.ndarray) -> "Graph":
        """Induced subgraph; node ids are compacted to 0..len(nodes)-1."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.unique(nodes).size != nodes.size:
            raise ValueError("subgraph nodes must be unique")
        sub = self._adj[nodes][:, nodes]
        return Graph(sub)

    def ego_network(self, anchors: Sequence[int] | np.ndarray) -> tuple["Graph", np.ndarray]:
        """1-hop ego network around ``anchors``.

        The paper's protected-group discrepancy (Eq. 16) is measured on
        "the 1-hop ego network with the anchor nodes from the protected
        group vertices".  Returns the induced subgraph and the original
        node ids it covers (anchors plus their neighbors, sorted).
        """
        anchors = np.asarray(anchors, dtype=np.int64)
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[anchors] = True
        for a in anchors:
            mask[self.neighbors(a)] = True
        nodes = np.flatnonzero(mask)
        return self.subgraph(nodes), nodes

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (for cross-checks in tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edges()))
        return g
