"""Model registry: one table of generators, profiles and display names.

Before this module existed the repo carried three divergent model tables
(``cli._BASELINES``, ``benchmarks.common.make_model`` and ad-hoc
constructor calls in the examples), each with its own hyperparameter
budget.  The registry replaces all of them: every generator is registered
once under a canonical lowercase name together with named hyperparameter
**profiles**:

``"paper"``
    paper-faithful defaults (the constructor / ``FairGenConfig`` defaults);
``"bench"``
    the CPU-scale budget used by every ``benchmarks/bench_*.py`` file;
``"smoke"``
    a seconds-scale budget for CI smoke tests and quick CLI runs.

Usage::

    from repro.registry import create_model, model_names

    model = create_model("fairgen", profile="bench")
    model = create_model("netgan", profile="smoke",
                         overrides={"iterations": 2})

New generators self-register with the decorator::

    @register_model("mymodel", display_name="MyModel",
                    profiles={"paper": {}, "bench": {"epochs": 10},
                              "smoke": {"epochs": 2}})
    def _build_mymodel(**params):
        return MyModel(**params)

Display names (``FairGen-w/o-SPL``, ``TagGen``, ...) are registered as
aliases, so benchmark tables and the CLI resolve to the same entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from .core import FairGenConfig, make_fairgen_variant
from .models import (BAModel, ERModel, GAEModel, GraphGenerativeModel,
                     GraphRNN, NetGAN, TagGen)

__all__ = ["ModelEntry", "register_model", "get_entry", "create_model",
           "model_names", "benchmark_model_names", "display_name",
           "profile_names", "PROFILES"]

#: the named hyperparameter profiles every entry must provide
PROFILES = ("paper", "bench", "smoke")


@dataclass(frozen=True)
class ModelEntry:
    """One registered generator: factory plus named parameter profiles."""

    name: str                       #: canonical lowercase id ("fairgen-r")
    display_name: str               #: benchmark-table name ("FairGen-R")
    factory: Callable[..., GraphGenerativeModel]
    profiles: Mapping[str, Mapping[str, object]]
    #: True when ``fit`` consumes :class:`~repro.experiments.Supervision`
    #: (labels / protected mask); unsupervised baselines ignore it.
    needs_supervision: bool = False
    #: included in the paper's nine-method benchmark scoreboard
    benchmarked: bool = True
    aliases: tuple[str, ...] = field(default=())

    def params(self, profile: str = "paper",
               overrides: Mapping[str, object] | None = None) -> dict:
        """Resolved constructor parameters for ``profile`` + overrides."""
        if profile not in self.profiles:
            raise KeyError(f"model {self.name!r} has no profile "
                           f"{profile!r}; available: "
                           f"{sorted(self.profiles)}")
        params = dict(self.profiles[profile])
        params.update(overrides or {})
        return params

    def build(self, profile: str = "paper",
              overrides: Mapping[str, object] | None = None
              ) -> GraphGenerativeModel:
        """Construct a fresh model under the named profile."""
        return self.factory(**self.params(profile, overrides))


_REGISTRY: dict[str, ModelEntry] = {}
_ALIASES: dict[str, str] = {}


def register_model(name: str, *, display_name: str | None = None,
                   profiles: Mapping[str, Mapping[str, object]] | None = None,
                   aliases: tuple[str, ...] = (),
                   needs_supervision: bool = False,
                   benchmarked: bool = True):
    """Decorator registering a model factory under ``name``.

    The decorated callable receives the resolved profile parameters as
    keyword arguments and returns a fresh
    :class:`~repro.models.GraphGenerativeModel`.
    """
    def decorator(factory):
        entry = ModelEntry(
            name=name,
            display_name=display_name or name,
            factory=factory,
            profiles=dict(profiles or {p: {} for p in PROFILES}),
            needs_supervision=needs_supervision,
            benchmarked=benchmarked,
            aliases=tuple(aliases))
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        missing = [p for p in PROFILES if p not in entry.profiles]
        if missing:
            raise ValueError(f"model {name!r} is missing profiles {missing}")
        # Validate every alias before committing anything, so a
        # collision cannot shadow an existing model or leave a
        # half-registered entry behind.
        alias_keys = []
        for alias in (entry.display_name, *entry.aliases):
            key = alias.lower()
            if key == name:
                continue
            if key in _REGISTRY or _ALIASES.get(key, name) != name:
                raise ValueError(f"alias {alias!r} of model {name!r} "
                                 "collides with an existing registration")
            alias_keys.append(key)
        _REGISTRY[name] = entry
        for key in alias_keys:
            _ALIASES[key] = name
        return factory
    return decorator


def get_entry(name: str) -> ModelEntry:
    """Resolve a canonical name, display name or alias to its entry.

    Canonical names win over aliases, so no registration can reroute an
    existing model id.
    """
    key = name.lower()
    if key not in _REGISTRY:
        key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; registered: "
                       f"{model_names()}")
    return _REGISTRY[key]


def create_model(name: str, profile: str = "paper",
                 overrides: Mapping[str, object] | None = None
                 ) -> GraphGenerativeModel:
    """Build a fresh model by registry name under a profile."""
    return get_entry(name).build(profile, overrides)


def model_names() -> list[str]:
    """All canonical model names, in registration order."""
    return list(_REGISTRY)


def benchmark_model_names() -> list[str]:
    """Display names of the paper's benchmark scoreboard methods."""
    return [e.display_name for e in _REGISTRY.values() if e.benchmarked]


def display_name(name: str) -> str:
    """Benchmark-table display name for any resolvable model name."""
    return get_entry(name).display_name


def profile_names() -> tuple[str, ...]:
    return PROFILES


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------

#: CPU-scale FairGen budget shared by all benchmarks (formerly
#: ``benchmarks.common.bench_fairgen_config``).
_FAIRGEN_BENCH = dict(
    walk_length=10, walks_per_cycle=96, self_paced_cycles=4,
    generator_steps_per_cycle=80, generator_batch=32, model_dim=32,
    num_layers=1, feature_dim=32, batch_iterations=4, batch_size=128,
    discriminator_lr=0.05, generation_walk_factor=12)

#: seconds-scale FairGen budget for smoke tests and CLI quick runs
_FAIRGEN_SMOKE = dict(
    walk_length=8, walks_per_cycle=32, self_paced_cycles=2,
    generator_steps_per_cycle=2, generator_batch=16, model_dim=16,
    num_layers=1, feature_dim=16, batch_iterations=2, batch_size=64,
    discriminator_lr=0.05, generation_walk_factor=6)

_FAIRGEN_PROFILES = {"paper": {}, "bench": _FAIRGEN_BENCH,
                     "smoke": _FAIRGEN_SMOKE}


def _register_fairgen_variants() -> None:
    variants = (
        ("fairgen", "full", "FairGen", ()),
        ("fairgen-r", "no-sampling", "FairGen-R", ("fairgen-no-sampling",)),
        ("fairgen-no-spl", "no-spl", "FairGen-w/o-SPL", ()),
        ("fairgen-no-parity", "no-parity", "FairGen-w/o-Parity", ()),
    )
    for name, variant, display, aliases in variants:
        def factory(_variant=variant, **params):
            return make_fairgen_variant(_variant, FairGenConfig(**params))
        register_model(name, display_name=display, aliases=aliases,
                       profiles=_FAIRGEN_PROFILES,
                       needs_supervision=True)(factory)


_register_fairgen_variants()


@register_model("er", display_name="ER",
                profiles={"paper": {}, "bench": {}, "smoke": {}})
def _build_er(**params):
    return ERModel(**params)


@register_model("ba", display_name="BA",
                profiles={"paper": {}, "bench": {}, "smoke": {}})
def _build_ba(**params):
    return BAModel(**params)


@register_model("gae", display_name="GAE", profiles={
    "paper": {},
    "bench": dict(epochs=40, hidden=32, latent=16),
    "smoke": dict(epochs=8, hidden=16, latent=8)})
def _build_gae(**params):
    return GAEModel(**params)


@register_model("netgan", display_name="NetGAN", profiles={
    "paper": {},
    "bench": dict(iterations=20, batch_size=24, walk_length=10,
                  hidden_dim=32, generation_walk_factor=12),
    "smoke": dict(iterations=4, batch_size=12, walk_length=8,
                  generation_walk_factor=8)})
def _build_netgan(**params):
    return NetGAN(**params)


@register_model("taggen", display_name="TagGen", profiles={
    "paper": {},
    "bench": dict(epochs=10, walks_per_epoch=128, dim=32, num_layers=1,
                  walk_length=10, generation_walk_factor=12),
    "smoke": dict(epochs=2, walks_per_epoch=48, dim=16, num_layers=1,
                  walk_length=8, generation_walk_factor=6)})
def _build_taggen(**params):
    return TagGen(**params)


@register_model("graphrnn", display_name="GraphRNN", benchmarked=False,
                profiles={
    "paper": {},
    "bench": dict(epochs=30),
    "smoke": dict(epochs=4, hidden_dim=16)})
def _build_graphrnn(**params):
    return GraphRNN(**params)
