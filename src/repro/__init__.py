"""FairGen reproduction: fairness-aware graph generation (ICDE 2024).

Public API overview
-------------------
``repro.core``      — the FairGen model (:class:`~repro.core.FairGen`),
                      its configuration and ablation factory.
``repro.models``    — baselines: ER, BA, GAE, NetGAN, TagGen.
``repro.graph``     — graph substrate: :class:`~repro.graph.Graph`, walks,
                      diffusion cores, the nine Table II metrics.
``repro.embedding`` — node2vec, SGNS, t-SNE, separability scores.
``repro.data``      — the seven benchmark datasets (synthetic stand-ins).
``repro.eval``      — discrepancy (Eqs. 15/16), classification,
                      data augmentation.
``repro.nn``        — the NumPy autograd substrate everything trains on.

Quickstart::

    import numpy as np
    from repro.core import FairGen, FairGenConfig
    from repro.data import load_dataset

    data = load_dataset("BLOG")
    rng = np.random.default_rng(0)
    nodes, classes = data.labeled_few_shot(3, rng)
    model = FairGen(FairGenConfig(self_paced_cycles=2))
    model.fit(data.graph, rng, labeled_nodes=nodes, labeled_classes=classes,
              protected_mask=data.protected_mask)
    synthetic = model.generate(rng)
"""

from . import core, data, embedding, eval, graph, models, nn, utils

__version__ = "1.0.0"

__all__ = ["core", "data", "embedding", "eval", "graph", "models", "nn",
           "utils", "__version__"]
