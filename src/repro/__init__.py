"""FairGen reproduction: fairness-aware graph generation (ICDE 2024).

Public API overview
-------------------
``repro.core``      — the FairGen model (:class:`~repro.core.FairGen`),
                      its configuration and ablation factory.
``repro.models``    — baselines: ER, BA, GAE, NetGAN, TagGen.
``repro.graph``     — graph substrate: :class:`~repro.graph.Graph`, walks,
                      diffusion cores, the nine Table II metrics.
``repro.embedding`` — node2vec, SGNS, t-SNE, separability scores.
``repro.data``      — the seven benchmark datasets (synthetic stand-ins).
``repro.eval``      — discrepancy (Eqs. 15/16), classification,
                      data augmentation.
``repro.nn``        — the NumPy autograd substrate everything trains on.
``repro.obs``       — observability: metrics registry (Prometheus /
                      JSON snapshots) + Chrome-trace span tracing.
``repro.train``     — the shared Trainer loop: callbacks, grad clipping,
                      loss-history contract and checkpoint/resume.
``repro.registry``  — the model registry: every generator under a
                      canonical name with paper/bench/smoke profiles.
``repro.experiments`` — the spec-driven experiment API
                      (:class:`~repro.experiments.Runner`) every harness
                      routes through.

Quickstart::

    from repro.experiments import ExperimentSpec, Runner

    runner = Runner(cache_dir=".repro_cache")
    result = runner.run(ExperimentSpec(model="fairgen", dataset="BLOG",
                                       profile="smoke", seed=0))
    synthetic = result.generated
"""

from . import (core, data, embedding, eval, experiments, graph, models, nn,
               obs, registry, train, utils)

__version__ = "1.3.0"

__all__ = ["core", "data", "embedding", "eval", "experiments", "graph",
           "models", "nn", "obs", "registry", "train", "utils",
           "__version__"]
