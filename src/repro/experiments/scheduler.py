"""Distributed sweep scheduler: a filesystem-backed, fault-tolerant
job queue drained cooperatively by any number of worker processes.

The queue needs nothing but a directory every worker can reach — a
local path for in-host fleets, a shared mount for multi-host ones.  A
second machine pointing at the same ``queue_dir`` + ``cache_dir`` just
works: specs, graphs, metrics and fitted models all serialize through
the Runner's npz+JSON artifact cache, so the queue only has to move
*job descriptions*; results travel through the shared cache and a
finished sweep is a warm cache replayable with zero refits.

Queue directory layout
----------------------
::

    queue_dir/
      queue.json          queue config (lease timeout, retry budget)
      pending/<id>.json   submitted jobs awaiting a worker
      claimed/<id>.json   jobs some worker is executing right now
      done/<id>.json      completed jobs (worker, timings, attempts)
      failed/<id>.json    terminally failed jobs (+ worker traceback)
      leases/<id>.json    heartbeat file of each claimed job
      fits.log            one line per actual model fit (dedup audit)
      tmp/                staging area for atomic writes

A job moves between states via ``os.rename``, which is atomic on POSIX:
whoever renames ``pending/<id>.json`` into ``claimed/`` owns the job,
so two workers can never execute the same job concurrently.  Every
write lands in ``tmp/`` first and is renamed into place, so readers
never observe partial JSON.

Fault tolerance
---------------
A claiming worker writes ``leases/<id>.json`` and re-stamps it every
``heartbeat_interval`` seconds from a background thread.  If a worker
dies (crash, SIGKILL, lost host), its heartbeat stops; any worker's
:meth:`JobQueue.recover` sweep then finds the stale lease, and either
requeues the job (``claimed/`` → ``pending/``) or — once the job has
been attempted ``max_retries + 1`` times — moves it to ``failed/``
with the recorded reason.  A worker whose lease was revoked while it
was still (slowly) running discovers this at completion time: the
ownership check fails and its result is discarded — the artifacts it
wrote to the shared cache are deterministic, so the retry produces the
identical bytes anyway.

``fits.log`` receives one append per *actual* model fit (cache replays
don't count).  Appends of one short line are atomic under ``O_APPEND``,
so the log doubles as the duplicate-fit audit trail used by the sweep
acceptance tests.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from .runner import ExperimentSpec, Runner
from .supervision import FEW_SHOT_PER_CLASS

__all__ = ["Job", "JobQueue", "QueueError", "Worker", "LocalWorkerPool",
           "run_worker"]

#: bump when the on-disk queue layout changes incompatibly
QUEUE_FORMAT = "sweep-queue-v1"

#: default seconds without a heartbeat before a lease counts as expired
DEFAULT_LEASE_TIMEOUT = 60.0

#: default number of *re*-tries after the first attempt of a job
DEFAULT_MAX_RETRIES = 2

_STATES = ("pending", "claimed", "done", "failed")


class QueueError(RuntimeError):
    """A queue-level failure (failed jobs, dead worker fleet, ...)."""


@dataclass(frozen=True)
class Job:
    """One claimed unit of work: a spec plus its execution options."""

    id: str
    spec: ExperimentSpec
    need_model: bool = False
    with_metrics: bool = False
    #: execution attempts started so far, including the current one
    attempts: int = 1


def _spec_payload(spec: ExperimentSpec) -> dict:
    return dataclasses.asdict(spec)


def _spec_from_payload(payload: dict) -> ExperimentSpec:
    return ExperimentSpec(model=payload["model"], dataset=payload["dataset"],
                          profile=payload["profile"],
                          seed=int(payload["seed"]),
                          overrides=[tuple(kv) for kv in payload["overrides"]])


class JobQueue:
    """Filesystem job queue shared by submitters and workers.

    Parameters
    ----------
    queue_dir:
        Directory holding the queue (created on first use).  All
        cooperating processes — local or on other hosts — must see the
        same path contents.
    lease_timeout:
        Seconds a claimed job may go without a heartbeat before any
        worker's :meth:`recover` sweep requeues it.  ``None`` reads the
        value recorded in ``queue.json`` (or the default for a fresh
        queue); passing a value records it for every later opener, so
        the whole fleet agrees on expiry.
    max_retries:
        How many times an expired or crashed job is re-queued before it
        moves to ``failed/`` — a job is attempted at most
        ``max_retries + 1`` times.
    """

    def __init__(self, queue_dir: str | os.PathLike,
                 lease_timeout: float | None = None,
                 max_retries: int | None = None,
                 registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._m_submitted = registry.counter(
            "jobqueue_submitted_total", "Jobs enqueued")
        self._m_claims = registry.counter(
            "jobqueue_claims_total", "Successful job claims")
        self._m_requeues = registry.counter(
            "jobqueue_requeues_total", "Attempts returned to pending")
        self._m_lease_expiries = registry.counter(
            "jobqueue_lease_expiries_total",
            "Leases found expired by recover()")
        self._m_completions = registry.counter(
            "jobqueue_completions_total", "Jobs completed")
        self._m_failures = registry.counter(
            "jobqueue_failures_total", "Jobs terminally failed")
        self._m_depth = registry.gauge(
            "jobqueue_depth", "Jobs per state at last scan")
        self.queue_dir = Path(queue_dir).expanduser()
        for state in (*_STATES, "leases", "tmp"):
            (self.queue_dir / state).mkdir(parents=True, exist_ok=True)
        self._tmp_serial = 0
        config = self._read_json(self.queue_dir / "queue.json") or {}
        if config and config.get("format") != QUEUE_FORMAT:
            raise QueueError(
                f"{self.queue_dir} holds a {config.get('format')!r} queue; "
                f"this build speaks {QUEUE_FORMAT!r}")
        if lease_timeout is None:
            lease_timeout = config.get("lease_timeout", DEFAULT_LEASE_TIMEOUT)
        if max_retries is None:
            max_retries = config.get("max_retries", DEFAULT_MAX_RETRIES)
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        if (config.get("lease_timeout") != self.lease_timeout
                or config.get("max_retries") != self.max_retries):
            self._write_json(self.queue_dir / "queue.json", {
                "format": QUEUE_FORMAT,
                "lease_timeout": self.lease_timeout,
                "max_retries": self.max_retries})

    # ------------------------------------------------------------------
    # Low-level atomic file helpers
    # ------------------------------------------------------------------
    def _path(self, state: str, job_id: str) -> Path:
        return self.queue_dir / state / f"{job_id}.json"

    def _write_json(self, path: Path, payload: dict) -> None:
        """Write via tmp/ + rename so readers never see partial JSON."""
        self._tmp_serial += 1
        tmp = (self.queue_dir / "tmp"
               / f"{os.getpid()}-{self._tmp_serial}-{path.name}")
        tmp.write_text(json.dumps(payload, indent=2, default=str))
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        """Best-effort read; concurrent moves/partial files read as None."""
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _job_ids(self, state: str) -> list[str]:
        names = os.listdir(self.queue_dir / state)
        return sorted(n[:-5] for n in names if n.endswith(".json"))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, specs: Iterable[ExperimentSpec], *,
               need_model: bool = False,
               with_metrics: bool = False) -> list[str]:
        """Enqueue one job per distinct spec; returns the job ids.

        The job id is the spec's cache key, so submission is idempotent:
        duplicate specs in one batch collapse to one job, and a spec
        whose job is already pending, claimed or done is not enqueued
        again — resubmitting a finished sweep is a no-op whose results
        replay from the warm cache.  A spec whose job previously failed
        *terminally* is re-enqueued with a fresh retry budget (its old
        traceback moves to the new job's ``errors`` history): explicit
        resubmission is the operator's "the environment is fixed, try
        again", so one bad night must not poison the queue forever.
        """
        ids: list[str] = []
        for spec in specs:
            job_id = spec.cache_key()
            if job_id in ids:
                continue
            ids.append(job_id)
            if any(self._path(state, job_id).exists()
                   for state in ("pending", "claimed", "done")):
                continue
            prior_errors = []
            failed_path = self._path("failed", job_id)
            if failed_path.exists():
                prior = self._read_json(failed_path) or {}
                prior_errors = prior.get("errors", [])
            payload = {
                "id": job_id,
                "spec": _spec_payload(spec),
                "need_model": bool(need_model),
                "with_metrics": bool(with_metrics),
                "attempts": 0,
                "submitted_at": time.time(),
            }
            if prior_errors:
                payload["errors"] = prior_errors
            # Stage in tmp/, then rename into pending/ — a concurrent
            # submitter racing on the same spec just overwrites the file
            # with identical content.
            self._tmp_serial += 1
            tmp = (self.queue_dir / "tmp"
                   / f"{os.getpid()}-{self._tmp_serial}-{job_id}.json")
            tmp.write_text(json.dumps(payload, indent=2, default=str))
            os.replace(tmp, self._path("pending", job_id))
            failed_path.unlink(missing_ok=True)
            self._m_submitted.inc()
        return ids

    # ------------------------------------------------------------------
    # Worker-side protocol: claim / heartbeat / complete / fail
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> Job | None:
        """Atomically take one pending job, or ``None`` if none is free.

        The ``pending/ → claimed/`` rename is the mutual-exclusion
        point: losing the rename race just means another worker owns
        that job, so the scan moves on to the next file.
        """
        for job_id in self._job_ids("pending"):
            src = self._path("pending", job_id)
            dst = self._path("claimed", job_id)
            try:
                os.rename(src, dst)
            except FileNotFoundError:
                continue  # another worker won this job
            # rename preserves the submit-time mtime, but recover()'s
            # no-lease grace period measures from the claimed file's
            # mtime — touch it immediately so a job that waited in
            # pending/ longer than lease_timeout is not snatched back
            # in the instant before the lease lands.
            os.utime(dst)
            payload = self._read_json(dst)
            if payload is None:  # unreadable job file: fail it terminally
                self._write_json(dst, {"id": job_id, "failure":
                                       "unreadable job file"})
                os.replace(dst, self._path("failed", job_id))
                continue
            payload["attempts"] = int(payload.get("attempts", 0)) + 1
            self._write_lease(job_id, worker_id, payload["attempts"])
            self._write_json(dst, payload)
            self._m_claims.inc()
            return Job(id=job_id,
                       spec=_spec_from_payload(payload["spec"]),
                       need_model=bool(payload.get("need_model")),
                       with_metrics=bool(payload.get("with_metrics")),
                       attempts=payload["attempts"])
        return None

    def _write_lease(self, job_id: str, worker_id: str,
                     attempt: int) -> None:
        self._write_json(self.queue_dir / "leases" / f"{job_id}.json", {
            "job": job_id, "worker": worker_id, "attempt": attempt,
            "heartbeat_at": time.time()})

    def _owns_lease(self, job_id: str, worker_id: str) -> dict | None:
        lease = self._read_json(self.queue_dir / "leases" / f"{job_id}.json")
        if lease is None or lease.get("worker") != worker_id:
            return None
        return lease

    def heartbeat(self, job_id: str, worker_id: str) -> bool:
        """Re-stamp the lease; ``False`` means the lease was revoked
        (the job expired and was requeued under another worker) and the
        caller's eventual result will be discarded."""
        lease = self._owns_lease(job_id, worker_id)
        if lease is None:
            return False
        lease["heartbeat_at"] = time.time()
        self._write_json(self.queue_dir / "leases" / f"{job_id}.json", lease)
        return True

    def complete(self, job_id: str, worker_id: str,
                 result: dict | None = None) -> bool:
        """Move a claimed job to ``done/`` with its result payload.

        Returns ``False`` when the caller no longer owns the job (its
        lease expired and the job was requeued) — the result is then
        dropped; the shared artifact cache already holds the worker's
        (deterministic) outputs, so nothing is lost.
        """
        if self._owns_lease(job_id, worker_id) is None:
            return False
        src = self._path("claimed", job_id)
        dst = self._path("done", job_id)
        try:
            os.rename(src, dst)
        except FileNotFoundError:
            return False
        payload = self._read_json(dst) or {"id": job_id}
        payload["result"] = result or {}
        payload["worker"] = worker_id
        payload["completed_at"] = time.time()
        self._write_json(dst, payload)
        (self.queue_dir / "leases" / f"{job_id}.json").unlink(missing_ok=True)
        self._m_completions.inc()
        return True

    def fail(self, job_id: str, worker_id: str, message: str) -> str:
        """Record a failed attempt; requeue or terminally fail the job.

        Returns ``"requeued"``, ``"failed"``, or ``"lost"`` (the lease
        was already revoked, nothing to do).
        """
        if self._owns_lease(job_id, worker_id) is None:
            return "lost"
        payload = self._read_json(self._path("claimed", job_id))
        if payload is None:
            return "lost"
        attempts = int(payload.get("attempts", 1))
        payload.setdefault("errors", []).append(
            {"worker": worker_id, "attempt": attempts, "error": message})
        if attempts > self.max_retries:
            return self._finalise(job_id, payload, message)
        self._write_json(self._path("claimed", job_id), payload)
        (self.queue_dir / "leases" / f"{job_id}.json").unlink(missing_ok=True)
        try:
            os.rename(self._path("claimed", job_id),
                      self._path("pending", job_id))
        except FileNotFoundError:
            return "lost"
        self._m_requeues.inc(reason="error")
        return "requeued"

    def _finalise(self, job_id: str, payload: dict, message: str) -> str:
        """Terminal transition ``claimed/ → failed/`` with the reason."""
        payload["failure"] = message
        payload["failed_at"] = time.time()
        self._write_json(self._path("claimed", job_id), payload)
        (self.queue_dir / "leases" / f"{job_id}.json").unlink(missing_ok=True)
        try:
            os.rename(self._path("claimed", job_id),
                      self._path("failed", job_id))
        except FileNotFoundError:
            return "lost"
        self._m_failures.inc()
        return "failed"

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def recover(self) -> list[str]:
        """Requeue every claimed job whose lease expired.

        Any process may run this — workers do before each claim, and
        sweep submitters while polling — so a dead worker's jobs return
        to ``pending/`` after at most ``lease_timeout`` seconds without
        the dead worker's cooperation.  Jobs out of retry budget move to
        ``failed/`` instead.  Returns the ids of requeued jobs.
        """
        now = time.time()
        requeued: list[str] = []
        for job_id in self._job_ids("claimed"):
            lease_path = self.queue_dir / "leases" / f"{job_id}.json"
            lease = self._read_json(lease_path)
            if lease is not None:
                if now - float(lease.get("heartbeat_at", 0)) \
                        <= self.lease_timeout:
                    continue  # heartbeat is fresh; worker is alive
            else:
                # Claim crashed between the rename and the lease write;
                # grant the claimed file itself a lease-length grace.
                try:
                    mtime = self._path("claimed", job_id).stat().st_mtime
                except FileNotFoundError:
                    continue  # completed/failed under us
                if now - mtime <= self.lease_timeout:
                    continue
            payload = self._read_json(self._path("claimed", job_id))
            if payload is None:
                continue  # raced with a completion; nothing to recover
            self._m_lease_expiries.inc()
            attempts = int(payload.get("attempts", 1))
            note = (f"lease expired after attempt {attempts} "
                    f"(no heartbeat for > {self.lease_timeout:g}s)")
            payload.setdefault("errors", []).append(
                {"worker": (lease or {}).get("worker"),
                 "attempt": attempts, "error": note})
            if attempts > self.max_retries:
                self._finalise(job_id, payload, note)
                continue
            self._write_json(self._path("claimed", job_id), payload)
            # Unlink the stale lease *before* the rename: once the job
            # is pending again a new claimer writes a fresh lease, which
            # this sweep must not clobber.
            lease_path.unlink(missing_ok=True)
            try:
                os.rename(self._path("claimed", job_id),
                          self._path("pending", job_id))
            except FileNotFoundError:
                continue  # the (slow) owner completed it after all
            self._m_requeues.inc(reason="lease_expired")
            requeued.append(job_id)
        return requeued

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Number of jobs per state."""
        counts = {state: len(self._job_ids(state)) for state in _STATES}
        for state, count in counts.items():
            self._m_depth.set(count, state=state)
        return counts

    def status(self) -> dict:
        """Read-only dashboard snapshot: state counts + per-job detail.

        Performs no recovery and no writes, so it is safe to point at a
        live queue from any host (``repro sweep --status <queue_dir>``).
        Each job row carries its state, attempt/retry counters, the
        owning worker and lease age for claimed jobs (flagged when the
        lease has already expired), and the failure's final line for
        terminally failed jobs.  Lease ages use this host's clock — the
        same loose-synchronisation assumption the lease protocol itself
        makes.
        """
        now = time.time()
        jobs: list[dict] = []
        for state in _STATES:
            for job_id in self._job_ids(state):
                payload = self._read_json(self._path(state, job_id)) or {}
                entry = {"id": job_id, "state": state,
                         "attempts": int(payload.get("attempts", 0)),
                         "retries": len(payload.get("errors", [])),
                         "worker": None, "lease_age": None, "note": ""}
                if state == "claimed":
                    lease = self._read_json(
                        self.queue_dir / "leases" / f"{job_id}.json")
                    if lease is not None:
                        entry["worker"] = lease.get("worker")
                        entry["lease_age"] = max(
                            0.0, now - float(lease.get("heartbeat_at", now)))
                        if entry["lease_age"] > self.lease_timeout:
                            entry["note"] = "lease expired"
                    else:
                        entry["note"] = "no lease yet"
                elif state == "done":
                    entry["worker"] = payload.get("worker")
                elif state == "failed":
                    failure = str(payload.get("failure", "")).strip()
                    if failure:
                        entry["note"] = failure.splitlines()[-1]
                jobs.append(entry)
        # Counts derive from the rows just collected (not a second
        # directory scan), so one snapshot can never disagree with
        # itself while jobs move between states under it.
        counts = {state: 0 for state in _STATES}
        for job in jobs:
            counts[job["state"]] += 1
        return {"counts": counts, "jobs": jobs}

    def drained(self) -> bool:
        """True when no job is pending or claimed (done/failed only)."""
        return not self._job_ids("pending") and not self._job_ids("claimed")

    def job_ids(self, state: str) -> list[str]:
        if state not in _STATES:
            raise ValueError(f"unknown state {state!r}; one of {_STATES}")
        return self._job_ids(state)

    def payload(self, job_id: str) -> dict | None:
        """The job's JSON payload, wherever it currently lives."""
        for state in _STATES:
            payload = self._read_json(self._path(state, job_id))
            if payload is not None:
                payload["state"] = state
                return payload
        return None

    def wait(self, *, poll: float = 0.5, timeout: float | None = None,
             on_poll: Callable[[dict[str, int]], None] | None = None
             ) -> dict[str, int]:
        """Block until the queue drains, recovering expired leases.

        ``on_poll`` receives the state counts once per cycle (progress
        rendering hook).  Raises :class:`QueueError` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self.recover()
            counts = self.counts()
            if on_poll is not None:
                on_poll(counts)
            if not counts["pending"] and not counts["claimed"]:
                return counts
            if deadline is not None and time.monotonic() > deadline:
                raise QueueError(f"queue {self.queue_dir} did not drain "
                                 f"within {timeout:g}s: {counts}")
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Duplicate-fit audit trail
    # ------------------------------------------------------------------
    def record_fit(self, job_id: str, worker_id: str) -> None:
        """Append one line per actual model fit (atomic under O_APPEND)."""
        line = f"{job_id}\t{worker_id}\n".encode()
        fd = os.open(self.queue_dir / "fits.log",
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def fit_log(self) -> list[tuple[str, str]]:
        """All recorded fits as ``(job_id, worker_id)`` pairs."""
        try:
            text = (self.queue_dir / "fits.log").read_text()
        except OSError:
            return []
        return [tuple(line.split("\t", 1))  # type: ignore[misc]
                for line in text.splitlines() if line]


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class Worker:
    """A queue-draining worker executing jobs through a local Runner.

    The worker claims one job at a time, heartbeats its lease from a
    background thread while the (possibly minutes-long) fit runs, and
    reports completion or failure back to the queue.  All artifacts land
    in ``cache_dir`` via the Runner's disk cache, which is the only
    result channel — the queue itself stores no model bytes.
    """

    def __init__(self, queue: JobQueue | str | os.PathLike,
                 cache_dir: str | os.PathLike, *,
                 worker_id: str | None = None,
                 heartbeat_interval: float | None = None,
                 allow_surrogate: bool = True,
                 few_shot_per_class: int = FEW_SHOT_PER_CLASS,
                 metrics_file: str | os.PathLike | None = None,
                 metrics_interval: float | None = None):
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        if worker_id is None:
            worker_id = (f"{socket.gethostname()}-{os.getpid()}-"
                         f"{os.urandom(3).hex()}")
        self.worker_id = worker_id
        if heartbeat_interval is None:
            heartbeat_interval = max(self.queue.lease_timeout / 4.0, 0.05)
        self.heartbeat_interval = heartbeat_interval
        # Fleet telemetry: merge-update a JSON snapshot of the queue's
        # registry on the heartbeat cadence.  "auto" places it where
        # `repro sweep --status` looks: <queue_dir>/metrics/<worker>.json.
        if metrics_file == "auto":
            metrics_file = (self.queue.queue_dir / "metrics"
                            / f"{worker_id}.json")
        self.metrics_file = (Path(metrics_file)
                             if metrics_file is not None else None)
        self.metrics_interval = (metrics_interval if metrics_interval
                                 is not None else heartbeat_interval)
        self._m_jobs = self.queue.registry.counter(
            "worker_jobs_total", "Job attempts per outcome")
        # Checkpoint on the heartbeat cadence: a worker that dies mid-fit
        # leaves a <key>.ckpt.npz in the shared cache at most one
        # heartbeat old, so whoever re-claims the job after lease expiry
        # resumes the fit from there instead of refitting from scratch.
        self.runner = Runner(cache_dir=cache_dir,
                             allow_surrogate=allow_surrogate,
                             few_shot_per_class=few_shot_per_class,
                             checkpoint_interval=heartbeat_interval)

    # ------------------------------------------------------------------
    def run(self, *, max_jobs: int | None = None, keep_alive: bool = False,
            poll_interval: float = 0.2,
            stop: threading.Event | None = None) -> dict[str, int]:
        """Drain the queue; returns per-outcome attempt counts.

        ``completed`` and ``failed`` (terminal) describe finished jobs;
        ``requeued`` counts errored attempts that went back to pending
        (possibly re-executed by this same worker); ``lost`` counts
        results discarded because the lease had expired under us.

        Exits when the queue is drained (or after ``max_jobs`` jobs).
        ``keep_alive`` keeps polling an empty queue instead — the mode a
        standing multi-host fleet runs in, picking up work the moment a
        submitter enqueues it.

        ``stop`` is the graceful-shutdown channel: once set (e.g. by a
        SIGTERM handler), the worker finishes the job it is executing —
        its artifacts land and its lease completes normally — claims
        nothing further, and returns.  Without it, terminating a
        keep-alive worker means killing it mid-job and paying a lease
        timeout before another worker can pick the job up.
        """
        stats = {"completed": 0, "failed": 0, "requeued": 0, "lost": 0}
        executed = 0
        last_snapshot = 0.0
        while max_jobs is None or executed < max_jobs:
            if stop is not None and stop.is_set():
                break
            self.queue.recover()
            job = self.queue.claim(self.worker_id)
            if self.metrics_file is not None and (
                    time.monotonic() - last_snapshot
                    >= self.metrics_interval):
                self.write_metrics_snapshot()
                last_snapshot = time.monotonic()
            if job is None:
                if self.queue.drained() and not keep_alive:
                    break
                if stop is not None:
                    stop.wait(poll_interval)
                else:
                    time.sleep(poll_interval)
                continue
            executed += 1
            outcome = self._execute(job)
            stats[outcome] += 1
            self._m_jobs.inc(outcome=outcome)
        if self.metrics_file is not None:
            self.write_metrics_snapshot()
        return stats

    def write_metrics_snapshot(self) -> None:
        """Merge-update this worker's registry snapshot on disk."""
        if self.metrics_file is None:
            return
        self.queue.counts()  # refresh the queue-depth gauge first
        try:
            self.queue.registry.write_snapshot(
                self.metrics_file, worker_id=self.worker_id)
        except OSError:
            pass  # telemetry must never take a worker down

    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> str:
        stop = threading.Event()
        beat = threading.Thread(target=self._heartbeat_loop,
                                args=(job.id, stop), daemon=True)
        beat.start()
        try:
            with trace.span("worker.job", job=job.id,
                            attempt=job.attempts):
                result = self.runner.run(job.spec,
                                         need_model=job.need_model,
                                         with_metrics=job.with_metrics)
        except Exception:
            stop.set()
            beat.join()
            return self.queue.fail(job.id, self.worker_id,
                                   traceback.format_exc())
        finally:
            stop.set()
        beat.join()
        if not result.from_cache:
            self.queue.record_fit(job.id, self.worker_id)
        payload = {
            "fitted": not result.from_cache,
            "fit_seconds": result.fit_seconds,
            "generate_seconds": result.generate_seconds,
            "num_nodes": result.generated.num_nodes,
            "num_edges": result.generated.num_edges,
        }
        # One job's graphs must not accumulate across a long drain; the
        # disk cache is the durable layer, so the memory cache is purely
        # a per-job convenience here.
        self.runner._memory.clear()
        ok = self.queue.complete(job.id, self.worker_id, payload)
        return "completed" if ok else "lost"

    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self.queue.heartbeat(job_id, self.worker_id):
                return  # lease revoked; completion will be discarded


def run_worker(queue_dir: str | os.PathLike, cache_dir: str | os.PathLike,
               **kwargs) -> dict[str, int]:
    """Convenience entry point: construct a :class:`Worker` and drain.

    ``kwargs`` split between the worker constructor and :meth:`Worker.run`
    (``max_jobs``, ``keep_alive``, ``poll_interval``).
    """
    run_kwargs = {k: kwargs.pop(k) for k in
                  ("max_jobs", "keep_alive", "poll_interval")
                  if k in kwargs}
    return Worker(queue_dir, cache_dir, **kwargs).run(**run_kwargs)


# ----------------------------------------------------------------------
# Local worker fleet
# ----------------------------------------------------------------------
def _pool_worker_main(queue_dir: str, cache_dir: str, worker_id: str,
                      allow_surrogate: bool, few_shot_per_class: int,
                      heartbeat_interval: float | None) -> None:
    """Top-level (picklable) entry point of a pool worker process."""
    Worker(queue_dir, cache_dir, worker_id=worker_id,
           allow_surrogate=allow_surrogate,
           few_shot_per_class=few_shot_per_class,
           heartbeat_interval=heartbeat_interval).run()


class LocalWorkerPool:
    """N local worker *processes* draining one queue.

    The in-host analogue of pointing N machines at a shared queue
    directory: each worker is a real OS process (so a crash or SIGKILL
    only loses that worker's lease, never the fleet), and all of them
    exit once the queue drains.
    """

    def __init__(self, queue_dir: str | os.PathLike,
                 cache_dir: str | os.PathLike, num_workers: int, *,
                 allow_surrogate: bool = True,
                 few_shot_per_class: int = FEW_SHOT_PER_CLASS,
                 heartbeat_interval: float | None = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.queue_dir = os.fspath(queue_dir)
        self.cache_dir = os.fspath(cache_dir)
        self.num_workers = num_workers
        self.allow_surrogate = allow_surrogate
        self.few_shot_per_class = few_shot_per_class
        self.heartbeat_interval = heartbeat_interval
        self.processes: list = []

    @staticmethod
    def _context():
        import multiprocessing

        # fork starts workers in milliseconds where available; spawn is
        # the portable fallback (and re-imports repro in each child).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def start(self) -> "LocalWorkerPool":
        ctx = self._context()
        for i in range(self.num_workers):
            worker_id = (f"{socket.gethostname()}-pool{os.getpid()}-w{i}-"
                         f"{os.urandom(2).hex()}")
            proc = ctx.Process(
                target=_pool_worker_main,
                args=(self.queue_dir, self.cache_dir, worker_id,
                      self.allow_surrogate, self.few_shot_per_class,
                      self.heartbeat_interval),
                daemon=True)
            proc.start()
            self.processes.append(proc)
        return self

    def alive_count(self) -> int:
        return sum(p.is_alive() for p in self.processes)

    def join(self, timeout: float | None = None) -> None:
        for proc in self.processes:
            proc.join(timeout)

    def terminate(self) -> None:
        for proc in self.processes:
            if proc.is_alive():
                proc.terminate()
        self.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.join()
        else:
            self.terminate()
