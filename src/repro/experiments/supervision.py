"""The uniform supervision contract passed to every model's ``fit``.

FairGen needs labels, a few-shot labeled set and a protected group; the
unsupervised baselines need none of that.  Historically the CLI and the
benchmarks resolved this differently: the CLI refused unlabeled datasets
outright while the benchmarks derived *surrogate* supervision for them.
:class:`Supervision` centralises both paths so every consumer calls
``model.fit(graph, rng, supervision=...)`` and all seven datasets work
everywhere.

Surrogate supervision (for datasets shipping no labels): the protected
group is the bottom-quartile-degree population — the nodes a
frequency-driven generator under-serves — and the class labeling is the
same two-way split.  This substitution mirrors the paper's evaluation of
FairGen on all seven datasets, four of which are unlabeled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..graph import Graph
from ..utils import few_shot_labels

__all__ = ["Supervision", "few_shot_labels", "FEW_SHOT_PER_CLASS"]

#: default few-shot budget: labeled nodes revealed per class
FEW_SHOT_PER_CLASS = 3


@dataclass(frozen=True)
class Supervision:
    """Everything a label-aware generator may consume during ``fit``.

    Unsupervised models accept and ignore it, which is what makes
    ``fit(graph, rng, supervision=...)`` a uniform contract across the
    whole model zoo.
    """

    labels: np.ndarray                 #: per-node class ids
    protected_mask: np.ndarray         #: boolean S+ membership
    num_classes: int                   #: C
    labeled_nodes: np.ndarray          #: few-shot labeled set L (nodes)
    labeled_classes: np.ndarray        #: few-shot labeled set L (classes)
    surrogate: bool = False            #: True when degree-derived

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_labels(cls, labels: np.ndarray, protected_mask: np.ndarray,
                    num_classes: int | None = None,
                    rng: np.random.Generator | None = None,
                    per_class: int = FEW_SHOT_PER_CLASS,
                    surrogate: bool = False) -> "Supervision":
        """Build from explicit label arrays, sampling the few-shot set."""
        labels = np.asarray(labels, dtype=np.int64)
        protected_mask = np.asarray(protected_mask, dtype=bool)
        if num_classes is None:
            num_classes = int(labels.max()) + 1
        rng = rng if rng is not None else np.random.default_rng(0)
        nodes, classes = few_shot_labels(labels, num_classes, rng, per_class)
        return cls(labels=labels, protected_mask=protected_mask,
                   num_classes=num_classes, labeled_nodes=nodes,
                   labeled_classes=classes, surrogate=surrogate)

    @classmethod
    def surrogate_for(cls, graph: Graph,
                      rng: np.random.Generator | None = None,
                      per_class: int = FEW_SHOT_PER_CLASS) -> "Supervision":
        """Degree-based surrogate labels/protected mask for an unlabeled
        graph.

        Protected group: bottom-quartile-degree nodes — the structurally
        under-represented population that walk-frequency objectives
        neglect.  Classes: the same split, giving a 2-class task.
        """
        threshold = np.quantile(graph.degrees, 0.25)
        protected = graph.degrees <= threshold
        if protected.all() or (~protected).all():
            # Degenerate degree distribution: split by node id instead
            # (at least one node per side so both classes are non-empty).
            protected = (np.arange(graph.num_nodes)
                         < max(1, graph.num_nodes // 4))
        labels = protected.astype(np.int64)
        return cls.from_labels(labels, protected, num_classes=2, rng=rng,
                               per_class=per_class, surrogate=True)

    @classmethod
    def from_dataset(cls, data: Dataset,
                     rng: np.random.Generator | None = None,
                     per_class: int = FEW_SHOT_PER_CLASS,
                     allow_surrogate: bool = True) -> "Supervision":
        """Supervision for a benchmark dataset, with surrogate fallback.

        Labeled datasets (BLOG, FLICKR, ACM) use their shipped labels and
        protected group; unlabeled ones fall back to
        :meth:`surrogate_for` unless ``allow_surrogate`` is False, in
        which case a ``ValueError`` explains the situation.
        """
        if data.has_labels:
            return cls.from_labels(data.labels, data.protected_mask,
                                   num_classes=data.num_classes, rng=rng,
                                   per_class=per_class)
        if not allow_surrogate:
            raise ValueError(
                f"dataset {data.name} has no labels; label-aware models "
                "need either a labeled dataset (BLOG, FLICKR, ACM) or "
                "surrogate supervision (allow_surrogate=True)")
        return cls.surrogate_for(data.graph, rng=rng, per_class=per_class)

    # ------------------------------------------------------------------
    def fit_kwargs(self) -> dict[str, object]:
        """Keyword arguments for the legacy explicit-array ``fit`` path."""
        return dict(labeled_nodes=self.labeled_nodes,
                    labeled_classes=self.labeled_classes,
                    protected_mask=self.protected_mask,
                    num_classes=self.num_classes)
